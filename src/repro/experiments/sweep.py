"""Generic parameter sweeps.

Experiment harnesses keep wanting the same thing: run a function over
the cartesian product of named parameter values and tabulate the
results.  :class:`Sweep` does exactly that, with deterministic
ordering, per-point error capture, and direct rendering into the
reporting tables.
"""

from __future__ import annotations

import itertools
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Sequence

from ..analysis.reporting import Table
from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated grid point.

    ``error`` carries the *full formatted traceback* of a failed
    point, not just ``str(exc)`` — a long sweep's one bad corner keeps
    the frame that failed, so post-mortems don't require re-running
    the grid.  Use :attr:`error_summary` for table cells and logs.
    """

    params: Dict[str, Any]
    value: Any
    error: str | None = None

    @property
    def ok(self) -> bool:
        """True when the point evaluated without raising."""
        return self.error is None

    @property
    def error_summary(self) -> "str | None":
        """The traceback's final ``ExcType: message`` line, or ``None``."""
        if self.error is None:
            return None
        lines = [ln for ln in self.error.strip().splitlines() if ln.strip()]
        return lines[-1] if lines else self.error


@dataclass
class Sweep:
    """A named cartesian-product sweep.

    ``axes`` maps parameter name → values; :meth:`run` calls
    ``fn(**params)`` for every combination in row-major order.  Errors
    from individual points are captured (as ``SweepPoint.error``), not
    raised, so one bad corner doesn't kill a long sweep — unless
    ``strict=True``.
    """

    name: str
    axes: Mapping[str, Sequence[Any]]
    points: List[SweepPoint] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.axes:
            raise ConfigurationError("sweep needs at least one axis")
        for axis, values in self.axes.items():
            if not values:
                raise ConfigurationError(f"axis {axis!r} has no values")

    @property
    def size(self) -> int:
        total = 1
        for values in self.axes.values():
            total *= len(values)
        return total

    def combinations(self):
        """Yield every parameter combination in row-major order."""
        names = list(self.axes)
        for combo in itertools.product(*(self.axes[k] for k in names)):
            yield dict(zip(names, combo))

    def run(
        self,
        fn: Callable[..., Any],
        strict: bool = False,
    ) -> List[SweepPoint]:
        """Evaluate ``fn`` over the grid; results land in ``points``."""
        self.points = []
        for params in self.combinations():
            try:
                value = fn(**params)
                self.points.append(SweepPoint(params=params, value=value))
            except Exception:  # noqa: BLE001 - captured by design
                if strict:
                    raise
                self.points.append(
                    SweepPoint(
                        params=params,
                        value=None,
                        error=traceback.format_exc(),
                    )
                )
        return self.points

    # ------------------------------------------------------------------
    def to_table(self, value_label: str = "value") -> Table:
        """Long-format table: one row per grid point."""
        if not self.points:
            raise ConfigurationError("run() the sweep before tabulating")
        names = list(self.axes)
        table = Table(title=self.name, columns=[*names, value_label])
        for point in self.points:
            cell = (
                point.value if point.ok else f"error: {point.error_summary}"
            )
            table.add_row(*(point.params[k] for k in names), cell)
        return table

    # ------------------------------------------------------------------
    @classmethod
    def over_spec(
        cls,
        name: str,
        base: Any,
        axes: Mapping[str, Sequence[Any]],
    ) -> "Sweep":
        """A sweep over :class:`~repro.engine.spec.ExperimentSpec` fields.

        ``axes`` maps spec field names to candidate values; each grid
        point is ``dataclasses.replace(base, **params)`` run through
        :func:`~repro.engine.spec.run_spec`.  This replaces the
        hand-wired build-a-trainer-per-point pattern: vary any spec
        field (``wait_for``, ``scheme``, ``delay``...) declaratively.

        Call :meth:`run_specs` on the returned sweep to execute it.
        """
        import dataclasses

        from ..engine.spec import ExperimentSpec

        if not isinstance(base, ExperimentSpec):
            raise ConfigurationError(
                f"over_spec needs an ExperimentSpec base, got {type(base).__name__}"
            )
        known = {f.name for f in dataclasses.fields(ExperimentSpec)}
        unknown = sorted(set(axes) - known)
        if unknown:
            raise ConfigurationError(
                f"axes are not spec fields: {', '.join(unknown)}"
            )
        sweep = cls(name=name, axes=axes)
        sweep._spec_base = base
        return sweep

    def run_specs(self, strict: bool = False) -> List[SweepPoint]:
        """Execute an :meth:`over_spec` sweep; values are run summaries."""
        import dataclasses

        from ..engine.spec import run_spec

        base = getattr(self, "_spec_base", None)
        if base is None:
            raise ConfigurationError(
                "run_specs needs a sweep built with Sweep.over_spec"
            )
        return self.run(
            lambda **params: run_spec(dataclasses.replace(base, **params)),
            strict=strict,
        )

    def to_grid_table(
        self, row_axis: str, col_axis: str, value_label: str = ""
    ) -> Table:
        """Wide-format table for exactly two axes (a heat-map layout)."""
        if set(self.axes) != {row_axis, col_axis}:
            raise ConfigurationError(
                f"grid layout needs exactly the axes {row_axis!r} and "
                f"{col_axis!r}; sweep has {sorted(self.axes)}"
            )
        if not self.points:
            raise ConfigurationError("run() the sweep before tabulating")
        lookup = {
            (p.params[row_axis], p.params[col_axis]):
                (p.value if p.ok else "err")
            for p in self.points
        }
        cols = list(self.axes[col_axis])
        table = Table(
            title=self.name,
            columns=[
                f"{row_axis} \\ {col_axis}",
                *(str(c) for c in cols),
            ],
        )
        for r in self.axes[row_axis]:
            table.add_row(r, *(lookup.get((r, c), "-") for c in cols))
        return table
