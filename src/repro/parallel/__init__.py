"""``repro.parallel`` — deterministic fan-out for grid sweeps.

Two pieces:

* :class:`SweepExecutor` / :class:`SerialExecutor` /
  :class:`ProcessExecutor` — pluggable evaluation strategies for
  independent grid points, with parent-side
  ``SeedSequence.spawn`` seeding, chunked scheduling, per-point failure
  isolation, and progress/metrics routed through :mod:`repro.obs`;
* :class:`DecodeCache` — an LRU memo for the deterministic MIS-search
  kernels inside the decoders, keyed on (placement fingerprint, frozen
  availability mask), bit-for-bit transparent because fairness RNG
  draws stay live.

See ``docs/parallelism.md`` for the executor model, the seeding
discipline (and its ``PAR001`` static check), and cache semantics.
"""

from .cache import DecodeCache
from .executor import (
    ExecutionError,
    PointOutcome,
    PointTask,
    ProcessExecutor,
    ProgressCallback,
    SerialExecutor,
    SweepEvent,
    SweepExecutor,
    evaluate_point,
    spawn_point_seeds,
)

__all__ = [
    "DecodeCache",
    "ExecutionError",
    "PointOutcome",
    "PointTask",
    "ProcessExecutor",
    "ProgressCallback",
    "SerialExecutor",
    "SweepEvent",
    "SweepExecutor",
    "evaluate_point",
    "spawn_point_seeds",
]
