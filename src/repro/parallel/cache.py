"""Decode memoisation: :class:`DecodeCache`.

Grid sweeps re-decode the same availability masks over and over — a
300-step Fig. 11 condition sees the same ``W'`` many times, and every
scheme in the cell replays the same trace.  The expensive part of a
decode (the MIS search) is a *pure function* of (placement, mask), so
it memoises perfectly; the fairness randomisation (which optimum to
return, which start order to try) stays live in the decoder.  That
split is what makes cached decoding **bit-for-bit identical** to
uncached: the cache sits *under* the RNG draws, so the generator
consumes exactly the same stream either way.

Keys are ``(placement fingerprint, kind, frozen availability mask,
extra)``: the fingerprint (a content digest, stable across processes —
see :meth:`repro.core.placement.Placement.fingerprint`) isolates
placements, ``kind`` isolates a decoder's different search kernels, and
``extra`` carries kernel-specific parameters (e.g. a chain's start
vertex).  Eviction is LRU; hit/miss/eviction counters are exported to
an attached :class:`~repro.obs.registry.MetricsRegistry` under
``decode.cache.*``.

One cache instance may be shared by any number of decoders (and sweep
points) within a process; pool workers each grow their own — decode
results never cross process boundaries.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Callable, Dict, Hashable, List, Sequence, Tuple

from ..exceptions import ConfigurationError
from ..obs.registry import MetricsRegistry, NULL_REGISTRY

CacheKey = Tuple[str, str, Hashable, Hashable]

#: sentinel distinguishing "absent" from a cached ``None``.
_MISSING = object()


class DecodeCache:
    """Bounded LRU memo for deterministic decode search kernels."""

    def __init__(
        self,
        maxsize: int = 65536,
        *,
        metrics: MetricsRegistry | None = None,
    ):
        if maxsize <= 0:
            raise ConfigurationError(
                f"cache maxsize must be positive, got {maxsize}"
            )
        self._maxsize = maxsize
        self._data: "OrderedDict[CacheKey, Any]" = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._metrics = metrics if metrics is not None else NULL_REGISTRY

    # ------------------------------------------------------------------
    @property
    def maxsize(self) -> int:
        return self._maxsize

    @property
    def size(self) -> int:
        return len(self._data)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def hit_rate(self) -> float:
        """Hits over lookups, ``0.0`` before the first lookup."""
        lookups = self._hits + self._misses
        return self._hits / lookups if lookups else 0.0

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Route hit/miss/eviction counters into ``registry``."""
        self._metrics = registry

    # ------------------------------------------------------------------
    def get_or_compute(
        self,
        fingerprint: str,
        kind: str,
        key: Hashable,
        compute: Callable[[], Any],
    ) -> Any:
        """The memoised value for ``(fingerprint, kind, key)``.

        On a miss, ``compute()`` runs and its result is stored.  Stored
        values must be immutable (frozensets, tuples) — they are handed
        back to every future hit without copying.
        """
        full_key: CacheKey = (fingerprint, kind, key, None)
        metrics = self._metrics
        try:
            value = self._data[full_key]
        except KeyError:
            self._misses += 1
            metrics.counter("decode.cache.misses").inc()
            value = compute()
            self._data[full_key] = value
            if len(self._data) > self._maxsize:
                self._data.popitem(last=False)
                self._evictions += 1
                metrics.counter("decode.cache.evictions").inc()
            metrics.gauge("decode.cache.size").set(len(self._data))
            return value
        self._data.move_to_end(full_key)
        self._hits += 1
        metrics.counter("decode.cache.hits").inc()
        return value

    def get_or_compute_batch(
        self,
        fingerprint: str,
        kind: str,
        keys: Sequence[Hashable],
        compute_missing: Callable[[List[Hashable]], List[Any]],
    ) -> List[Any]:
        """Batch lookup: partition ``keys`` into hits and misses in one
        pass, compute only the unique misses, return values aligned
        with ``keys``.

        ``compute_missing`` receives the missing keys (first-occurrence
        order, duplicates collapsed) and must return their values,
        aligned.  A key that repeats within the batch is computed once;
        repeats count as hits — exactly what a sequential
        :meth:`get_or_compute` loop over the same keys would record.
        Counter parity with the sequential loop holds whenever the
        batch's unique misses fit the cache (no mid-batch eviction of a
        key the same batch still needs).
        """
        metrics = self._metrics
        data = self._data
        values: List[Any] = []
        missing_keys: List[Hashable] = []
        missing_at: Dict[Hashable, List[int]] = {}
        hits = 0
        for i, key in enumerate(keys):
            full_key: CacheKey = (fingerprint, kind, key, None)
            value = data.get(full_key, _MISSING)
            if value is not _MISSING:
                data.move_to_end(full_key)
                hits += 1
                values.append(value)
                continue
            slots = missing_at.get(key)
            if slots is None:
                # First sighting of a missing key — one compute.
                missing_at[key] = [i]
                missing_keys.append(key)
                self._misses += 1
                metrics.counter("decode.cache.misses").inc()
            else:
                # A duplicate of a pending miss: a sequential loop
                # would find it cached by now — count it as a hit.
                slots.append(i)
                hits += 1
            values.append(_MISSING)
        self._hits += hits
        if hits:
            metrics.counter("decode.cache.hits").inc(hits)
        if missing_keys:
            computed = compute_missing(missing_keys)
            if len(computed) != len(missing_keys):
                raise ConfigurationError(
                    f"compute_missing returned {len(computed)} values "
                    f"for {len(missing_keys)} missing keys"
                )
            for key, value in zip(missing_keys, computed):
                full_key = (fingerprint, kind, key, None)
                data[full_key] = value
                if len(data) > self._maxsize:
                    data.popitem(last=False)
                    self._evictions += 1
                    metrics.counter("decode.cache.evictions").inc()
                for i in missing_at[key]:
                    values[i] = value
            metrics.gauge("decode.cache.size").set(len(data))
        return values

    def clear(self) -> None:
        """Drop all entries (counters are left untouched)."""
        self._data.clear()

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Counters + hit rate as a JSON-ready dict."""
        return {
            "size": float(len(self._data)),
            "maxsize": float(self._maxsize),
            "hits": float(self._hits),
            "misses": float(self._misses),
            "evictions": float(self._evictions),
            "hit_rate": self.hit_rate,
        }

    def describe(self) -> str:
        """One-line summary for trace summaries and bench reports."""
        return (
            f"decode cache: {self._hits} hits / "
            f"{self._hits + self._misses} lookups "
            f"({100 * self.hit_rate:.1f}% hit rate), "
            f"{len(self._data)}/{self._maxsize} entries, "
            f"{self._evictions} evictions"
        )
