"""Sweep executors: serial and process-pool evaluation of grid points.

Every figure in the paper is a grid of *independent* (scheme, n, c,
straggler-model, seed) points, so fan-out is embarrassingly parallel —
the only hard part is keeping it **deterministic**.  Three disciplines
make ``ProcessExecutor`` results bit-for-bit identical to serial runs:

* **seeding** — per-point generators are derived by
  ``np.random.SeedSequence.spawn`` *in the parent*, then shipped to the
  workers.  A spawned child is a pure function of (root seed, spawn
  index), so the same point gets the same stream no matter which
  process, or how many, evaluate it.  Never ship ``seed + i`` integers
  across the pool boundary (``repro check`` rule ``PAR001``).
* **ordering** — outcomes are returned sorted by point index,
  regardless of completion order.
* **isolation** — a point that raises is captured as a full formatted
  traceback on its own :class:`PointOutcome`; one bad corner never
  kills (or reorders) the rest of the grid.

Progress and timing are routed through :mod:`repro.obs`: attach a
:class:`~repro.obs.registry.MetricsRegistry` to get
``sweep.points.ok`` / ``sweep.points.failed`` counters and a
``sweep.point_seconds`` histogram, and/or pass ``on_event`` for live
per-point progress callbacks.
"""

from __future__ import annotations

import abc
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

import numpy as np

from ..exceptions import ConfigurationError, ReproError
from ..obs.registry import MetricsRegistry, NULL_REGISTRY


class ExecutionError(ReproError):
    """A strict sweep hit a failed point (carries the point traceback)."""


@dataclass(frozen=True)
class PointTask:
    """One grid point to evaluate: parameters plus an optional spawned
    :class:`~numpy.random.SeedSequence` (never a bare int — see module
    docstring).  Tasks must be picklable to cross the pool boundary."""

    index: int
    params: Dict[str, Any]
    seed: Optional[np.random.SeedSequence] = None


@dataclass(frozen=True)
class PointOutcome:
    """Result of evaluating one :class:`PointTask`.

    ``error`` is the full formatted traceback of a failed point (never
    just ``str(exc)``); ``elapsed`` is the point's own wall-clock
    evaluation time in seconds.
    """

    index: int
    value: Any
    error: Optional[str] = None
    elapsed: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass(frozen=True)
class SweepEvent:
    """One progress notification (``kind``: start | point | finish)."""

    kind: str
    total: int
    completed: int = 0
    index: int = -1
    ok: bool = True
    elapsed: float = 0.0


ProgressCallback = Callable[[SweepEvent], None]


def evaluate_point(fn: Callable[..., Any], task: PointTask) -> PointOutcome:
    """Evaluate one task, capturing any exception as a full traceback.

    A task carrying a spawned seed has ``rng=np.random.default_rng(seed)``
    added to its keyword arguments, so the generator is constructed the
    same way whether this runs in the parent or a pool worker.
    """
    kwargs = dict(task.params)
    if task.seed is not None:
        kwargs["rng"] = np.random.default_rng(task.seed)
    start = time.perf_counter()
    try:
        value = fn(**kwargs)
    except Exception:  # noqa: BLE001 - isolation is the point
        return PointOutcome(
            index=task.index,
            value=None,
            error=traceback.format_exc(),
            elapsed=time.perf_counter() - start,
        )
    return PointOutcome(
        index=task.index, value=value, elapsed=time.perf_counter() - start
    )


def _evaluate_chunk(
    fn: Callable[..., Any], tasks: Sequence[PointTask]
) -> List[PointOutcome]:
    """Pool-worker entry point: evaluate one scheduled chunk."""
    return [evaluate_point(fn, task) for task in tasks]


class SweepExecutor(abc.ABC):
    """Strategy interface for evaluating a batch of independent points.

    Subclasses implement :meth:`_execute`; :meth:`run` wraps it with the
    shared contract — outcomes sorted by index, per-point metrics and
    progress events, optional strict re-raise.
    """

    #: short label used in tables and bench reports.
    name = "abstract"

    def __init__(
        self,
        *,
        metrics: MetricsRegistry | None = None,
        on_event: ProgressCallback | None = None,
    ):
        self._metrics = metrics if metrics is not None else NULL_REGISTRY
        self._on_event = on_event
        self._completed = 0

    @property
    def metrics(self) -> MetricsRegistry:
        """The attached metrics sink (a shared no-op by default)."""
        return self._metrics

    def attach_metrics(self, registry: MetricsRegistry) -> None:
        """Route this executor's per-point metrics into ``registry``."""
        self._metrics = registry

    # ------------------------------------------------------------------
    def run(
        self,
        fn: Callable[..., Any],
        tasks: Sequence[PointTask],
        *,
        reraise: bool = False,
    ) -> List[PointOutcome]:
        """Evaluate every task; outcomes come back in index order.

        With ``reraise=True`` a failed point aborts the sweep: the
        serial executor re-raises the original exception live, pool
        executors raise :class:`ExecutionError` carrying the failed
        point's full traceback.
        """
        tasks = list(tasks)
        total = len(tasks)
        self._completed = 0
        self._emit(SweepEvent(kind="start", total=total))
        outcomes = self._execute(fn, tasks, reraise=reraise)
        outcomes.sort(key=lambda o: o.index)
        if len(outcomes) != total:  # pragma: no cover - defensive
            raise ExecutionError(
                f"executor returned {len(outcomes)} outcomes for "
                f"{total} tasks"
            )
        if reraise:
            for outcome in outcomes:
                if not outcome.ok:
                    raise ExecutionError(
                        f"sweep point {outcome.index} "
                        f"({tasks[outcome.index].params!r}) failed:\n"
                        f"{outcome.error}"
                    )
        self._emit(
            SweepEvent(kind="finish", total=total, completed=total)
        )
        return outcomes

    @abc.abstractmethod
    def _execute(
        self,
        fn: Callable[..., Any],
        tasks: List[PointTask],
        *,
        reraise: bool,
    ) -> List[PointOutcome]:
        """Evaluate ``tasks`` in any order; completeness is checked by
        :meth:`run`."""

    # ------------------------------------------------------------------
    def _record(self, outcome: PointOutcome, total: int) -> None:
        """Book one finished point into metrics + progress events."""
        self._completed += 1
        metrics = self._metrics
        metrics.counter(
            "sweep.points.ok" if outcome.ok else "sweep.points.failed"
        ).inc()
        metrics.histogram("sweep.point_seconds").observe(outcome.elapsed)
        self._emit(
            SweepEvent(
                kind="point",
                total=total,
                completed=self._completed,
                index=outcome.index,
                ok=outcome.ok,
                elapsed=outcome.elapsed,
            )
        )

    def _emit(self, event: SweepEvent) -> None:
        if self._on_event is not None:
            self._on_event(event)


class SerialExecutor(SweepExecutor):
    """In-process row-major evaluation — the default, and the reference
    every parallel executor must match bit-for-bit."""

    name = "serial"

    def _execute(self, fn, tasks, *, reraise):
        outcomes: List[PointOutcome] = []
        for task in tasks:
            if reraise:
                # Strict mode keeps the pre-redesign contract: the
                # original exception propagates live, type intact.
                kwargs = dict(task.params)
                if task.seed is not None:
                    kwargs["rng"] = np.random.default_rng(task.seed)
                start = time.perf_counter()
                value = fn(**kwargs)
                outcome = PointOutcome(
                    index=task.index,
                    value=value,
                    elapsed=time.perf_counter() - start,
                )
            else:
                outcome = evaluate_point(fn, task)
            self._record(outcome, len(tasks))
            outcomes.append(outcome)
        return outcomes


class ProcessExecutor(SweepExecutor):
    """Process-pool evaluation with chunked scheduling.

    ``jobs`` is the worker count; ``chunk_size`` (default: grid split
    into ~4 chunks per worker) balances scheduling overhead against
    load-balance.  ``fn`` and every task must be picklable — module-level
    functions and ``functools.partial`` of them qualify, lambdas do not.

    Results are bit-for-bit identical to :class:`SerialExecutor` because
    nothing about a point's evaluation depends on *where* it runs: seeds
    are spawned in the parent, and each point rebuilds its own state.
    """

    name = "process"

    def __init__(
        self,
        jobs: int,
        *,
        chunk_size: Optional[int] = None,
        metrics: MetricsRegistry | None = None,
        on_event: ProgressCallback | None = None,
    ):
        super().__init__(metrics=metrics, on_event=on_event)
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        if chunk_size is not None and chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        self.jobs = jobs
        self.chunk_size = chunk_size

    def _chunks(self, tasks: List[PointTask]) -> List[List[PointTask]]:
        size = self.chunk_size
        if size is None:
            # ~4 chunks per worker: small enough to load-balance uneven
            # points, large enough to amortise pickling.
            size = max(1, -(-len(tasks) // (4 * self.jobs)))
        return [tasks[i:i + size] for i in range(0, len(tasks), size)]

    def _execute(self, fn, tasks, *, reraise):
        if not tasks:
            return []
        if self.jobs == 1 or len(tasks) == 1:
            # A one-worker pool would only add IPC overhead; the serial
            # path is defined to be identical anyway.
            return SerialExecutor(
                metrics=self._metrics, on_event=self._on_event
            )._execute(fn, tasks, reraise=False)
        outcomes: List[PointOutcome] = []
        chunks = self._chunks(tasks)
        total = len(tasks)
        with ProcessPoolExecutor(
            max_workers=min(self.jobs, len(chunks))
        ) as pool:
            pending = {
                pool.submit(_evaluate_chunk, fn, chunk): chunk
                for chunk in chunks
            }
            while pending:
                done, _ = wait(pending, return_when=FIRST_COMPLETED)
                for future in done:
                    chunk = pending.pop(future)
                    try:
                        got = future.result()
                    except Exception:  # noqa: BLE001 - infra failure
                        # Pool-level failures (unpicklable fn/result,
                        # dead worker) are pinned to every point of the
                        # chunk so the rest of the grid survives.
                        tb = traceback.format_exc()
                        got = [
                            PointOutcome(
                                index=task.index, value=None, error=tb
                            )
                            for task in chunk
                        ]
                    for outcome in got:
                        self._record(outcome, total)
                        outcomes.append(outcome)
        return outcomes


def spawn_point_seeds(
    seed: "int | np.random.SeedSequence", count: int
) -> List[np.random.SeedSequence]:
    """Spawn one child :class:`~numpy.random.SeedSequence` per point.

    The canonical seeding discipline for fan-out: children are derived
    in the parent, so point ``i`` gets the same stream under any
    executor, any job count, any scheduling order.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return root.spawn(count)
