"""Hybrid repetition (HR) placement — Sec. VI.

``HR(n, c1, c2)`` with ``g`` groups interpolates between FR and CR.  The
placement gives each worker ``c = c1 + c2`` partitions in two parts:

* the *lower part* (``c2`` rows of the global CR placement): worker
  ``i`` holds partitions ``(i + r) mod n`` for ``r = 0..c2-1`` — these
  wrap around the whole circle, so the last ``c2 - 1`` workers of a
  group "spill" into the next group's partition range;
* the *upper part* (``c1`` rows wrapping **within the group**): for
  worker ``i`` in group ``q`` with local index ``j = i mod n0``
  (``n0 = n/g``), the partitions ``q·n0 + ((j - r) mod n0)`` for
  ``r = 1..c1`` — the ``c1`` partitions *behind* it in its group.

This is the unique reading of Fig. 7/8 under which the paper's
closed-form conflict test (Alg. 4) is exact; we verified it against
partition-intersection ground truth over the full valid parameter grid
(see ``tests/test_hybrid.py``).  Note Alg. 4's spill threshold is
``j1 ≥ n0 - c2 + 2`` in the paper's 1-indexing (its printed
``n0 - c2 + 1`` includes one worker whose CR rows end exactly at the
group boundary and therefore never conflict across it — an off-by-one
we correct and document).

Endpoints (verified by tests):

* ``c1 = 0`` (or ``g = 1``)  →  conflict-equivalent to ``CR(n, c)``;
* ``c2 = 0`` with ``n0 = c``  →  placement-equivalent to ``FR(n, c)``;
* ``HR(n, c, 0)`` equals ``HR(n, c-1, 1)`` (the first CR row is the
  identity row, same as one within-group wrap step).

Theorem 6 restricts the general scheme (``c1, c2 > 0``) to
``c ≤ n0 ≤ c + c1`` so that workers within a group always pairwise
conflict — the invariant the HR decoder (Alg. 3) relies on.  Since
``c1 ≤ c - 1`` this implies the paper's stated range ``n0 ≤ 2c - 1``.
"""

from __future__ import annotations

from typing import Tuple

from ..exceptions import PlacementError
from .placement import Placement


class HybridRepetition(Placement):
    """The HR placement ``HR(n, c1, c2)`` with ``g`` groups."""

    scheme = "hr"

    def __init__(
        self,
        num_workers: int,
        c1: int,
        c2: int,
        num_groups: int,
    ):
        if c1 < 0 or c2 < 0:
            raise PlacementError(f"c1 and c2 must be non-negative, got {c1}, {c2}")
        c = c1 + c2
        super().__init__(num_workers, c)
        n = self._n
        if num_groups <= 0 or n % num_groups != 0:
            raise PlacementError(
                f"HR requires g | n; got n={n}, g={num_groups}"
            )
        n0 = n // num_groups
        if c1 > 0 and num_groups > 1:
            if c > n0:
                raise PlacementError(
                    f"HR requires c <= n0 = n/g; got c={c}, n0={n0}"
                )
            if c1 > n0:
                raise PlacementError(
                    f"HR upper part needs c1 <= n0; got c1={c1}, n0={n0}"
                )
            if c2 > 0 and n0 > c + c1:
                raise PlacementError(
                    "general HR needs within-group completeness "
                    f"n0 <= c + c1 (Theorem 6); got n0={n0}, c={c}, c1={c1}"
                )
        self._c1 = c1
        self._c2 = c2
        self._g = num_groups
        self._n0 = n0

        assignments = {}
        for worker in range(n):
            group = worker // n0
            local = worker % n0
            parts = []
            # Lower part: global cyclic wrap (CR rows 0..c2-1).
            for r in range(c2):
                parts.append((worker + r) % n)
            # Upper part: the c1 partitions behind, wrapping in-group.
            for r in range(1, c1 + 1):
                parts.append(group * n0 + ((local - r) % n0))
            assignments[worker] = tuple(parts)
        self._finalize(assignments)

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def c1(self) -> int:
        """Rows taken from the grouped (FR-like) upper part."""
        return self._c1

    @property
    def c2(self) -> int:
        """Rows taken from the global CR lower part."""
        return self._c2

    @property
    def num_groups(self) -> int:
        """``g``: number of worker groups."""
        return self._g

    @property
    def group_size(self) -> int:
        """``n0 = n / g``: workers (and partitions) per group."""
        return self._n0

    def group_of(self, worker: int) -> int:
        """Group index of ``worker`` (0-indexed)."""
        if not 0 <= worker < self._n:
            raise PlacementError(f"worker {worker} out of range [0, {self._n})")
        return worker // self._n0

    def workers_in_group(self, group: int) -> Tuple[int, ...]:
        """All workers of ``group``, in ascending index order."""
        if not 0 <= group < self._g:
            raise PlacementError(f"group {group} out of range [0, {self._g})")
        return tuple(range(group * self._n0, (group + 1) * self._n0))

    # ------------------------------------------------------------------
    # Fast conflict predicate (Alg. 4, corrected)
    # ------------------------------------------------------------------
    def conflicts_fast(self, worker_a: int, worker_b: int) -> bool:
        """O(1) conflict test; exact (tests assert agreement with the
        shared-partition ground truth over the valid parameter grid).

        Alg. 4 is directional (``i1`` clockwise-before ``i2``), so this
        symmetric wrapper tests both orientations.
        """
        if worker_a == worker_b:
            return True
        n, n0, c = self._n, self._n0, self._c
        if self._c1 == 0 or self._g == 1:
            # Pure CR: Theorem 1 distance rule on the global circle.
            diff = abs(worker_a - worker_b) % n
            return min(diff, n - diff) < c
        if self._c2 == 0:
            # Grouped CR (Sec. VI-A): conflicts only within a group,
            # following the within-group CR distance rule.
            if worker_a // n0 != worker_b // n0:
                return False
            diff = abs(worker_a - worker_b) % n0
            return min(diff, n0 - diff) < c
        return self._conflicts_directional(
            worker_a, worker_b
        ) or self._conflicts_directional(worker_b, worker_a)

    def _conflicts_directional(self, i1: int, i2: int) -> bool:
        """Alg. 4 (corrected): conflict when ``i2``'s group follows ``i1``'s.

        Same group → conflict (complete within-group graph, Theorem 6).
        Adjacent groups → conflict iff ``i1``'s CR rows actually spill
        past its group boundary (``j1 ≥ n0 - c2 + 1``, 0-indexed) and
        the clockwise gap to ``i2`` is below ``c``.
        """
        g1 = i1 // self._n0
        g2 = i2 // self._n0
        if g1 == g2:
            return True
        if (g2 - g1) % self._g == 1:
            j1 = i1 % self._n0
            if j1 >= self._n0 - self._c2 + 1 and (i2 - i1) % self._n < self._c:
                return True
        return False

    def __repr__(self) -> str:
        return (
            f"HybridRepetition(n={self._n}, c1={self._c1}, c2={self._c2}, "
            f"g={self._g})"
        )
