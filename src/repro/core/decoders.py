"""Decoder interface and registry.

A *decoder* implements the master's ``Decode()`` function: given the set
``W'`` of workers whose coded gradients arrived, select a pairwise
non-conflicting subset (an independent set of ``G[W']``) whose summed
payloads recover ``ĝ = Σ_{i∈I} g_i`` with ``|I|`` maximal.

All decoders share two contracts the paper relies on:

* **optimality** — the returned worker set is a *maximum* independent
  set of ``G[W']`` (verified against exact branch-and-bound in tests);
* **fairness** — under homogeneous stragglers every partition has the
  same probability of appearing in ``I`` (randomized tie-breaking,
  driven by an injected :class:`numpy.random.Generator`).

Public API
----------
:meth:`Decoder.decode` is the per-mask entry point: it validates the
availability mask, runs the scheme's search, checks the disjointness
invariant and returns a :class:`~repro.types.DecodeResult`.
:meth:`Decoder.decode_batch` decodes a whole ``(num_masks, n)``
boolean array (or list of masks) at once, bit-for-bit equivalent to
looping ``decode`` — same selections, same generator stream — with the
deterministic kernels vectorized through :mod:`repro.core.batch`.
Subclasses implement the :meth:`Decoder._decode` hook returning a
typed :class:`Selection`, and may override ``decode_batch`` with a
vectorized path.

``rng``, ``metrics`` and ``cache`` are keyword-only in
:func:`decoder_for` and every decoder constructor.

Caching
-------
Attach a :class:`~repro.parallel.DecodeCache` (constructor ``cache=``
or :meth:`Decoder.attach_cache`) and the decoders memoise their
*deterministic* search kernels through :meth:`Decoder._memo`, keyed on
(placement fingerprint, frozen availability mask).  Fairness RNG draws
are never cached, so cached decoding is bit-for-bit identical to
uncached — same results, same generator stream.
"""

from __future__ import annotations

import abc
import warnings
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    NamedTuple,
    Sequence,
    Type,
    TypeVar,
)

import numpy as np

from ..exceptions import DecodeError
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..types import DecodeResult
from .batch import (
    BatchDecodeResult,
    MaskBatch,
    masks_to_array,
    partition_matrix,
    validate_mask,
)
from .placement import Placement

_REGISTRY: Dict[str, Type["Decoder"]] = {}

#: schemes for which exact-MIS decoding is the *documented* decoder,
#: not a silent downgrade — no fallback warning for these.
_EXACT_BY_DESIGN = frozenset({"exact", "explicit"})

_T = TypeVar("_T")


class Selection(NamedTuple):
    """What a decoder's search found for one availability mask."""

    #: the pairwise non-conflicting workers whose payloads are summed.
    workers: FrozenSet[int]
    #: how many greedy searches (start vertices) were run.
    num_searches: int


def register_decoder(scheme: str) -> Callable[[Type["Decoder"]], Type["Decoder"]]:
    """Class decorator registering a decoder under ``scheme``."""

    def wrap(cls: Type["Decoder"]) -> Type["Decoder"]:
        _REGISTRY[scheme] = cls
        cls.scheme = scheme
        return cls

    return wrap


def decoder_for(
    placement: "Placement | Any",
    *,
    rng: np.random.Generator | None = None,
    metrics: "MetricsRegistry | None" = None,
    cache: "Any | None" = None,
) -> "Decoder":
    """Instantiate the registered decoder matching ``placement.scheme``.

    ``placement`` may also be a
    :class:`~repro.core.scheme.PlacementScheme`; it is constructed
    first.  ``rng``, ``metrics`` and ``cache`` are keyword-only.  Falls
    back to the exact-MIS decoder for unknown schemes, which is correct
    for *any* placement (just not linear-time).  The fallback is
    registered on demand, so this works even when only this module has
    been imported; if registration is somehow impossible a descriptive
    :class:`~repro.exceptions.DecodeError` is raised instead of a bare
    ``KeyError``.

    Explicit tables are exact-decoded *by design* (there is no
    closed-form structure to exploit); any other unregistered scheme
    taking the fallback emits a :class:`RuntimeWarning` and a
    ``decode.fallback`` metric, so an O(2^n) decoder can never
    silently masquerade as a linear-time one in a benchmark run.
    """
    if not isinstance(placement, Placement):
        from .scheme import as_placement

        placement = as_placement(placement)
    cls = _REGISTRY.get(placement.scheme)
    is_fallback = cls is None
    if cls is None:
        if "exact" not in _REGISTRY:
            # Importing the module runs its @register_decoder("exact").
            from . import exact_decoder  # noqa: F401
        cls = _REGISTRY.get("exact")
        if cls is None:
            raise DecodeError(
                f"no decoder registered for scheme {placement.scheme!r} "
                "and the exact-MIS fallback is unavailable; registered "
                f"schemes: {sorted(_REGISTRY)}"
            )
    decoder = cls(placement, rng=rng, cache=cache)
    if metrics is not None:
        decoder.attach_metrics(metrics)
    if is_fallback and placement.scheme not in _EXACT_BY_DESIGN:
        warnings.warn(
            "no linear-time decoder registered for scheme "
            f"{placement.scheme!r}; falling back to the exact-MIS "
            "decoder (exponential worst case)",
            RuntimeWarning,
            stacklevel=2,
        )
        decoder.metrics.counter("decode.fallback").inc()
    return decoder


class Decoder(abc.ABC):
    """Base class for the master's ``Decode()`` function."""

    scheme: str = "abstract"

    def __init__(
        self,
        placement: Placement,
        *,
        rng: np.random.Generator | None = None,
        cache: "Any | None" = None,
    ):
        self._placement = placement
        self._rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[DET003] deliberate opt-in to entropy when no rng is injected
        self._metrics: "MetricsRegistry" = NULL_REGISTRY
        self._cache = cache

    @property
    def rng(self) -> np.random.Generator:
        """The fairness tie-break generator (checkpointing surface)."""
        return self._rng

    @property
    def placement(self) -> Placement:
        return self._placement

    @property
    def metrics(self) -> "MetricsRegistry":
        """The attached metrics sink (a shared no-op by default)."""
        return self._metrics

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Route this decoder's per-call metrics into ``registry``."""
        self._metrics = registry

    @property
    def cache(self):
        """The attached :class:`~repro.parallel.DecodeCache`, or ``None``."""
        return self._cache

    def attach_cache(self, cache) -> None:
        """Memoise this decoder's deterministic search kernels in
        ``cache`` (results stay bit-for-bit identical — see module
        docstring)."""
        self._cache = cache

    def decode(self, available_workers: Iterable[int]) -> DecodeResult:
        """Run one decoding round — the single public entry point.

        Parameters
        ----------
        available_workers:
            The workers ``W'`` whose coded gradients the master received
            this step.  Must be non-empty, duplicate-free and within
            ``[0, n)`` — validated by the shared
            :func:`~repro.core.batch.validate_mask`, so malformed
            masks raise the same :class:`DecodeError` here as on the
            batched path, for every decoder family.
        """
        available = validate_mask(
            available_workers, self._placement.num_workers
        )
        selection = self._decode(available)
        selected, searches = selection
        if not selected:
            raise DecodeError(
                "decoder selected no workers despite availability "
                f"{sorted(available)}"
            )
        self._check_disjoint(selected)
        recovered = frozenset(
            p for w in selected for p in self._placement.partitions_of(w)
        )
        # No-op on the default NULL_REGISTRY, so untraced decodes pay
        # only these attribute lookups.
        metrics = self._metrics
        metrics.counter("decode.calls").inc()
        metrics.histogram("decode.num_searches").observe(searches)
        metrics.histogram("decode.num_recovered").observe(len(recovered))
        return DecodeResult(
            selected_workers=frozenset(selected),
            recovered_partitions=recovered,
            available_workers=available,
            num_searches=searches,
        )

    def decode_batch(self, masks: MaskBatch) -> BatchDecodeResult:
        """Decode a whole batch of availability masks at once.

        ``masks`` is either a ``(num_masks, n)`` boolean indicator
        array or a sequence of worker-id iterables.  The contract is
        **bit-for-bit equivalence** with the looped path: the returned
        :meth:`BatchDecodeResult.results` equal
        ``[self.decode(m) for m in masks]`` element by element, *and*
        the injected generator ends in the identical stream position —
        fairness draws happen per mask in batch order, outside the
        vectorized kernels (see :mod:`repro.core.batch`).

        The one deliberate difference: malformed rows fail fast.  All
        rows are validated up front (lowest bad row raises, same
        :class:`DecodeError` as the looped path) before any RNG is
        consumed, whereas a loop would decode rows 0..k-1 before
        raising on row k.

        This base implementation validates then loops ``decode`` — the
        correct-by-construction fallback for decoders without a
        vectorized kernel.  CR/HR override it with the batched chain
        kernel; FR and the exact decoder override it to batch their
        cache lookups and result assembly (their per-mask work is
        RNG- or search-bound, so there is no deterministic inner loop
        to vectorize).
        """
        avail, originals = masks_to_array(
            masks, self._placement.num_workers
        )
        if originals is None:
            originals = [np.flatnonzero(row) for row in avail]
        results = [self.decode(mask) for mask in originals]
        num_masks = avail.shape[0]
        selected = np.zeros_like(avail)
        recovered = np.zeros(
            (num_masks, self._placement.num_partitions), dtype=bool
        )
        searches = np.empty(num_masks, dtype=np.intp)
        for i, res in enumerate(results):
            selected[i, list(res.selected_workers)] = True
            recovered[i, list(res.recovered_partitions)] = True
            searches[i] = res.num_searches
        return BatchDecodeResult(
            available=avail,
            selected=selected,
            recovered=recovered,
            num_searches=searches,
        )

    # ------------------------------------------------------------------
    def _decode(self, available: FrozenSet[int]) -> Selection:
        """Search hook: the :class:`Selection` for ``available``."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _decode()"
        )

    # ------------------------------------------------------------------
    def _finalize_batch(
        self,
        avail: np.ndarray,
        selected: np.ndarray,
        searches: np.ndarray,
    ) -> BatchDecodeResult:
        """Shared tail of every vectorized ``decode_batch`` override:
        invariant checks, recovery via the partition matrix, and the
        same per-decode metrics the looped path records."""
        empty = ~selected.any(axis=1)
        if empty.any():
            row = int(np.flatnonzero(empty)[0])
            raise DecodeError(
                "decoder selected no workers despite availability "
                f"{np.flatnonzero(avail[row]).tolist()}"
            )
        # float64 matmul takes the BLAS path (integer matmul does not);
        # counts are small exact integers either way.
        counts = selected.astype(np.float64) @ self._partition_matrix_f64()
        if (counts > 1.5).any():
            row, part = (int(v) for v in np.argwhere(counts > 1.5)[0])
            raise DecodeError(
                f"decoder bug: batch row {row} re-covers partition {part}"
            )
        recovered = counts > 0.5
        searches = np.asarray(searches, dtype=np.intp)
        metrics = self._metrics
        if metrics is not NULL_REGISTRY:
            metrics.counter("decode.calls").inc(len(searches))
            searches_hist = metrics.histogram("decode.num_searches")
            recovered_hist = metrics.histogram("decode.num_recovered")
            for s, r in zip(
                searches.tolist(), recovered.sum(axis=1).tolist()
            ):
                searches_hist.observe(s)
                recovered_hist.observe(r)
        return BatchDecodeResult(
            available=avail,
            selected=selected,
            recovered=recovered,
            num_searches=searches,
        )

    def _partition_matrix_f64(self) -> np.ndarray:
        """The placement's worker→partition indicator as a float matrix
        (computed once per decoder; used to batch recovery + the
        disjointness check via one matrix product)."""
        mat = getattr(self, "_pmat_f64", None)
        if mat is None:
            mat = partition_matrix(self._placement).astype(np.float64)
            self._pmat_f64 = mat
        return mat

    # ------------------------------------------------------------------
    def _memo(
        self,
        kind: str,
        available: FrozenSet[int],
        extra: Hashable,
        compute: Callable[[], _T],
    ) -> _T:
        """Memoise a *deterministic* search kernel through the attached
        cache; a plain ``compute()`` when no cache is attached.

        Only pure functions of (placement, ``available``, ``extra``)
        may go through here — never anything that touches ``self._rng``.
        """
        cache = self._cache
        if cache is None:
            return compute()
        return cache.get_or_compute(
            self._placement.fingerprint, kind, (available, extra), compute
        )

    def _memo_batch(
        self,
        kind: str,
        keys: Sequence[Hashable],
        compute_missing: Callable[[List[Hashable]], List[Any]],
    ) -> List[Any]:
        """Batch variant of :meth:`_memo`: resolve every key through the
        attached cache's one-pass hit/miss partition
        (:meth:`~repro.parallel.DecodeCache.get_or_compute_batch`);
        ``compute_missing`` receives the unique missing keys and must
        return their values, aligned.  Keys use the same
        ``(available, extra)`` shape as :meth:`_memo`, so looped and
        batched decoding share cache entries.
        """
        cache = self._cache
        if cache is None:
            return compute_missing(list(keys))
        return cache.get_or_compute_batch(
            self._placement.fingerprint, kind, keys, compute_missing
        )

    def _check_disjoint(self, selected: Iterable[int]) -> None:
        """Internal invariant: selected workers' partitions are disjoint."""
        seen: set[int] = set()
        for w in selected:
            parts = set(self._placement.partitions_of(w))
            overlap = seen & parts
            if overlap:
                raise DecodeError(
                    f"decoder bug: worker {w} re-covers partitions "
                    f"{sorted(overlap)}"
                )
            seen |= parts
