"""Decoder interface and registry.

A *decoder* implements the master's ``Decode()`` function: given the set
``W'`` of workers whose coded gradients arrived, select a pairwise
non-conflicting subset (an independent set of ``G[W']``) whose summed
payloads recover ``ĝ = Σ_{i∈I} g_i`` with ``|I|`` maximal.

All decoders share two contracts the paper relies on:

* **optimality** — the returned worker set is a *maximum* independent
  set of ``G[W']`` (verified against exact branch-and-bound in tests);
* **fairness** — under homogeneous stragglers every partition has the
  same probability of appearing in ``I`` (randomized tie-breaking,
  driven by an injected :class:`numpy.random.Generator`).

Public API
----------
:meth:`Decoder.decode` is the **single public entry point**: it
validates the availability mask, runs the scheme's search, checks the
disjointness invariant and returns a
:class:`~repro.types.DecodeResult`.  Subclasses implement the
:meth:`Decoder._decode` hook returning a typed :class:`Selection`.

``rng``, ``metrics`` and ``cache`` are keyword-only in
:func:`decoder_for` and every decoder constructor.

Caching
-------
Attach a :class:`~repro.parallel.DecodeCache` (constructor ``cache=``
or :meth:`Decoder.attach_cache`) and the decoders memoise their
*deterministic* search kernels through :meth:`Decoder._memo`, keyed on
(placement fingerprint, frozen availability mask).  Fairness RNG draws
are never cached, so cached decoding is bit-for-bit identical to
uncached — same results, same generator stream.
"""

from __future__ import annotations

import abc
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    NamedTuple,
    Type,
    TypeVar,
)

import numpy as np

from ..exceptions import DecodeError
from ..obs.registry import MetricsRegistry, NULL_REGISTRY
from ..types import DecodeResult
from .placement import Placement

_REGISTRY: Dict[str, Type["Decoder"]] = {}

_T = TypeVar("_T")


class Selection(NamedTuple):
    """What a decoder's search found for one availability mask."""

    #: the pairwise non-conflicting workers whose payloads are summed.
    workers: FrozenSet[int]
    #: how many greedy searches (start vertices) were run.
    num_searches: int


def register_decoder(scheme: str) -> Callable[[Type["Decoder"]], Type["Decoder"]]:
    """Class decorator registering a decoder under ``scheme``."""

    def wrap(cls: Type["Decoder"]) -> Type["Decoder"]:
        _REGISTRY[scheme] = cls
        cls.scheme = scheme
        return cls

    return wrap


def decoder_for(
    placement: "Placement | Any",
    *,
    rng: np.random.Generator | None = None,
    metrics: "MetricsRegistry | None" = None,
    cache: "Any | None" = None,
) -> "Decoder":
    """Instantiate the registered decoder matching ``placement.scheme``.

    ``placement`` may also be a
    :class:`~repro.core.scheme.PlacementScheme`; it is constructed
    first.  ``rng``, ``metrics`` and ``cache`` are keyword-only.  Falls
    back to the exact-MIS decoder for unknown schemes, which is correct
    for *any* placement (just not linear-time).  The fallback is
    registered on demand, so this works even when only this module has
    been imported; if registration is somehow impossible a descriptive
    :class:`~repro.exceptions.DecodeError` is raised instead of a bare
    ``KeyError``.
    """
    if not isinstance(placement, Placement):
        from .scheme import as_placement

        placement = as_placement(placement)
    cls = _REGISTRY.get(placement.scheme)
    if cls is None:
        if "exact" not in _REGISTRY:
            # Importing the module runs its @register_decoder("exact").
            from . import exact_decoder  # noqa: F401
        cls = _REGISTRY.get("exact")
        if cls is None:
            raise DecodeError(
                f"no decoder registered for scheme {placement.scheme!r} "
                f"and the exact-MIS fallback is unavailable; registered "
                f"schemes: {sorted(_REGISTRY)}"
            )
    decoder = cls(placement, rng=rng, cache=cache)
    if metrics is not None:
        decoder.attach_metrics(metrics)
    return decoder


class Decoder(abc.ABC):
    """Base class for the master's ``Decode()`` function."""

    scheme: str = "abstract"

    def __init__(
        self,
        placement: Placement,
        *,
        rng: np.random.Generator | None = None,
        cache: "Any | None" = None,
    ):
        self._placement = placement
        self._rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[DET003] deliberate opt-in to entropy when no rng is injected
        self._metrics: "MetricsRegistry" = NULL_REGISTRY
        self._cache = cache

    @property
    def placement(self) -> Placement:
        return self._placement

    @property
    def metrics(self) -> "MetricsRegistry":
        """The attached metrics sink (a shared no-op by default)."""
        return self._metrics

    def attach_metrics(self, registry: "MetricsRegistry") -> None:
        """Route this decoder's per-call metrics into ``registry``."""
        self._metrics = registry

    @property
    def cache(self):
        """The attached :class:`~repro.parallel.DecodeCache`, or ``None``."""
        return self._cache

    def attach_cache(self, cache) -> None:
        """Memoise this decoder's deterministic search kernels in
        ``cache`` (results stay bit-for-bit identical — see module
        docstring)."""
        self._cache = cache

    def decode(self, available_workers: Iterable[int]) -> DecodeResult:
        """Run one decoding round — the single public entry point.

        Parameters
        ----------
        available_workers:
            The workers ``W'`` whose coded gradients the master received
            this step.  Must be non-empty and within ``[0, n)``.
        """
        available = frozenset(available_workers)
        n = self._placement.num_workers
        if not available:
            raise DecodeError("cannot decode with zero available workers")
        bad = [w for w in available if not 0 <= w < n]
        if bad:
            raise DecodeError(f"available workers out of range [0, {n}): {bad}")
        selection = self._decode(available)
        selected, searches = selection
        if not selected:
            raise DecodeError(
                "decoder selected no workers despite availability "
                f"{sorted(available)}"
            )
        self._check_disjoint(selected)
        recovered = frozenset(
            p for w in selected for p in self._placement.partitions_of(w)
        )
        # No-op on the default NULL_REGISTRY, so untraced decodes pay
        # only these attribute lookups.
        metrics = self._metrics
        metrics.counter("decode.calls").inc()
        metrics.histogram("decode.num_searches").observe(searches)
        metrics.histogram("decode.num_recovered").observe(len(recovered))
        return DecodeResult(
            selected_workers=frozenset(selected),
            recovered_partitions=recovered,
            available_workers=available,
            num_searches=searches,
        )

    # ------------------------------------------------------------------
    def _decode(self, available: FrozenSet[int]) -> Selection:
        """Search hook: the :class:`Selection` for ``available``."""
        raise NotImplementedError(
            f"{type(self).__name__} must implement _decode()"
        )

    # ------------------------------------------------------------------
    def _memo(
        self,
        kind: str,
        available: FrozenSet[int],
        extra: Hashable,
        compute: Callable[[], _T],
    ) -> _T:
        """Memoise a *deterministic* search kernel through the attached
        cache; a plain ``compute()`` when no cache is attached.

        Only pure functions of (placement, ``available``, ``extra``)
        may go through here — never anything that touches ``self._rng``.
        """
        cache = self._cache
        if cache is None:
            return compute()
        return cache.get_or_compute(
            self._placement.fingerprint, kind, (available, extra), compute
        )

    def _check_disjoint(self, selected: Iterable[int]) -> None:
        """Internal invariant: selected workers' partitions are disjoint."""
        seen: set[int] = set()
        for w in selected:
            parts = set(self._placement.partitions_of(w))
            overlap = seen & parts
            if overlap:
                raise DecodeError(
                    f"decoder bug: worker {w} re-covers partitions "
                    f"{sorted(overlap)}"
                )
            seen |= parts
