"""Fractional repetition (FR) placement — Sec. III, Fig. 2(a).

FR requires ``c | n``.  The ``n`` workers split into ``n/c`` groups of
``c`` workers each; every worker in group ``q`` stores the same ``c``
partitions ``{q·c, …, q·c + c - 1}`` (paper, 1-indexed:
``D_{i,j} = D_{⌊(i-1)/c⌋·c + j}``).

Because all workers in a group are interchangeable, the conflict graph
is a disjoint union of ``n/c`` cliques of size ``c`` (Fig. 4(a)), and
decoding reduces to picking one surviving worker per group (Alg. 1).
"""

from __future__ import annotations

from typing import Tuple

from ..exceptions import PlacementError
from .placement import Placement


class FractionalRepetition(Placement):
    """The FR placement ``FR(n, c)`` with ``c | n``."""

    scheme = "fr"

    def __init__(self, num_workers: int, partitions_per_worker: int):
        super().__init__(num_workers, partitions_per_worker)
        n, c = self._n, self._c
        if n % c != 0:
            raise PlacementError(
                f"FR requires c | n; got n={n}, c={c} (use CR or HR instead)"
            )
        assignments = {
            worker: tuple(range((worker // c) * c, (worker // c) * c + c))
            for worker in range(n)
        }
        self._finalize(assignments)

    @property
    def num_groups(self) -> int:
        """``n / c`` worker groups, each holding one disjoint partition block."""
        return self._n // self._c

    def group_of(self, worker: int) -> int:
        """Group index of ``worker`` (0-indexed)."""
        if not 0 <= worker < self._n:
            raise PlacementError(f"worker {worker} out of range [0, {self._n})")
        return worker // self._c

    def workers_in_group(self, group: int) -> Tuple[int, ...]:
        """All workers of ``group``, in ascending index order."""
        if not 0 <= group < self.num_groups:
            raise PlacementError(
                f"group {group} out of range [0, {self.num_groups})"
            )
        return tuple(range(group * self._c, (group + 1) * self._c))
