"""Placement advisor: pick the placement for your cluster.

The paper leaves placement selection to the operator: FR recovers the
most but needs ``c | n``; CR always fits; HR interpolates via ``c1``.
This module automates the choice with the exact recovery machinery:

* :func:`candidate_placements` — every valid FR/CR/HR placement for
  given ``(n, c)``;
* :func:`evaluate_placement` — exact (or Monte-Carlo, for big ``n``)
  expected recovered partitions at a target ``w``;
* :func:`recommend_placement` — the candidate maximising expected
  recovery, with the full ranking for transparency.

``HR(n, c, 0)`` with ``n0 = c`` places identically to FR, so only
the first-constructed of any identical pair survives deduplication
(FR wins, being constructed before the HR variants).
"""

from __future__ import annotations

from dataclasses import dataclass
from math import comb
from typing import List

from ..analysis.closed_form import expected_recovered_exact
from ..analysis.recovery import monte_carlo_recovery
from ..exceptions import ConfigurationError, PlacementError
from .hybrid import HybridRepetition
from .placement import Placement
from .scheme import make_placement

#: Above this subset count we fall back to Monte-Carlo evaluation.
_EXACT_LIMIT = 50_000


@dataclass(frozen=True)
class PlacementScore:
    """One ranked candidate."""

    placement: Placement
    expected_recovered: float
    exact: bool

    @property
    def label(self) -> str:
        p = self.placement
        if isinstance(p, HybridRepetition):
            return f"HR(n={p.num_workers}, c1={p.c1}, c2={p.c2}, g={p.num_groups})"
        return f"{type(p).__name__}(n={p.num_workers}, c={p.partitions_per_worker})"


def candidate_placements(n: int, c: int) -> List[Placement]:
    """All valid FR/CR/HR placements for ``(n, c)``, deduplicated by
    assignment table."""
    if n <= 0 or not 1 <= c <= n:
        raise ConfigurationError(f"invalid (n, c) = ({n}, {c})")
    candidates: List[Placement] = [
        make_placement("cr", num_workers=n, partitions_per_worker=c)
    ]
    if n % c == 0:
        candidates.append(
            make_placement("fr", num_workers=n, partitions_per_worker=c)
        )
    for g in range(2, n + 1):
        if n % g != 0:
            continue
        for c1 in range(0, c + 1):
            try:
                candidates.append(
                    make_placement(
                        "hr", num_workers=n, c1=c1, c2=c - c1, num_groups=g,
                    )
                )
            except PlacementError:
                continue
    unique: List[Placement] = []
    seen = set()
    for cand in candidates:
        key = tuple(sorted(
            (w, tuple(sorted(cand.partitions_of(w))))
            for w in range(cand.num_workers)
        ))
        if key not in seen:
            seen.add(key)
            unique.append(cand)
    return unique


def evaluate_placement(
    placement: Placement,
    wait_for: int,
    trials: int = 4000,
    seed: int = 0,
) -> PlacementScore:
    """Expected recovered partitions at ``w`` — exact when affordable."""
    n = placement.num_workers
    if not 1 <= wait_for <= n:
        raise ConfigurationError(f"invalid w = {wait_for} for n = {n}")
    if comb(n, wait_for) <= _EXACT_LIMIT:
        value = expected_recovered_exact(placement, wait_for)
        return PlacementScore(placement, value, exact=True)
    stats = monte_carlo_recovery(placement, wait_for, trials=trials, seed=seed)
    return PlacementScore(placement, stats.mean_recovered, exact=False)


def rank_placements(
    n: int,
    c: int,
    wait_for: int,
    trials: int = 4000,
    seed: int = 0,
) -> List[PlacementScore]:
    """All candidates, best expected recovery first."""
    scores = [
        evaluate_placement(p, wait_for, trials=trials, seed=seed)
        for p in candidate_placements(n, c)
    ]
    return sorted(scores, key=lambda s: (-s.expected_recovered, s.label))


def recommend_placement(
    n: int,
    c: int,
    wait_for: int,
    trials: int = 4000,
    seed: int = 0,
) -> PlacementScore:
    """The single best candidate for ``(n, c)`` at wait count ``w``."""
    ranking = rank_placements(n, c, wait_for, trials=trials, seed=seed)
    return ranking[0]
