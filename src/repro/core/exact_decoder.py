"""Exact-MIS reference decoder.

Works for *any* placement by solving the maximum-independent-set
problem on the induced conflict subgraph with branch and bound.  This is
the ground truth the linear-time scheme decoders are validated against,
and the decoder of last resort for custom placements.

To preserve the paper's fairness property, when several maximum
independent sets exist one is chosen uniformly at random.
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

import numpy as np

from ..graphs.graph import Graph
from ..graphs.independent_set import (
    all_maximum_independent_sets,
    maximum_independent_set,
)
from .batch import BatchDecodeResult, MaskBatch, masks_to_array
from .conflict import conflict_graph
from .decoders import Decoder, Selection, register_decoder
from .placement import Placement


@register_decoder("exact")
class ExactDecoder(Decoder):
    """Branch-and-bound MIS decoder for arbitrary placements."""

    def __init__(
        self,
        placement: Placement,
        *,
        rng=None,
        fair: bool = True,
        cache=None,
    ):
        """``fair=True`` samples uniformly among all maximum independent
        sets (slower); ``fair=False`` returns a single deterministic
        optimum (used in benchmarks where only the size matters)."""
        super().__init__(placement, rng=rng, cache=cache)
        self._graph: Graph = conflict_graph(placement)
        self._fair = fair

    @property
    def graph(self) -> Graph:
        """The full conflict graph of the placement."""
        return self._graph

    def _decode(self, available: FrozenSet[int]) -> Selection:
        if self._fair:
            # all_maximum_independent_sets is canonically ordered (pure
            # in the induced subgraph), so the optima list memoises; the
            # uniform index draw below stays live for fairness.
            optima: Tuple[FrozenSet[int], ...] = self._memo(
                "exact-optima",
                available,
                "fair",
                lambda: tuple(
                    all_maximum_independent_sets(
                        self._graph.subgraph(available)
                    )
                ),
            )
            idx = int(self._rng.integers(len(optima)))
            chosen = optima[idx]
        else:
            chosen = self._memo(
                "exact-optima",
                available,
                "first",
                lambda: maximum_independent_set(
                    self._graph.subgraph(available)
                ),
            )
        return Selection(frozenset(int(v) for v in chosen), 1)

    def decode_batch(self, masks: MaskBatch) -> BatchDecodeResult:
        """Batched exact decoding: one cache pass, then fairness draws.

        The branch-and-bound kernel is pure in the induced subgraph, so
        the whole batch resolves through one
        :meth:`~Decoder._memo_batch` hit/miss partition; only the
        misses are solved.  The uniform index draws (fair mode) then
        run per mask in batch order — after the kernels but in the
        identical stream positions as the looped path, which also
        never draws *during* a search.
        """
        placement: Placement = self._placement
        avail, originals = masks_to_array(masks, placement.num_workers)
        num_masks = avail.shape[0]
        if originals is not None:
            fsets = [frozenset(m) for m in originals]
        else:
            fsets = [
                frozenset(np.flatnonzero(row).tolist()) for row in avail
            ]
        extra = "fair" if self._fair else "first"
        keys = [(fs, extra) for fs in fsets]

        def compute_missing(missing: List) -> List:
            if self._fair:
                return [
                    tuple(
                        all_maximum_independent_sets(
                            self._graph.subgraph(fs)
                        )
                    )
                    for fs, _ in missing
                ]
            return [
                maximum_independent_set(self._graph.subgraph(fs))
                for fs, _ in missing
            ]

        values = self._memo_batch("exact-optima", keys, compute_missing)
        selected = np.zeros_like(avail)
        for i, value in enumerate(values):
            if self._fair:
                chosen = value[int(self._rng.integers(len(value)))]
            else:
                chosen = value
            selected[i, [int(v) for v in chosen]] = True
        return self._finalize_batch(
            avail, selected, np.ones(num_masks, dtype=np.intp)
        )
