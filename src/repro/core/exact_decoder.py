"""Exact-MIS reference decoder.

Works for *any* placement by solving the maximum-independent-set
problem on the induced conflict subgraph with branch and bound.  This is
the ground truth the linear-time scheme decoders are validated against,
and the decoder of last resort for custom placements.

To preserve the paper's fairness property, when several maximum
independent sets exist one is chosen uniformly at random.
"""

from __future__ import annotations

from typing import FrozenSet

from ..graphs.graph import Graph
from ..graphs.independent_set import (
    all_maximum_independent_sets,
    maximum_independent_set,
)
from .conflict import conflict_graph
from .decoders import Decoder, register_decoder
from .placement import Placement


@register_decoder("exact")
class ExactDecoder(Decoder):
    """Branch-and-bound MIS decoder for arbitrary placements."""

    def __init__(
        self,
        placement: Placement,
        rng=None,
        fair: bool = True,
    ):
        """``fair=True`` samples uniformly among all maximum independent
        sets (slower); ``fair=False`` returns a single deterministic
        optimum (used in benchmarks where only the size matters)."""
        super().__init__(placement, rng=rng)
        self._graph: Graph = conflict_graph(placement)
        self._fair = fair

    @property
    def graph(self) -> Graph:
        """The full conflict graph of the placement."""
        return self._graph

    def _select(self, available: FrozenSet[int]) -> tuple[FrozenSet[int], int]:
        induced = self._graph.subgraph(available)
        if self._fair:
            optima = all_maximum_independent_sets(induced)
            idx = int(self._rng.integers(len(optima)))
            chosen = optima[idx]
        else:
            chosen = maximum_independent_set(induced)
        return frozenset(int(v) for v in chosen), 1
