"""Theoretical bounds — Sec. VII.

Theorems 10 and 11 bound the independence number of the induced
conflict graph (hence the recovered-gradient count) for FR, CR *and* HR
alike:

    min(⌈w/c⌉, ⌊n/c⌋)  ≤  α(G[W'])  ≤  min(w, ⌊n/c⌋)

with ``w = |W'| = n - s`` available workers.  Theorem 12 gives the
per-step descent bound used in the convergence analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def alpha_lower_bound(n: int, c: int, w: int) -> int:
    """Theorem 10: worst-case number of decodable workers."""
    _validate(n, c, w)
    if w == 0:
        return 0
    return min(math.ceil(w / c), n // c)


def alpha_upper_bound(n: int, c: int, w: int) -> int:
    """Theorem 11: best-case number of decodable workers."""
    _validate(n, c, w)
    return min(w, n // c)


def hr_alpha_bounds(
    n: int, c1: int, c2: int, g: int, w: int
) -> tuple[int, int]:
    """Corrected α bounds for HR placements with ``n0 > c``.

    Theorems 10/11 as printed share one bound across FR, CR and HR, but
    they implicitly assume ``n0 = c`` (where HR truly interpolates the
    two).  With ``n0 > c`` and ``c1 > 0`` every same-group pair
    conflicts (the validity condition ``n0 ≤ c + c1``), so at most one
    worker per group can ever be selected and

        min(⌈w/n0⌉, g)  ≤  α(G[W'])  ≤  min(w, g)

    — the group count ``g = n/n0 < n/c`` replaces ``⌊n/c⌋``.  The test
    suite demonstrates the printed Theorem 10 bound is violated for
    e.g. ``HR(12, 4, 0, g=2)`` at ``w = 12`` (α = 2 < 3) and that this
    corrected form holds across the valid grid.  For ``n0 = c`` or
    ``c1 = 0`` this reduces to the classical bounds.
    """
    c = c1 + c2
    _validate(n, c, w)
    if g <= 0 or n % g != 0:
        raise ValueError(f"need g | n with g > 0, got n={n}, g={g}")
    n0 = n // g
    if c1 == 0 or g == 1 or n0 == c:
        # Classical regimes: CR (c1=0 / g=1) or FR-interpolating (n0=c).
        return alpha_lower_bound(n, c, w), alpha_upper_bound(n, c, w)
    if w == 0:
        return 0, 0
    # Group-wise composition: each group behaves like a CR(n0, c)
    # circulant (complete when n0 <= 2c-1), contributing at most
    # n0 // c selected workers.  The adversary packs the w available
    # workers into as few consecutive groups as possible.
    per_group_cap = n0 // c
    full_groups, remainder = divmod(w, n0)
    lower = full_groups * per_group_cap
    if remainder:
        lower += min(-(-remainder // c), per_group_cap)
    upper = min(w, g * per_group_cap)
    return lower, upper


def recovered_partitions_bounds(n: int, c: int, w: int) -> tuple[int, int]:
    """Bounds on ``|I| = α(G[W']) · c``, capped at ``n`` partitions."""
    lo = min(alpha_lower_bound(n, c, w) * c, n)
    hi = min(alpha_upper_bound(n, c, w) * c, n)
    return lo, hi


def _validate(n: int, c: int, w: int) -> None:
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 1 <= c <= n:
        raise ValueError(f"need 1 <= c <= n, got c={c}, n={n}")
    if not 0 <= w <= n:
        raise ValueError(f"need 0 <= w <= n, got w={w}")


@dataclass(frozen=True)
class DescentBound:
    """Theorem 12 per-step expected descent bound.

    E[f(β_{t+1})] ≤ f(β_t) − η·|D_d|·‖∇f(β_t)‖² + L·η²·σ²·|D_d|²/2

    where ``|D_d|`` is the number of samples behind the decoded
    gradient, ``η`` the learning rate, ``L`` the Lipschitz constant of
    the gradient and ``σ²`` the gradient second-moment bound.
    """

    lipschitz: float
    sigma_squared: float

    def expected_decrease(
        self,
        loss: float,
        grad_norm_squared: float,
        learning_rate: float,
        decoded_samples: float,
    ) -> float:
        """Upper bound on the *next* step's expected loss."""
        if self.lipschitz <= 0:
            raise ValueError(f"L must be positive, got {self.lipschitz}")
        if learning_rate <= 0:
            raise ValueError(f"η must be positive, got {learning_rate}")
        if decoded_samples < 0:
            raise ValueError(
                f"|D_d| must be non-negative, got {decoded_samples}"
            )
        descent = learning_rate * decoded_samples * grad_norm_squared
        noise = (
            self.lipschitz
            * learning_rate**2
            * self.sigma_squared
            * decoded_samples**2
            / 2.0
        )
        return loss - descent + noise

    def max_stable_learning_rate(self, decoded_samples: float) -> float:
        """Largest ``η`` keeping the noise term below the descent term
        when ``‖∇f‖² = σ²`` (the conservative balance point).

        Setting descent = noise with ``‖∇f‖² = σ²`` gives
        ``η* = 2 / (L · |D_d|)``.
        """
        if decoded_samples <= 0:
            raise ValueError(
                f"|D_d| must be positive, got {decoded_samples}"
            )
        return 2.0 / (self.lipschitz * decoded_samples)
