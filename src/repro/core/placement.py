"""Dataset-partition placements (Sec. III of the paper).

A *placement* assigns each of ``n`` workers a tuple of ``c`` dataset
partitions out of ``n`` total partitions.  Everything downstream —
conflict graphs, decoders, coded-gradient payloads — is derived from the
placement, so this module is the single source of truth for "who stores
what".

Indexing convention
-------------------
The paper is 1-indexed; this library is 0-indexed throughout: workers
``0..n-1``, partitions ``0..n-1``.  Docstrings note the paper formula
being implemented whenever the translation is non-trivial.
"""

from __future__ import annotations

import abc
import hashlib
from typing import Dict, FrozenSet, List, Optional, Tuple

from ..exceptions import PlacementError


class Placement(abc.ABC):
    """Abstract base class for dataset-partition placements.

    Subclasses must populate ``_assignments`` (worker → partition tuple)
    during ``__init__`` via :meth:`_finalize`, which validates the
    standard invariants:

    * every worker stores exactly ``c`` distinct partitions,
    * every partition index lies in ``[0, n)``,
    * every partition is stored on at least one worker (no data loss).
    """

    #: short machine-readable identifier, e.g. ``"fr"``, ``"cr"``, ``"hr"``.
    scheme: str = "abstract"

    def __init__(self, num_workers: int, partitions_per_worker: int):
        if num_workers <= 0:
            raise PlacementError(f"need at least one worker, got n={num_workers}")
        if not 1 <= partitions_per_worker <= num_workers:
            raise PlacementError(
                "partitions per worker must satisfy 1 <= c <= n; "
                f"got c={partitions_per_worker}, n={num_workers}"
            )
        self._n = num_workers
        self._c = partitions_per_worker
        self._assignments: Dict[int, Tuple[int, ...]] = {}
        self._replicas: Dict[int, FrozenSet[int]] = {}
        self._fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    # Subclass hook
    # ------------------------------------------------------------------
    def _finalize(self, assignments: Dict[int, Tuple[int, ...]]) -> None:
        """Install and validate the worker → partitions table."""
        n, c = self._n, self._c
        if set(assignments) != set(range(n)):
            raise PlacementError(
                f"assignments must cover workers 0..{n - 1} exactly"
            )
        covered: Dict[int, List[int]] = {p: [] for p in range(n)}
        for worker, parts in assignments.items():
            if len(parts) != c or len(set(parts)) != c:
                raise PlacementError(
                    f"worker {worker} must store exactly c={c} distinct "
                    f"partitions, got {parts}"
                )
            for p in parts:
                if not 0 <= p < n:
                    raise PlacementError(
                        f"worker {worker} references partition {p} "
                        f"outside [0, {n})"
                    )
                covered[p].append(worker)
        orphans = [p for p, ws in covered.items() if not ws]
        if orphans:
            raise PlacementError(f"partitions never placed: {orphans}")
        self._assignments = dict(assignments)
        self._replicas = {p: frozenset(ws) for p, ws in covered.items()}

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        """``n``: number of workers (equals the number of partitions)."""
        return self._n

    @property
    def num_partitions(self) -> int:
        """Total dataset partitions; the paper always uses ``n``."""
        return self._n

    @property
    def partitions_per_worker(self) -> int:
        """``c``: storage/computation overhead per worker."""
        return self._c

    def partitions_of(self, worker: int) -> Tuple[int, ...]:
        """Partitions stored on ``worker`` (paper's ``D_{i,1..c}``)."""
        try:
            return self._assignments[worker]
        except KeyError:
            raise PlacementError(
                f"worker {worker} out of range [0, {self._n})"
            ) from None

    def workers_of(self, partition: int) -> FrozenSet[int]:
        """All workers holding a replica of ``partition``."""
        try:
            return self._replicas[partition]
        except KeyError:
            raise PlacementError(
                f"partition {partition} out of range [0, {self._n})"
            ) from None

    def conflicts(self, worker_a: int, worker_b: int) -> bool:
        """Ground-truth conflict: do the two workers share a partition?

        Two workers' coded (summed) gradients can be added up iff their
        partition sets are disjoint; sharing any partition would double-
        count its gradient (Sec. V-A).
        """
        if worker_a == worker_b:
            return True
        return bool(
            set(self.partitions_of(worker_a)) & set(self.partitions_of(worker_b))
        )

    @property
    def fingerprint(self) -> str:
        """Content digest of this placement, stable across processes.

        Unlike ``hash()`` (salted per interpreter for strings, and only
        process-stable here by accident of implementation), this is a
        deterministic function of (class, scheme, n, c, assignments) —
        the contract cache keys need to survive process-pool boundaries.
        """
        if self._fingerprint is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(
                f"{type(self).__name__}|{self.scheme}|{self._n}|{self._c}".encode()
            )
            for worker, parts in sorted(self._assignments.items()):
                h.update(f"|{worker}:{','.join(map(str, parts))}".encode())
            self._fingerprint = h.hexdigest()
        return self._fingerprint

    def assignment_table(self) -> Dict[int, Tuple[int, ...]]:
        """A defensive copy of the full worker → partitions mapping."""
        return dict(self._assignments)

    def replication_factor(self) -> float:
        """Average number of replicas per partition (always ``c`` here)."""
        total = sum(len(ws) for ws in self._replicas.values())
        return total / self._n

    def describe(self) -> str:
        """Multi-line human-readable table, mirroring the paper figures."""
        lines = [f"{type(self).__name__}(n={self._n}, c={self._c})"]
        for worker in range(self._n):
            parts = ", ".join(f"D{p}" for p in self.partitions_of(worker))
            lines.append(f"  W{worker}: [{parts}]")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(n={self._n}, c={self._c})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Placement):
            return NotImplemented
        return (
            self._n == other._n
            and self._c == other._c
            and self._assignments == other._assignments
        )

    def __hash__(self) -> int:
        return hash(
            (self._n, self._c, tuple(sorted(self._assignments.items())))
        )
