"""The paper's primary contribution: IS-GC placements, conflict graphs,
decoders, the summation code, and the theoretical bounds."""

from .placement import Placement
from .explicit import ExplicitPlacement
from .fractional import FractionalRepetition
from .cyclic import CyclicRepetition
from .hybrid import HybridRepetition
from .conflict import (
    conflict_graph,
    cr_conflict_graph,
    edge_subset,
    fr_conflict_graph,
    hr_conflict_graph,
)
from .scheme import (
    PLACEMENT_REGISTRY,
    CommEfficientScheme,
    CRScheme,
    ExplicitScheme,
    FRScheme,
    HeteroScheme,
    HRScheme,
    MultiMessageScheme,
    PlacementScheme,
    as_placement,
    make_placement,
    placement_scheme,
    register_placement,
    registered_placements,
    scheme_for,
)
from .batch import (
    BatchDecodeResult,
    batched_greedy_chains,
    circulant_adjacency,
    conflict_adjacency,
    enumerate_masks,
    masks_to_array,
    partition_matrix,
    validate_mask,
)
from .decoders import Decoder, decoder_for, register_decoder
from .fr_decoder import FRDecoder
from .cr_decoder import CRDecoder
from .hr_decoder import HRDecoder
from .exact_decoder import ExactDecoder
from .coding import SummationCode, average_gradient, verify_decode
from .hetero_placement import (
    AssignmentResult,
    heterogeneous_recovery,
    optimize_assignment,
)
from .migration import (
    MigrationPlan,
    migration_cost_seconds,
    migration_plan,
    worth_migrating,
)
from .advisor import (
    PlacementScore,
    candidate_placements,
    evaluate_placement,
    rank_placements,
    recommend_placement,
)
from .bounds import (
    DescentBound,
    alpha_lower_bound,
    alpha_upper_bound,
    hr_alpha_bounds,
    recovered_partitions_bounds,
)

__all__ = [
    "Placement",
    "ExplicitPlacement",
    "FractionalRepetition",
    "CyclicRepetition",
    "HybridRepetition",
    "conflict_graph",
    "fr_conflict_graph",
    "cr_conflict_graph",
    "hr_conflict_graph",
    "edge_subset",
    "PlacementScheme",
    "PLACEMENT_REGISTRY",
    "register_placement",
    "registered_placements",
    "placement_scheme",
    "make_placement",
    "as_placement",
    "scheme_for",
    "FRScheme",
    "CRScheme",
    "HRScheme",
    "ExplicitScheme",
    "HeteroScheme",
    "CommEfficientScheme",
    "MultiMessageScheme",
    "Decoder",
    "decoder_for",
    "register_decoder",
    "BatchDecodeResult",
    "batched_greedy_chains",
    "circulant_adjacency",
    "conflict_adjacency",
    "enumerate_masks",
    "masks_to_array",
    "partition_matrix",
    "validate_mask",
    "FRDecoder",
    "CRDecoder",
    "HRDecoder",
    "ExactDecoder",
    "SummationCode",
    "average_gradient",
    "verify_decode",
    "DescentBound",
    "alpha_lower_bound",
    "alpha_upper_bound",
    "recovered_partitions_bounds",
    "hr_alpha_bounds",
    "MigrationPlan",
    "migration_plan",
    "migration_cost_seconds",
    "worth_migrating",
    "AssignmentResult",
    "heterogeneous_recovery",
    "optimize_assignment",
    "PlacementScore",
    "candidate_placements",
    "evaluate_placement",
    "rank_placements",
    "recommend_placement",
]
