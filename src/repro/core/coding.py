"""The IS-GC summation code (Sec. IV).

To stay decodable from an *arbitrary* subset of workers, IS-GC restricts
worker-side encoding to coefficient-1 sums: worker ``i`` uploads
``Σ_j g_{D_{i,j}}``.  Any set of workers with pairwise-disjoint
partition sets can then be added directly at the master — no linear
solve, no minimum worker count.

This module carries the numeric half of the pipeline: turning
per-partition gradient vectors into worker payloads and turning a
decoding decision (:class:`repro.types.DecodeResult`) plus payloads into
the partial gradient ``ĝ`` (optionally rescaled to an unbiased estimate
of the full gradient, Assumption 2).
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping

import numpy as np

from ..exceptions import CodingError
from ..types import DecodeResult
from .placement import Placement


class SummationCode:
    """Encode/decode gradient payloads for a given placement."""

    def __init__(self, placement: Placement):
        self._placement = placement

    @property
    def placement(self) -> Placement:
        return self._placement

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def encode(
        self, partition_gradients: Mapping[int, np.ndarray]
    ) -> Dict[int, np.ndarray]:
        """Compute every worker's payload from per-partition gradients.

        ``partition_gradients`` maps partition index → gradient vector.
        Missing partitions raise; downstream straggler behaviour is
        modelled by *dropping worker payloads*, never by dropping
        partition gradients.
        """
        payloads: Dict[int, np.ndarray] = {}
        for worker in range(self._placement.num_workers):
            payloads[worker] = self.encode_worker(worker, partition_gradients)
        return payloads

    def encode_worker(
        self, worker: int, partition_gradients: Mapping[int, np.ndarray]
    ) -> np.ndarray:
        """Payload of one worker: the plain sum over its partitions."""
        parts = self._placement.partitions_of(worker)
        missing = [p for p in parts if p not in partition_gradients]
        if missing:
            raise CodingError(
                f"worker {worker} needs gradients for partitions {missing}"
            )
        total = np.array(partition_gradients[parts[0]], dtype=float, copy=True)
        for p in parts[1:]:
            total += partition_gradients[p]
        return total

    # ------------------------------------------------------------------
    # Master side
    # ------------------------------------------------------------------
    def decode_sum(
        self,
        decision: DecodeResult,
        worker_payloads: Mapping[int, np.ndarray],
    ) -> np.ndarray:
        """``ĝ = Σ_{i∈I} g_i``: add the selected workers' payloads."""
        missing = [
            w for w in decision.selected_workers if w not in worker_payloads
        ]
        if missing:
            raise CodingError(
                f"selected workers without payloads: {sorted(missing)}"
            )
        workers = sorted(decision.selected_workers)
        total = np.array(worker_payloads[workers[0]], dtype=float, copy=True)
        for w in workers[1:]:
            total += worker_payloads[w]
        return total

    def decode_unbiased(
        self,
        decision: DecodeResult,
        worker_payloads: Mapping[int, np.ndarray],
    ) -> np.ndarray:
        """Unbiased full-gradient estimate ``(n / |I|) · ĝ`` (Assumption 2).

        With homogeneous stragglers each partition appears in ``I`` with
        equal probability, so scaling the partial sum by ``n / |I|``
        makes its expectation the full gradient sum ``Σ_{i=1}^n g_i``.
        """
        partial = self.decode_sum(decision, worker_payloads)
        scale = self._placement.num_partitions / decision.num_recovered
        return partial * scale


def average_gradient(
    gradient_sum: np.ndarray, num_partitions_in_sum: int
) -> np.ndarray:
    """Per-partition average; handy when the optimizer expects means."""
    if num_partitions_in_sum <= 0:
        raise CodingError(
            f"need a positive partition count, got {num_partitions_in_sum}"
        )
    return gradient_sum / num_partitions_in_sum


def verify_decode(
    placement: Placement,
    decision: DecodeResult,
    partition_gradients: Mapping[int, np.ndarray],
    decoded: np.ndarray,
    atol: float = 1e-9,
) -> bool:
    """Check ``decoded == Σ_{i∈I} g_i`` against raw partition gradients."""
    expected = np.zeros_like(decoded, dtype=float)
    for p in decision.recovered_partitions:
        expected = expected + np.asarray(partition_gradients[p], dtype=float)
    return bool(np.allclose(decoded, expected, atol=atol))
