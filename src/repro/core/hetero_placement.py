"""Heterogeneity-aware worker assignment.

The paper's placements index workers abstractly; on a real cluster the
operator also chooses *which machine plays which worker index*.  With
chronically slow machines that choice matters: under FR, packing two
slow machines into the same group sacrifices that group every step,
while spreading them lets their fast group-mates cover for them.

This module optimises the machine → worker-index assignment for a given
placement and per-machine delay profile:

* :func:`heterogeneous_recovery` — expected recovered partitions when
  the master waits for the ``w`` fastest machines each step and each
  machine's delay is exponential with its own mean;
* :func:`optimize_assignment` — local-search (pairwise swaps) over
  assignments maximising that expectation.

Related work: heterogeneity-aware gradient coding (paper's ref. [21]).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from .decoders import decoder_for
from .placement import Placement


def heterogeneous_recovery(
    placement: Placement,
    wait_for: int,
    delay_means: Sequence[float],
    assignment: Sequence[int] | None = None,
    trials: int = 1500,
    seed: int = 0,
) -> float:
    """E[recovered partitions] under per-machine exponential delays.

    ``delay_means[m]`` is machine ``m``'s mean delay; ``assignment[m]``
    is the worker index machine ``m`` plays (identity by default).
    Each trial samples delays, takes the ``w`` fastest machines, maps
    them to worker indices, and decodes.
    """
    n = placement.num_workers
    if len(delay_means) != n:
        raise ConfigurationError(
            f"need {n} delay means, got {len(delay_means)}"
        )
    if any(m < 0 for m in delay_means):
        raise ConfigurationError("delay means must be non-negative")
    if not 1 <= wait_for <= n:
        raise ConfigurationError(f"invalid w = {wait_for} for n = {n}")
    if assignment is None:
        assignment = list(range(n))
    if sorted(assignment) != list(range(n)):
        raise ConfigurationError(
            "assignment must be a permutation of worker indices"
        )
    rng = np.random.default_rng(seed)
    decoder = decoder_for(placement, rng=np.random.default_rng(seed + 1))
    means = np.asarray(delay_means, dtype=float)

    total = 0
    for _ in range(trials):
        delays = np.where(means > 0, rng.exponential(np.maximum(means, 1e-12)), 0.0)
        fastest_machines = np.argsort(delays, kind="stable")[:wait_for]
        available = [assignment[m] for m in fastest_machines]
        total += decoder.decode(available).num_recovered
    return total / trials


@dataclass(frozen=True)
class AssignmentResult:
    """Outcome of the assignment search."""

    assignment: List[int]  # machine m → worker index
    expected_recovered: float
    baseline_recovered: float  # identity assignment

    @property
    def improvement(self) -> float:
        return self.expected_recovered - self.baseline_recovered


def optimize_assignment(
    placement: Placement,
    wait_for: int,
    delay_means: Sequence[float],
    trials: int = 1000,
    max_passes: int = 3,
    seed: int = 0,
) -> AssignmentResult:
    """Greedy pairwise-swap search for a better machine→worker mapping.

    Starts from the identity, repeatedly tries every swap and keeps
    improvements, up to ``max_passes`` sweeps or until no swap helps.
    Evaluation noise is controlled by sharing the seed across
    candidates (common random numbers).
    """
    n = placement.num_workers
    if max_passes <= 0:
        raise ConfigurationError(f"max_passes must be positive, got {max_passes}")
    assignment = list(range(n))

    def score(a: Sequence[int]) -> float:
        return heterogeneous_recovery(
            placement, wait_for, delay_means,
            assignment=a, trials=trials, seed=seed,
        )

    baseline = score(assignment)
    best = baseline
    for _ in range(max_passes):
        improved = False
        for i in range(n):
            for j in range(i + 1, n):
                candidate = assignment.copy()
                candidate[i], candidate[j] = candidate[j], candidate[i]
                value = score(candidate)
                if value > best + 1e-9:
                    assignment = candidate
                    best = value
                    improved = True
        if not improved:
            break
    return AssignmentResult(
        assignment=assignment,
        expected_recovered=best,
        baseline_recovered=baseline,
    )
