"""Decoder for hybrid repetition — Alg. 3 + Alg. 4 of the paper.

The general HR conflict graph is "FR-like within a group, CR-like across
neighbouring groups".  Alg. 3 adapts the CR greedy walk:

* start vertices are the available workers of **one random non-empty
  group** (Theorem 8: some maximum independent set touches any group
  with survivors);
* the clockwise walk admits a candidate iff it conflicts with neither
  the previously admitted vertex nor the start vertex, where conflict is
  the closed-form predicate of Alg. 4 (within-group completeness plus
  neighbouring-group CR spill-over).

Consecutive + wrap checks suffice for pairwise independence by the
observation in Theorem 9 (conflict "monotonicity" along the circle).

Special cases route to simpler algorithms:

* ``c1 = 0`` or ``g = 1`` → the placement *is* CR, use the CR walk;
* ``c2 = 0`` → groups are conflict-isolated; decode each group
  independently with the CR walk on its local circle (which degenerates
  to "pick one worker per group" when ``n0 ≤ 2c - 1``, i.e. FR).
"""

from __future__ import annotations

from typing import FrozenSet, List, Tuple

import numpy as np

from ..graphs.circulant import circular_distance
from .batch import (
    BatchDecodeResult,
    MaskBatch,
    batched_greedy_chains,
    circulant_adjacency,
    conflict_adjacency,
    masks_to_array,
    segment_argmax,
)
from .decoders import Decoder, Selection, register_decoder
from .hybrid import HybridRepetition


@register_decoder("hr")
class HRDecoder(Decoder):
    """Alg. 3/4: group-seeded greedy walk with the HR conflict predicate."""

    def __init__(self, placement: HybridRepetition, *, rng=None, cache=None):
        if not isinstance(placement, HybridRepetition):
            raise TypeError(
                "HRDecoder requires a HybridRepetition placement, "
                f"got {type(placement).__name__}"
            )
        super().__init__(placement, rng=rng, cache=cache)

    def _decode(self, available: FrozenSet[int]) -> Selection:
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n = placement.num_workers
        c = placement.partitions_per_worker

        if placement.c1 == 0 or placement.num_groups == 1:
            return self._cr_walk(available, n, c)
        if placement.c2 == 0:
            return self._per_group(available)
        return self._general_walk(available)

    def decode_batch(self, masks: MaskBatch) -> BatchDecodeResult:
        """Vectorized Algs. 3/4 across a whole mask batch.

        Mirrors :meth:`_decode`'s three cases.  In every case the
        fairness draws (seed vertex / seed group, start-order shuffle)
        happen per mask in batch order with identical generator
        consumption to the looped path, and only the deterministic
        walks run through the vectorized kernel — so the batch is
        bit-for-bit identical to looping :meth:`decode`.
        """
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n = placement.num_workers
        c = placement.partitions_per_worker
        avail, _ = masks_to_array(masks, n)

        if placement.c1 == 0 or placement.num_groups == 1:
            # HR(n, 0, c) ≡ CR(n, c): window-seeded walks on the global
            # circle (circular distance ≥ c ⟺ non-adjacent in C_n^{1..c-1}).
            offsets = np.arange(c)

            def starts_for(row: np.ndarray, members: np.ndarray) -> List[int]:
                u = int(members[self._rng.integers(members.size)])
                return sorted(int(v) for v in (u + offsets) % n if row[v])

            selected, searches = self._batch_walks(
                avail, "hr-cr-chain", circulant_adjacency(n, c), starts_for
            )
        elif placement.c2 == 0:
            selected, searches = self._batch_per_group(avail)
        else:
            # General HR: seed one random non-empty group, start from
            # each of its survivors, walk under the Alg. 4 predicate
            # (⟺ adjacency in the conflict matrix).
            n0 = placement.group_size

            def starts_for(row: np.ndarray, members: np.ndarray) -> List[int]:
                groups = np.unique(members // n0)
                group = int(groups[self._rng.integers(groups.size)])
                return members[members // n0 == group].tolist()

            selected, searches = self._batch_walks(
                avail, "hr-general-chain", self._conflict_adj(), starts_for
            )
        return self._finalize_batch(avail, selected, searches)

    def _conflict_adj(self) -> np.ndarray:
        """Alg. 4 conflict matrix, built once per decoder."""
        adj = getattr(self, "_adj", None)
        if adj is None:
            adj = conflict_adjacency(self._placement)
            self._adj = adj
        return adj

    # ------------------------------------------------------------------
    def _batch_walks(
        self,
        avail: np.ndarray,
        kind: str,
        adj: np.ndarray,
        starts_for,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Shared batched walk for the whole-circle cases: per-mask RNG
        start lists in batch order, one kernel run for every
        (mask, start) pair, first strictly-largest chain per mask."""
        num_masks = avail.shape[0]
        cache = self._cache
        all_starts: List[int] = []
        row_of: List[int] = []
        searches = np.empty(num_masks, dtype=np.intp)
        row_fsets: List[FrozenSet[int]] = []
        for i in range(num_masks):
            members = np.flatnonzero(avail[i])
            starts = starts_for(avail[i], members)
            self._rng.shuffle(starts)
            searches[i] = len(starts)
            all_starts.extend(starts)
            row_of.extend([i] * len(starts))
            if cache is not None:
                row_fsets.append(frozenset(members.tolist()))

        rows_arr = np.asarray(row_of, dtype=np.intp)
        starts_arr = np.asarray(all_starts, dtype=np.intp)
        selected = np.zeros_like(avail)
        if cache is None:
            chains = batched_greedy_chains(adj, avail[rows_arr], starts_arr)
            winners = segment_argmax(
                chains.sum(axis=1).tolist(), searches.tolist()
            )
            selected = chains[winners]
        else:
            keys = [
                (row_fsets[i], start)
                for i, start in zip(row_of, all_starts)
            ]
            fset_row: dict = {}
            for i, fs in enumerate(row_fsets):
                fset_row.setdefault(fs, i)

            def compute_missing(missing):
                miss_rows = np.asarray(
                    [fset_row[fs] for fs, _ in missing], dtype=np.intp
                )
                miss_starts = np.asarray(
                    [start for _, start in missing], dtype=np.intp
                )
                miss_chains = batched_greedy_chains(
                    adj, avail[miss_rows], miss_starts
                )
                return [
                    frozenset(np.flatnonzero(row).tolist())
                    for row in miss_chains
                ]

            chain_sets = self._memo_batch(kind, keys, compute_missing)
            winners = segment_argmax(
                [len(s) for s in chain_sets], searches.tolist()
            )
            for i, w in enumerate(winners):
                selected[i, list(chain_sets[w])] = True
        return selected, searches

    def _batch_per_group(
        self, avail: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Batched grouped-CR case (c2 = 0): every non-empty
        (mask, group) pair is one segment of walks on its local
        n0-circle; winners union into the global selection."""
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n0 = placement.group_size
        num_groups = placement.num_groups
        c = placement.partitions_per_worker
        num_masks = avail.shape[0]
        cache = self._cache
        local = avail.reshape(num_masks, num_groups, n0)
        offsets = np.arange(c)

        seg_mask: List[int] = []
        seg_group: List[int] = []
        seg_len: List[int] = []
        walk_mask: List[int] = []
        walk_group: List[int] = []
        all_starts: List[int] = []
        searches = np.zeros(num_masks, dtype=np.intp)
        row_fsets: List[FrozenSet[int]] = []
        for i in range(num_masks):
            if cache is not None:
                row_fsets.append(
                    frozenset(np.flatnonzero(avail[i]).tolist())
                )
            for group in range(num_groups):
                lrow = local[i, group]
                members = np.flatnonzero(lrow)
                if not members.size:
                    continue
                u = int(members[self._rng.integers(members.size)])
                starts = sorted(
                    int(v) for v in (u + offsets) % n0 if lrow[v]
                )
                self._rng.shuffle(starts)
                searches[i] += len(starts)
                seg_mask.append(i)
                seg_group.append(group)
                seg_len.append(len(starts))
                for start in starts:
                    walk_mask.append(i)
                    walk_group.append(group)
                    all_starts.append(start)

        walk_mask_arr = np.asarray(walk_mask, dtype=np.intp)
        walk_group_arr = np.asarray(walk_group, dtype=np.intp)
        starts_arr = np.asarray(all_starts, dtype=np.intp)
        adj0 = circulant_adjacency(n0, c)
        selected = np.zeros_like(avail)
        selected_local = selected.reshape(num_masks, num_groups, n0)
        seg_mask_arr = np.asarray(seg_mask, dtype=np.intp)
        seg_group_arr = np.asarray(seg_group, dtype=np.intp)
        if cache is None:
            chains = batched_greedy_chains(
                adj0, local[walk_mask_arr, walk_group_arr], starts_arr
            )
            winners = segment_argmax(chains.sum(axis=1).tolist(), seg_len)
            selected_local[seg_mask_arr, seg_group_arr] = chains[winners]
        else:
            keys = [
                (row_fsets[m], (g, s))
                for m, g, s in zip(walk_mask, walk_group, all_starts)
            ]
            key_walk: dict = {}
            for w, key in enumerate(keys):
                key_walk.setdefault(key, w)

            def compute_missing(missing):
                walks = [key_walk[(fs, extra)] for fs, extra in missing]
                idx = np.asarray(walks, dtype=np.intp)
                miss_chains = batched_greedy_chains(
                    adj0,
                    local[walk_mask_arr[idx], walk_group_arr[idx]],
                    starts_arr[idx],
                )
                return [
                    frozenset(np.flatnonzero(row).tolist())
                    for row in miss_chains
                ]

            chain_sets = self._memo_batch(
                "hr-group-chain", keys, compute_missing
            )
            winners = segment_argmax([len(s) for s in chain_sets], seg_len)
            for j, w in enumerate(winners):
                selected_local[seg_mask[j], seg_group[j], list(chain_sets[w])] = True
        return selected, np.maximum(searches, 1)

    # ------------------------------------------------------------------
    # Pure-CR degenerate case
    # ------------------------------------------------------------------
    def _cr_walk(self, available: FrozenSet[int], n: int, c: int) -> Selection:
        """Alg. 2 on the global circle (HR(n, 0, c) ≡ CR(n, c))."""
        u = int(self._rng.choice(sorted(available)))
        starts = sorted({(u + v) % n for v in range(c)} & available)
        # Random start order keeps tie-breaking fair (see CRDecoder).
        self._rng.shuffle(starts)
        best: FrozenSet[int] = frozenset()
        for start in starts:
            # Pure in (mask, start) — memoisable; RNG draws stay live.
            chain = self._memo(
                "hr-cr-chain",
                available,
                start,
                lambda start=start: self._circle_chain(start, available, n, c),
            )
            if len(chain) > len(best):
                best = chain
        return Selection(best, len(starts))

    @staticmethod
    def _circle_chain(
        start: int, available: FrozenSet[int], n: int, c: int
    ) -> FrozenSet[int]:
        """Deterministic clockwise greedy walk on an ``n``-circle."""
        chain: List[int] = [start]
        last = start
        for offset in range(1, n):
            cand = (start + offset) % n
            if cand not in available:
                continue
            if (
                circular_distance(last, cand, n) >= c
                and circular_distance(cand, start, n) >= c
            ):
                chain.append(cand)
                last = cand
        return frozenset(chain)

    # ------------------------------------------------------------------
    # Grouped-CR case (c2 = 0): groups are conflict-isolated
    # ------------------------------------------------------------------
    def _per_group(self, available: FrozenSet[int]) -> Selection:
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n0 = placement.group_size
        c = placement.partitions_per_worker
        selected: set[int] = set()
        searches = 0
        for group in range(placement.num_groups):
            base = group * n0
            local_avail = frozenset(
                w - base for w in available if base <= w < base + n0
            )
            if not local_avail:
                continue
            u = int(self._rng.choice(sorted(local_avail)))
            starts = sorted({(u + v) % n0 for v in range(c)} & local_avail)
            self._rng.shuffle(starts)
            best_local: FrozenSet[int] = frozenset()
            for start in starts:
                searches += 1
                # local_avail is a pure projection of the global mask, so
                # keying on (mask, group, start) is sound.
                chain = self._memo(
                    "hr-group-chain",
                    available,
                    (group, start),
                    lambda start=start: self._circle_chain(
                        start, local_avail, n0, c
                    ),
                )
                if len(chain) > len(best_local):
                    best_local = chain
            selected |= {base + v for v in best_local}
        return Selection(frozenset(selected), max(searches, 1))

    # ------------------------------------------------------------------
    # General HR (c1 > 0 and c2 > 0): Alg. 3
    # ------------------------------------------------------------------
    def _general_walk(self, available: FrozenSet[int]) -> Selection:
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n0 = placement.group_size
        non_empty = sorted({w // n0 for w in available})
        group = int(self._rng.choice(non_empty))
        starts = sorted(
            w for w in available if w // n0 == group
        )
        # Alg. 3: "as long as i is randomly permutated, gradients on each
        # worker have an equal chance" — permute the start order.
        self._rng.shuffle(starts)
        best: FrozenSet[int] = frozenset()
        for start in starts:
            chain = self._memo(
                "hr-general-chain",
                available,
                start,
                lambda start=start: self._conflict_chain(start, available),
            )
            if len(chain) > len(best):
                best = chain
        return Selection(best, len(starts))

    def _conflict_chain(
        self, start: int, available: FrozenSet[int]
    ) -> FrozenSet[int]:
        """Deterministic Alg. 3 walk under the Alg. 4 conflict predicate."""
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n = placement.num_workers
        chain: List[int] = [start]
        last = start
        for offset in range(1, n):
            cand = (start + offset) % n
            if cand not in available:
                continue
            if not placement.conflicts_fast(last, cand) and not (
                placement.conflicts_fast(cand, start)
            ):
                chain.append(cand)
                last = cand
        return frozenset(chain)
