"""Decoder for hybrid repetition — Alg. 3 + Alg. 4 of the paper.

The general HR conflict graph is "FR-like within a group, CR-like across
neighbouring groups".  Alg. 3 adapts the CR greedy walk:

* start vertices are the available workers of **one random non-empty
  group** (Theorem 8: some maximum independent set touches any group
  with survivors);
* the clockwise walk admits a candidate iff it conflicts with neither
  the previously admitted vertex nor the start vertex, where conflict is
  the closed-form predicate of Alg. 4 (within-group completeness plus
  neighbouring-group CR spill-over).

Consecutive + wrap checks suffice for pairwise independence by the
observation in Theorem 9 (conflict "monotonicity" along the circle).

Special cases route to simpler algorithms:

* ``c1 = 0`` or ``g = 1`` → the placement *is* CR, use the CR walk;
* ``c2 = 0`` → groups are conflict-isolated; decode each group
  independently with the CR walk on its local circle (which degenerates
  to "pick one worker per group" when ``n0 ≤ 2c - 1``, i.e. FR).
"""

from __future__ import annotations

from typing import FrozenSet, List

from ..graphs.circulant import circular_distance
from .decoders import Decoder, Selection, register_decoder
from .hybrid import HybridRepetition


@register_decoder("hr")
class HRDecoder(Decoder):
    """Alg. 3/4: group-seeded greedy walk with the HR conflict predicate."""

    def __init__(self, placement: HybridRepetition, *, rng=None, cache=None):
        if not isinstance(placement, HybridRepetition):
            raise TypeError(
                f"HRDecoder requires a HybridRepetition placement, "
                f"got {type(placement).__name__}"
            )
        super().__init__(placement, rng=rng, cache=cache)

    def _decode(self, available: FrozenSet[int]) -> Selection:
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n = placement.num_workers
        c = placement.partitions_per_worker

        if placement.c1 == 0 or placement.num_groups == 1:
            return self._cr_walk(available, n, c)
        if placement.c2 == 0:
            return self._per_group(available)
        return self._general_walk(available)

    # ------------------------------------------------------------------
    # Pure-CR degenerate case
    # ------------------------------------------------------------------
    def _cr_walk(self, available: FrozenSet[int], n: int, c: int) -> Selection:
        """Alg. 2 on the global circle (HR(n, 0, c) ≡ CR(n, c))."""
        u = int(self._rng.choice(sorted(available)))
        starts = sorted({(u + v) % n for v in range(c)} & available)
        # Random start order keeps tie-breaking fair (see CRDecoder).
        self._rng.shuffle(starts)
        best: FrozenSet[int] = frozenset()
        for start in starts:
            # Pure in (mask, start) — memoisable; RNG draws stay live.
            chain = self._memo(
                "hr-cr-chain",
                available,
                start,
                lambda start=start: self._circle_chain(start, available, n, c),
            )
            if len(chain) > len(best):
                best = chain
        return Selection(best, len(starts))

    @staticmethod
    def _circle_chain(
        start: int, available: FrozenSet[int], n: int, c: int
    ) -> FrozenSet[int]:
        """Deterministic clockwise greedy walk on an ``n``-circle."""
        chain: List[int] = [start]
        last = start
        for offset in range(1, n):
            cand = (start + offset) % n
            if cand not in available:
                continue
            if (
                circular_distance(last, cand, n) >= c
                and circular_distance(cand, start, n) >= c
            ):
                chain.append(cand)
                last = cand
        return frozenset(chain)

    # ------------------------------------------------------------------
    # Grouped-CR case (c2 = 0): groups are conflict-isolated
    # ------------------------------------------------------------------
    def _per_group(self, available: FrozenSet[int]) -> Selection:
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n0 = placement.group_size
        c = placement.partitions_per_worker
        selected: set[int] = set()
        searches = 0
        for group in range(placement.num_groups):
            base = group * n0
            local_avail = frozenset(
                w - base for w in available if base <= w < base + n0
            )
            if not local_avail:
                continue
            u = int(self._rng.choice(sorted(local_avail)))
            starts = sorted({(u + v) % n0 for v in range(c)} & local_avail)
            self._rng.shuffle(starts)
            best_local: FrozenSet[int] = frozenset()
            for start in starts:
                searches += 1
                # local_avail is a pure projection of the global mask, so
                # keying on (mask, group, start) is sound.
                chain = self._memo(
                    "hr-group-chain",
                    available,
                    (group, start),
                    lambda start=start: self._circle_chain(
                        start, local_avail, n0, c
                    ),
                )
                if len(chain) > len(best_local):
                    best_local = chain
            selected |= {base + v for v in best_local}
        return Selection(frozenset(selected), max(searches, 1))

    # ------------------------------------------------------------------
    # General HR (c1 > 0 and c2 > 0): Alg. 3
    # ------------------------------------------------------------------
    def _general_walk(self, available: FrozenSet[int]) -> Selection:
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n0 = placement.group_size
        non_empty = sorted({w // n0 for w in available})
        group = int(self._rng.choice(non_empty))
        starts = sorted(
            w for w in available if w // n0 == group
        )
        # Alg. 3: "as long as i is randomly permutated, gradients on each
        # worker have an equal chance" — permute the start order.
        self._rng.shuffle(starts)
        best: FrozenSet[int] = frozenset()
        for start in starts:
            chain = self._memo(
                "hr-general-chain",
                available,
                start,
                lambda start=start: self._conflict_chain(start, available),
            )
            if len(chain) > len(best):
                best = chain
        return Selection(best, len(starts))

    def _conflict_chain(
        self, start: int, available: FrozenSet[int]
    ) -> FrozenSet[int]:
        """Deterministic Alg. 3 walk under the Alg. 4 conflict predicate."""
        placement: HybridRepetition = self._placement  # type: ignore[assignment]
        n = placement.num_workers
        chain: List[int] = [start]
        last = start
        for offset in range(1, n):
            cand = (start + offset) % n
            if cand not in available:
                continue
            if not placement.conflicts_fast(last, cand) and not (
                placement.conflicts_fast(cand, start)
            ):
                chain.append(cand)
                last = cand
        return frozenset(chain)
