"""User-defined placements.

Research on placement design goes beyond FR/CR/HR (the paper itself
invites new trade-off points).  :class:`ExplicitPlacement` lets a user
supply any worker → partitions table; the generic machinery — ground-
truth conflict graphs, the exact-MIS decoder, the summation code, the
advisor's evaluation — works unchanged on top of it.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence, Tuple

from ..exceptions import PlacementError
from .placement import Placement


class ExplicitPlacement(Placement):
    """A placement defined by an explicit assignment table.

    ``assignments`` maps every worker ``0..n-1`` to its partition
    tuple; all workers must store the same number ``c`` of distinct
    partitions and every partition must be stored somewhere (the
    standard :class:`Placement` invariants).

    Decoding dispatches to the exact branch-and-bound decoder, which
    is correct for any placement.
    """

    scheme = "explicit"

    def __init__(self, assignments: Mapping[int, Sequence[int]]):
        if not assignments:
            raise PlacementError("assignments table is empty")
        n = len(assignments)
        counts = {len(set(parts)) for parts in assignments.values()}
        if len(counts) != 1:
            raise PlacementError(
                "all workers must store the same number of partitions, "
                f"got counts {sorted(counts)}"
            )
        (c,) = counts
        super().__init__(n, c)
        table: Dict[int, Tuple[int, ...]] = {
            worker: tuple(parts) for worker, parts in assignments.items()
        }
        self._finalize(table)

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[int]]) -> "ExplicitPlacement":
        """Build from a row-per-worker list, e.g. ``[[0,1],[1,2],…]``."""
        return cls({worker: row for worker, row in enumerate(rows)})
