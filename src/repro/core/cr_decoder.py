"""Decoder for cyclic repetition — Alg. 2 of the paper.

Selecting workers whose payloads can all be added is a maximum-
independent-set problem on the circulant conflict graph ``C_n^{1..c-1}``
restricted to ``W'``.  Alg. 2 exploits the circular structure:

1. pick a random available vertex ``u`` (fairness);
2. for each available start vertex in the clockwise window
   ``{u, u+1, …, u+c-1}`` (at most ``c`` starts — Theorem 3 proves one
   of them seeds a *maximum* independent set);
3. from each start, walk clockwise greedily, adding any available
   vertex at circular distance ≥ c from both the previously added
   vertex and the start (Theorem 2: this yields a maximal set);
4. keep the largest set found.

The greedy chain is pairwise independent because consecutive clockwise
gaps ≥ c and a wrap gap ≥ c imply every inter-vertex arc (a sum of such
gaps) is ≥ c on both sides.

``starts="all"`` replaces the window with every available vertex —
an O(|W'|²/c) belt-and-braces mode used by tests to confirm the window
heuristic loses nothing.
"""

from __future__ import annotations

from typing import FrozenSet, List

from ..exceptions import ConfigurationError
from ..graphs.circulant import circular_distance
from .cyclic import CyclicRepetition
from .decoders import Decoder, Selection, register_decoder


@register_decoder("cr")
class CRDecoder(Decoder):
    """Alg. 2: windowed greedy search over the worker circle."""

    def __init__(
        self,
        placement: CyclicRepetition,
        *,
        rng=None,
        starts: str = "window",
        cache=None,
    ):
        if not isinstance(placement, CyclicRepetition):
            raise TypeError(
                f"CRDecoder requires a CyclicRepetition placement, "
                f"got {type(placement).__name__}"
            )
        if starts not in ("window", "all"):
            raise ConfigurationError(
                f"starts must be 'window' or 'all', got {starts!r}"
            )
        super().__init__(placement, rng=rng, cache=cache)
        self._starts = starts

    def _decode(self, available: FrozenSet[int]) -> Selection:
        n = self._placement.num_workers
        c = self._placement.partitions_per_worker
        avail_sorted = sorted(available)

        if self._starts == "all":
            start_vertices = list(avail_sorted)
        else:
            u = int(self._rng.choice(avail_sorted))
            window = {(u + v) % n for v in range(c)}
            start_vertices = sorted(window & available)
        # Ties between equal-size chains go to the earliest start, so the
        # start order must be random for the paper's fairness guarantee
        # (every worker equally likely to contribute under homogeneous
        # stragglers).
        self._rng.shuffle(start_vertices)

        best: FrozenSet[int] = frozenset()
        searches = 0
        for start in start_vertices:
            searches += 1
            # The chain is a pure function of (placement, mask, start) —
            # cacheable; the RNG draws above stay live either way.
            chain = self._memo(
                "cr-chain",
                available,
                start,
                lambda start=start: self._greedy_chain(start, available, n, c),
            )
            if len(chain) > len(best):
                best = chain
        return Selection(best, searches)

    @staticmethod
    def _greedy_chain(
        start: int, available: FrozenSet[int], n: int, c: int
    ) -> FrozenSet[int]:
        """Clockwise greedy walk from ``start`` (Alg. 2 lines 4-12)."""
        chain: List[int] = [start]
        last = start
        for offset in range(1, n):
            candidate = (start + offset) % n
            if candidate not in available:
                continue
            if (
                circular_distance(last, candidate, n) >= c
                and circular_distance(candidate, start, n) >= c
            ):
                chain.append(candidate)
                last = candidate
        return frozenset(chain)
