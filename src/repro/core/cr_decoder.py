"""Decoder for cyclic repetition — Alg. 2 of the paper.

Selecting workers whose payloads can all be added is a maximum-
independent-set problem on the circulant conflict graph ``C_n^{1..c-1}``
restricted to ``W'``.  Alg. 2 exploits the circular structure:

1. pick a random available vertex ``u`` (fairness);
2. for each available start vertex in the clockwise window
   ``{u, u+1, …, u+c-1}`` (at most ``c`` starts — Theorem 3 proves one
   of them seeds a *maximum* independent set);
3. from each start, walk clockwise greedily, adding any available
   vertex at circular distance ≥ c from both the previously added
   vertex and the start (Theorem 2: this yields a maximal set);
4. keep the largest set found.

The greedy chain is pairwise independent because consecutive clockwise
gaps ≥ c and a wrap gap ≥ c imply every inter-vertex arc (a sum of such
gaps) is ≥ c on both sides.

``starts="all"`` replaces the window with every available vertex —
an O(|W'|²/c) belt-and-braces mode used by tests to confirm the window
heuristic loses nothing.
"""

from __future__ import annotations

from typing import FrozenSet, List

import numpy as np

from ..exceptions import ConfigurationError
from ..graphs.circulant import circular_distance
from .batch import (
    BatchDecodeResult,
    MaskBatch,
    batched_greedy_chains,
    circulant_adjacency,
    masks_to_array,
    segment_argmax,
)
from .cyclic import CyclicRepetition
from .decoders import Decoder, Selection, register_decoder


@register_decoder("cr")
class CRDecoder(Decoder):
    """Alg. 2: windowed greedy search over the worker circle."""

    def __init__(
        self,
        placement: CyclicRepetition,
        *,
        rng=None,
        starts: str = "window",
        cache=None,
    ):
        if not isinstance(placement, CyclicRepetition):
            raise TypeError(
                "CRDecoder requires a CyclicRepetition placement, "
                f"got {type(placement).__name__}"
            )
        if starts not in ("window", "all"):
            raise ConfigurationError(
                f"starts must be 'window' or 'all', got {starts!r}"
            )
        super().__init__(placement, rng=rng, cache=cache)
        self._starts = starts

    def _decode(self, available: FrozenSet[int]) -> Selection:
        n = self._placement.num_workers
        c = self._placement.partitions_per_worker
        avail_sorted = sorted(available)

        if self._starts == "all":
            start_vertices = list(avail_sorted)
        else:
            u = int(self._rng.choice(avail_sorted))
            window = {(u + v) % n for v in range(c)}
            start_vertices = sorted(window & available)
        # Ties between equal-size chains go to the earliest start, so the
        # start order must be random for the paper's fairness guarantee
        # (every worker equally likely to contribute under homogeneous
        # stragglers).
        self._rng.shuffle(start_vertices)

        best: FrozenSet[int] = frozenset()
        searches = 0
        for start in start_vertices:
            searches += 1
            # The chain is a pure function of (placement, mask, start) —
            # cacheable; the RNG draws above stay live either way.
            chain = self._memo(
                "cr-chain",
                available,
                start,
                lambda start=start: self._greedy_chain(start, available, n, c),
            )
            if len(chain) > len(best):
                best = chain
        return Selection(best, searches)

    def decode_batch(self, masks: MaskBatch) -> BatchDecodeResult:
        """Vectorized Alg. 2 across a whole mask batch.

        Phase 1 draws the fairness RNG per mask in batch order — the
        window seed ``u`` and the start-order shuffle, with identical
        generator consumption to the looped path.  Phase 2 runs every
        (mask, start) greedy chain at once through the circulant
        adjacency kernel (no RNG).  Phase 3 keeps, per mask, the first
        strictly-largest chain in shuffled start order — the looped
        tie-break, vectorized.
        """
        placement = self._placement
        n = placement.num_workers
        c = placement.partitions_per_worker
        avail, _ = masks_to_array(masks, n)
        num_masks = avail.shape[0]
        rng = self._rng
        cache = self._cache

        # Phase 1 — per-mask fairness draws, in batch order.
        # ``Generator.choice(seq)`` with no weights consumes exactly one
        # ``integers(0, len(seq))`` draw, so drawing the index and
        # subscripting keeps the stream identical to the looped
        # ``choice`` while skipping its per-call array conversion.  One
        # nonzero pass covers the whole batch up front; the loop body
        # then works on plain python ints, so the generator calls are
        # the only per-mask numpy work left.
        members_flat = np.nonzero(avail)[1].tolist()
        bounds = np.concatenate(
            ([0], np.cumsum(avail.sum(axis=1)))
        ).tolist()
        draw_index = rng.integers
        shuffle = rng.shuffle
        all_starts: List[int] = []
        searches: List[int] = []
        row_fsets: List[FrozenSet[int]] = []
        for i in range(num_masks):
            members = members_flat[bounds[i]:bounds[i + 1]]
            if self._starts == "all":
                starts = members
            else:
                m = len(members)
                j = draw_index(m)
                u = members[j]
                top = u + c
                # Available window members in ascending order, read
                # straight off the sorted ``members`` slice: the run
                # from the drawn index up while < u+c, preceded (when
                # the window wraps past n) by the prefix below u+c-n.
                if top <= n:
                    starts = [u]
                    k = j + 1
                    while k < m and members[k] < top:
                        starts.append(members[k])
                        k += 1
                else:
                    limit = top - n
                    starts = []
                    k = 0
                    while k < m and members[k] < limit:
                        starts.append(members[k])
                        k += 1
                    starts.extend(members[j:])
            shuffle(starts)
            searches.append(len(starts))
            all_starts.extend(starts)
            if cache is not None:
                row_fsets.append(frozenset(members))

        # Phase 2 — every greedy chain at once (deterministic kernel).
        rows_arr = np.repeat(np.arange(num_masks, dtype=np.intp), searches)
        starts_arr = np.asarray(all_starts, dtype=np.intp)
        adj = self._adjacency()
        selected = np.zeros_like(avail)
        if cache is None:
            chains = batched_greedy_chains(adj, avail[rows_arr], starts_arr)
            winners = segment_argmax(chains.sum(axis=1), searches)
            selected = chains[winners]
        else:
            # Same (mask, start) keys as the looped path, resolved by
            # the cache's one-pass hit/miss partition; only the misses
            # go through the kernel, and they are stored as frozensets
            # so looped and batched decoding share entries.
            keys = [
                (row_fsets[i], start)
                for i, start in zip(rows_arr.tolist(), all_starts)
            ]
            fset_row = {}
            for i, fs in enumerate(row_fsets):
                fset_row.setdefault(fs, i)

            def compute_missing(missing):
                miss_rows = np.asarray(
                    [fset_row[fs] for fs, _ in missing], dtype=np.intp
                )
                miss_starts = np.asarray(
                    [start for _, start in missing], dtype=np.intp
                )
                miss_chains = batched_greedy_chains(
                    adj, avail[miss_rows], miss_starts
                )
                return [
                    frozenset(np.flatnonzero(row).tolist())
                    for row in miss_chains
                ]

            chain_sets = self._memo_batch("cr-chain", keys, compute_missing)
            sizes = [len(s) for s in chain_sets]
            winners = segment_argmax(sizes, searches)
            for i, w in enumerate(winners):
                selected[i, list(chain_sets[w])] = True
        return self._finalize_batch(avail, selected, searches)

    def _adjacency(self) -> np.ndarray:
        """The circulant adjacency matrix, built once per decoder."""
        adj = getattr(self, "_adj", None)
        if adj is None:
            adj = circulant_adjacency(
                self._placement.num_workers,
                self._placement.partitions_per_worker,
            )
            self._adj = adj
        return adj

    @staticmethod
    def _greedy_chain(
        start: int, available: FrozenSet[int], n: int, c: int
    ) -> FrozenSet[int]:
        """Clockwise greedy walk from ``start`` (Alg. 2 lines 4-12)."""
        chain: List[int] = [start]
        last = start
        for offset in range(1, n):
            candidate = (start + offset) % n
            if candidate not in available:
                continue
            if (
                circular_distance(last, candidate, n) >= c
                and circular_distance(candidate, start, n) >= c
            ):
                chain.append(candidate)
                last = candidate
        return frozenset(chain)
