"""Conflict graphs (Sec. V-A).

Two workers *conflict* when their partition sets intersect: their summed
gradient payloads cannot be added without double-counting some
partition.  The conflict graph ``G = (W, E)`` has one vertex per worker
and an edge per conflicting pair; decoding a set ``W'`` of available
workers is exactly a maximum-independent-set problem on ``G[W']``.

This module builds conflict graphs from ground truth (placement
intersections) and offers the fast closed-form constructions the paper
proves correct (Theorem 1 for CR, clique-union for FR).
"""

from __future__ import annotations

from ..graphs.circulant import circulant_graph
from ..graphs.graph import Graph
from .cyclic import CyclicRepetition
from .fractional import FractionalRepetition
from .hybrid import HybridRepetition
from .placement import Placement


def conflict_graph(placement: Placement) -> Graph:
    """Ground-truth conflict graph from partition-set intersections.

    Works for any placement; O(n² · c) which is negligible at worker
    scale.  The fast constructions below must agree with this for the
    schemes they cover (enforced by tests).
    """
    n = placement.num_workers
    g = Graph(vertices=range(n))
    part_sets = [set(placement.partitions_of(w)) for w in range(n)]
    for a in range(n):
        for b in range(a + 1, n):
            if part_sets[a] & part_sets[b]:
                g.add_edge(a, b)
    return g


def fr_conflict_graph(n: int, c: int) -> Graph:
    """FR conflict graph: a disjoint union of ``n/c`` cliques (Fig. 4a)."""
    FractionalRepetition(n, c)  # parameter validation
    g = Graph(vertices=range(n))
    for group in range(n // c):
        members = range(group * c, (group + 1) * c)
        for a in members:
            for b in members:
                if a < b:
                    g.add_edge(a, b)
    return g


def cr_conflict_graph(n: int, c: int) -> Graph:
    """CR conflict graph: the circulant ``C_n^{1..c-1}`` (Theorem 1)."""
    CyclicRepetition(n, c)  # parameter validation
    if c == 1:
        return Graph(vertices=range(n))
    return circulant_graph(n, range(1, c))


def hr_conflict_graph(n: int, c1: int, c2: int, g: int) -> Graph:
    """HR conflict graph via the Alg. 4 closed-form predicate."""
    placement = HybridRepetition(n, c1, c2, g)
    graph = Graph(vertices=range(n))
    for a in range(n):
        for b in range(a + 1, n):
            if placement.conflicts_fast(a, b):
                graph.add_edge(a, b)
    return graph


def edge_subset(inner: Graph, outer: Graph) -> bool:
    """True iff ``E(inner) ⊆ E(outer)`` (Theorems 4 and 7 orderings)."""
    return inner.edges <= outer.edges
