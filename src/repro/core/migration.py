"""Placement migration: moving a running cluster to a better placement.

The advisor (:mod:`repro.core.advisor`) can say HR(c1+1) would recover
more than the current placement — but switching means *copying dataset
partitions between workers*, which costs real time.  This module plans
that transition:

* :func:`migration_plan` — per-worker copy lists (which partitions each
  worker must fetch, and a source replica for each), plus totals;
* :func:`migration_cost_seconds` — wall-clock estimate under a network
  model, assuming each worker fetches its missing partitions
  sequentially while workers proceed in parallel;
* :func:`worth_migrating` — amortisation: the per-step time saved by
  higher recovery (fewer steps to the same loss) must repay the copy
  cost within a step budget.

This closes the loop the paper leaves open: recovery-vs-flexibility is
not just a design-time choice, it can be adjusted online.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..env import make_network_model
from ..exceptions import ConfigurationError
from ..simulation.network import NetworkModel
from .placement import Placement
from .scheme import PlacementScheme, as_placement


@dataclass(frozen=True)
class MigrationPlan:
    """What must move to turn ``source`` into ``target``."""

    copies: Dict[int, List[Tuple[int, int]]]  # worker → [(partition, from)]
    total_partition_copies: int
    max_copies_per_worker: int

    @property
    def is_noop(self) -> bool:
        return self.total_partition_copies == 0


def migration_plan(
    source: "Placement | PlacementScheme",
    target: "Placement | PlacementScheme",
) -> MigrationPlan:
    """Plan the copies needed to realise ``target`` from ``source``.

    Either endpoint may be a :class:`~repro.core.scheme.PlacementScheme`
    (the registry-level view) or a concrete :class:`Placement`.

    For every partition a worker holds under ``target`` but not under
    ``source``, pick a source replica — the worker currently holding
    that partition with the fewest outgoing copies so far (cheap load
    balancing of the senders).  Dropping partitions is free.
    """
    source = as_placement(source)
    target = as_placement(target)
    if source.num_workers != target.num_workers:
        raise ConfigurationError(
            "cannot migrate between cluster sizes "
            f"{source.num_workers} and {target.num_workers}"
        )
    n = source.num_workers
    outgoing_load = {w: 0 for w in range(n)}
    copies: Dict[int, List[Tuple[int, int]]] = {w: [] for w in range(n)}
    total = 0
    for worker in range(n):
        have = set(source.partitions_of(worker))
        need = set(target.partitions_of(worker)) - have
        for partition in sorted(need):
            holders = sorted(
                source.workers_of(partition),
                key=lambda h: (outgoing_load[h], h),
            )
            donor = holders[0]
            copies[worker].append((partition, donor))
            outgoing_load[donor] += 1
            total += 1
    return MigrationPlan(
        copies={w: lst for w, lst in copies.items() if lst},
        total_partition_copies=total,
        max_copies_per_worker=max(
            (len(lst) for lst in copies.values()), default=0
        ),
    )


def migration_cost_seconds(
    plan: MigrationPlan,
    partition_bytes: float,
    network: NetworkModel | None = None,
) -> float:
    """Wall-clock estimate: workers fetch in parallel, each fetch is a
    sequential transfer of one partition (latency + size/bandwidth)."""
    if partition_bytes < 0:
        raise ConfigurationError(
            f"partition_bytes must be >= 0, got {partition_bytes}"
        )
    network = network if network is not None else make_network_model()
    per_copy = network.latency + partition_bytes / network.bandwidth
    return plan.max_copies_per_worker * per_copy


def worth_migrating(
    plan: MigrationPlan,
    partition_bytes: float,
    per_step_saving: float,
    remaining_steps: int,
    network: NetworkModel | None = None,
) -> bool:
    """Amortisation test: does the projected saving repay the copies?

    ``per_step_saving`` is the expected simulated-seconds saved per
    step after migrating (e.g. from recovery-driven step reduction);
    the migration is worth it when
    ``per_step_saving × remaining_steps > migration cost``.
    """
    if per_step_saving < 0 or remaining_steps < 0:
        raise ConfigurationError(
            "per_step_saving and remaining_steps must be non-negative"
        )
    cost = migration_cost_seconds(plan, partition_bytes, network)
    return per_step_saving * remaining_steps > cost
