"""Cyclic repetition (CR) placement — Sec. III, Fig. 2(b) and Sec. V.

CR places partitions round-robin: worker ``i`` stores partitions
``{(i + r) mod n | r = 0..c-1}`` (paper, 1-indexed:
``{D_{((j-1) mod n)+1} | j = i..i+c-1}``).  Unlike FR it does *not*
require ``c | n``, which is the flexibility HR later builds on.

Theorem 1 proves the CR conflict graph is the circulant graph
``C_n^{1..c-1}``: workers ``x`` and ``y`` conflict iff their circular
distance ``d(x, y) = min(|x-y|, n-|x-y|)`` is below ``c``.
"""

from __future__ import annotations

from ..graphs.circulant import circular_distance
from .placement import Placement


class CyclicRepetition(Placement):
    """The CR placement ``CR(n, c)`` for any ``1 <= c <= n``."""

    scheme = "cr"

    def __init__(self, num_workers: int, partitions_per_worker: int):
        super().__init__(num_workers, partitions_per_worker)
        n, c = self._n, self._c
        assignments = {
            worker: tuple((worker + r) % n for r in range(c))
            for worker in range(n)
        }
        self._finalize(assignments)

    def distance(self, worker_a: int, worker_b: int) -> int:
        """Circular distance ``d(a, b)`` on the worker circle."""
        return circular_distance(worker_a, worker_b, self._n)

    def conflicts_by_distance(self, worker_a: int, worker_b: int) -> bool:
        """Theorem 1 closed form: conflict iff ``d(a, b) < c``.

        Ground truth remains :meth:`Placement.conflicts` (shared
        partitions); tests assert the two predicates agree for all pairs.
        """
        if worker_a == worker_b:
            return True
        return self.distance(worker_a, worker_b) < self._c
