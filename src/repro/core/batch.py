"""Vectorized batch decoding: bitset masks, adjacency matrices, kernels.

The paper's decoders are linear-time per mask, but a sweep decodes
*thousands* of masks — and a Python-level walk per mask leaves most of
the speed on the table.  This module is the data layer behind
:meth:`~repro.core.decoders.Decoder.decode_batch`:

* availability masks become one ``(num_masks, n)`` boolean array
  (:func:`masks_to_array`, with the same validation errors as the
  looped path);
* conflict graphs become ``(n, n)`` boolean adjacency matrices
  (:func:`circulant_adjacency` for the CR/HR circles,
  :func:`conflict_adjacency` for any pairwise predicate);
* the FR/CR/HR greedy selection walks run vectorized across every
  (mask, start) pair at once (:func:`batched_greedy_chains`);
* results stay column-oriented in a :class:`BatchDecodeResult` so
  consumers (recovery stats, variance moments) can keep doing linear
  algebra instead of iterating ``DecodeResult`` objects.

**The fairness-RNG invariant.**  Nothing in this module touches a
random generator.  Decoders draw their fairness randomisation (which
vertex seeds the window, which start order to try) *per mask, in batch
order, before* calling the kernels here — the same discipline that
makes :class:`~repro.parallel.DecodeCache` bit-for-bit safe.  Batched
decoding therefore produces the identical selections *and* leaves the
generator in the identical stream position as the looped path.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, List, Optional, Sequence, Tuple, Union

import numpy as np

from ..exceptions import DecodeError
from ..types import DecodeResult
from .placement import Placement

#: Accepted batch inputs: a ``(num_masks, n)`` boolean indicator array,
#: or a sequence of per-mask worker-id iterables.
MaskBatch = Union[np.ndarray, Sequence[Iterable[int]]]


# ----------------------------------------------------------------------
# Mask validation — the single source of truth for all seven families.


def validate_mask(available_workers: Iterable[int], num_workers: int):
    """Validate one availability mask; return its frozenset.

    The canonical checks every decoder family shares, in a fixed order:
    empty masks, duplicate worker ids, then out-of-range ids — each
    raising :class:`~repro.exceptions.DecodeError` with one message
    shape.  Both :meth:`Decoder.decode` and every ``decode_batch``
    implementation route through here, so malformed input fails
    identically on either path.
    """
    workers = list(available_workers)
    available = frozenset(workers)
    if not available:
        raise DecodeError("cannot decode with zero available workers")
    if len(workers) != len(available):
        seen: set = set()
        dups: set = set()
        for w in workers:
            if w in seen:
                dups.add(int(w))
            seen.add(w)
        raise DecodeError(
            f"duplicate available workers: {sorted(dups)}"
        )
    bad = sorted(int(w) for w in available if not 0 <= w < num_workers)
    if bad:
        raise DecodeError(
            f"available workers out of range [0, {num_workers}): {bad}"
        )
    return available


def masks_to_array(
    masks: MaskBatch, num_workers: int
) -> Tuple[np.ndarray, Optional[list]]:
    """Canonicalise a batch of masks to a ``(num_masks, n)`` bool array.

    Accepts either a 2-D boolean indicator array (used as-is) or a
    sequence of per-mask worker-id iterables.  Validation is fail-fast:
    the lowest malformed row raises the same
    :class:`~repro.exceptions.DecodeError` the looped ``decode`` path
    would, before any row is decoded (so no RNG is consumed on error).

    Returns ``(avail, originals)`` where ``originals`` is the list of
    original mask objects (``None`` for array input).  Decoders whose
    RNG draws depend on mask *iteration order* (FR iterates the
    frozenset) must rebuild per-mask frozensets from ``originals`` to
    stay bit-for-bit identical to the looped path.
    """
    n = num_workers
    if (
        isinstance(masks, np.ndarray)
        and masks.ndim == 2
        and masks.dtype == np.bool_
    ):
        if masks.shape[1] != n:
            raise DecodeError(
                f"mask array has width {masks.shape[1]} but the "
                f"placement has {n} workers"
            )
        if masks.shape[0] and not masks.any(axis=1).all():
            raise DecodeError("cannot decode with zero available workers")
        return masks, None
    originals = list(masks)
    avail = np.zeros((len(originals), n), dtype=bool)
    for i, mask in enumerate(originals):
        members = validate_mask(mask, n)
        avail[i, [int(w) for w in members]] = True
    return avail, originals


def enumerate_masks(num_workers: int, size: int) -> np.ndarray:
    """All ``C(n, size)`` availability masks of one size, as a boolean
    array whose rows follow ``itertools.combinations`` order — the
    exact-enumeration input for :mod:`repro.analysis.variance`."""
    if not 1 <= size <= num_workers:
        raise DecodeError(
            f"mask size must be in [1, {num_workers}], got {size}"
        )
    combos = np.fromiter(
        (v for combo in combinations(range(num_workers), size) for v in combo),
        dtype=np.intp,
    ).reshape(-1, size)
    avail = np.zeros((combos.shape[0], num_workers), dtype=bool)
    avail[np.arange(combos.shape[0])[:, None], combos] = True
    return avail


# ----------------------------------------------------------------------
# Graph and placement bitset representations.


def circulant_adjacency(n: int, c: int) -> np.ndarray:
    """``(n, n)`` boolean adjacency of the circulant conflict graph
    ``C_n^{1..c-1}`` (Theorem 1): distinct vertices conflict iff their
    circular distance is below ``c``.  Diagonal is ``False``."""
    idx = np.arange(n)
    diff = (idx[None, :] - idx[:, None]) % n
    dist = np.minimum(diff, n - diff)
    return (dist > 0) & (dist < c)


def conflict_adjacency(placement: Placement) -> np.ndarray:
    """``(n, n)`` boolean adjacency from the placement's pairwise
    conflict predicate (``conflicts_fast`` when the family has the O(1)
    closed form, partition-intersection ground truth otherwise)."""
    n = placement.num_workers
    pred = getattr(placement, "conflicts_fast", placement.conflicts)
    adj = np.zeros((n, n), dtype=bool)
    for a in range(n):
        for b in range(a + 1, n):
            if pred(a, b):
                adj[a, b] = adj[b, a] = True
    return adj


def partition_matrix(placement: Placement) -> np.ndarray:
    """``(num_workers, num_partitions)`` boolean storage indicator:
    entry ``[w, p]`` iff worker ``w`` stores partition ``p``.  A batch
    of selections recovers ``selected @ partition_matrix``."""
    mat = np.zeros(
        (placement.num_workers, placement.num_partitions), dtype=bool
    )
    for w in range(placement.num_workers):
        mat[w, list(placement.partitions_of(w))] = True
    return mat


# ----------------------------------------------------------------------
# The vectorized greedy-chain kernel (Algs. 2/3 inner loop).


def batched_greedy_chains(
    adj: np.ndarray, avail_rows: np.ndarray, starts: np.ndarray
) -> np.ndarray:
    """Run every clockwise greedy walk of a batch at once.

    Reproduces, per row, exactly the scalar walk shared by the CR and
    HR decoders: start at ``starts[p]``, scan offsets ``1..n-1``
    clockwise, and admit candidate ``(start + offset) % n`` iff it is
    available and adjacent (in ``adj``) to neither the last admitted
    vertex nor the start.  The CR condition ``circular_distance >= c``
    is exactly non-adjacency in the circulant graph, and the HR Alg. 4
    predicate is exactly adjacency in :func:`conflict_adjacency`, so
    one kernel serves both.

    Parameters are ``adj`` ``(n, n)`` bool (``False`` diagonal),
    ``avail_rows`` ``(P, n)`` bool (the mask each walk runs under), and
    ``starts`` ``(P,)`` int (each must be available in its row).
    Returns the chains as a ``(P, n)`` boolean array.  Deterministic —
    consumes no randomness (the fairness-RNG invariant above).
    """
    num_walks, n = avail_rows.shape
    chains = np.zeros((num_walks, n), dtype=bool)
    if not num_walks:
        return chains
    starts = np.asarray(starts, dtype=np.intp)
    # Flat 1-D gathers (``take``) in place of 2-D fancy indexing — same
    # walk, roughly half the kernel time at benchmark batch sizes.
    adj_flat = adj.ravel()
    avail_flat = np.ascontiguousarray(avail_rows).ravel()
    chains_flat = chains.ravel()
    row_base = np.arange(num_walks, dtype=np.intp) * n
    chains_flat[row_base + starts] = True
    last_base = starts * n
    for offset in range(1, n):
        cand = starts + offset
        cand[cand >= n] -= n
        cand_base = cand * n
        ok = avail_flat.take(row_base + cand)
        ok &= ~adj_flat.take(last_base + cand)
        ok &= ~adj_flat.take(cand_base + starts)
        chains_flat[(row_base + cand)[ok]] = True
        last_base = np.where(ok, cand_base, last_base)
    return chains


def segment_argmax(
    sizes: Sequence[int], counts: Sequence[int]
) -> List[int]:
    """Index of the first maximum inside each contiguous segment.

    ``sizes`` holds one value per greedy walk; ``counts[i]`` consecutive
    walks belong to mask (or group) ``i``.  Keeping the *first*
    occurrence of each segment's maximum reproduces the looped
    decoders' tie-break (``>`` against the best so far, in shuffled
    start order).  Segments must be non-empty — every decoded mask runs
    at least one walk.
    """
    sizes_arr = np.asarray(sizes, dtype=np.intp)
    counts_arr = np.asarray(counts, dtype=np.intp)
    num_walks = sizes_arr.shape[0]
    offsets = np.zeros(counts_arr.shape[0], dtype=np.intp)
    np.cumsum(counts_arr[:-1], out=offsets[1:])
    seg_max = np.maximum.reduceat(sizes_arr, offsets)
    # First index attaining the segment max = the ``>``-scan winner.
    at_max = sizes_arr == np.repeat(seg_max, counts_arr)
    candidate_idx = np.where(at_max, np.arange(num_walks), num_walks)
    return np.minimum.reduceat(candidate_idx, offsets).tolist()


# ----------------------------------------------------------------------
# Column-oriented batch results.


@dataclass(frozen=True, eq=False)
class BatchDecodeResult:
    """What ``decode_batch`` returns: one decode per row, kept dense.

    Consumers that want per-mask objects call :meth:`results` (each
    entry compares equal to the looped path's
    :class:`~repro.types.DecodeResult`); consumers doing statistics
    over the whole batch use the arrays directly and never materialise
    Python objects at all.
    """

    #: (num_masks, n) bool — the validated availability masks.
    available: np.ndarray
    #: (num_masks, n) bool — the selected independent set per mask.
    selected: np.ndarray
    #: (num_masks, num_partitions) bool — partitions recovered per mask.
    recovered: np.ndarray
    #: (num_masks,) int — greedy searches run per mask.
    num_searches: np.ndarray

    def __len__(self) -> int:
        return self.available.shape[0]

    @property
    def num_selected(self) -> np.ndarray:
        """``|I|`` per mask (α of the induced conflict graph)."""
        return self.selected.sum(axis=1)

    @property
    def num_recovered(self) -> np.ndarray:
        """Recovered partition count per mask."""
        return self.recovered.sum(axis=1)

    def result_at(self, index: int) -> DecodeResult:
        """Row ``index`` as the looped path's :class:`DecodeResult`."""
        return DecodeResult(
            selected_workers=frozenset(
                np.flatnonzero(self.selected[index]).tolist()
            ),
            recovered_partitions=frozenset(
                np.flatnonzero(self.recovered[index]).tolist()
            ),
            available_workers=frozenset(
                np.flatnonzero(self.available[index]).tolist()
            ),
            num_searches=int(self.num_searches[index]),
        )

    def results(self) -> List[DecodeResult]:
        """Every row materialised — equal, element by element, to
        ``[decoder.decode(m) for m in masks]``."""
        return [self.result_at(i) for i in range(len(self))]
