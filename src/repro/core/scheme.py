"""The unified placement layer: one protocol, one registry.

Everything the paper derives — decoding (Algs. 1–4), the recovery
bounds (Theorems 10/11), the FR/CR/HR trade-off (Theorems 5–7) — starts
from a *placement family*: a named recipe that, given parameters,
yields a :class:`~repro.core.placement.Placement`.  Before this module
each family grew its own ad-hoc conflict/bound/fingerprint plumbing;
now they all speak one protocol:

* :class:`PlacementScheme` — ``construct()`` (cached), ``conflict_graph()``
  (ground truth by default, with per-family *verified* fast paths
  routed through :mod:`repro.core.conflict`), ``recovery_bounds(w)``
  (Theorem 10/11 style partition-count brackets), ``fingerprint()``
  (the :class:`~repro.parallel.DecodeCache` key) and ``describe()``;
* :data:`PLACEMENT_REGISTRY` + :func:`register_placement` — the name →
  scheme-class registry, mirroring
  :func:`~repro.engine.spec.register_scheme` /
  :func:`~repro.engine.spec.register_backend`;
* :func:`make_placement` / :func:`placement_scheme` — the construction
  entry points the CLI, the spec engine, the advisor and library code
  share (``repro check`` REG004 enforces this).

Registered families: ``fr``, ``cr``, ``hr``, ``explicit``, ``hetero``,
``comm-efficient`` and ``multimessage`` (see ``docs/placements.md`` for
the catalogue with paper pointers).  A new family needs one
``@register_placement`` class; specs (via the generic ``is-gc``
scheme), ``repro placements``, caching and the static checks pick it
up by name.

Fast paths are *verified*, not parallel code paths: every override of
:meth:`PlacementScheme.conflict_graph` must agree with the
ground-truth :func:`~repro.core.conflict.conflict_graph` of the
constructed placement (property-tested in ``tests/test_scheme.py`` and
re-checked by ``benchmarks/bench_placement.py``).
"""

from __future__ import annotations

import difflib
import inspect
from abc import ABC, abstractmethod
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from ..exceptions import ConfigurationError
from ..graphs.graph import Graph
from .bounds import hr_alpha_bounds, recovered_partitions_bounds
from .conflict import (
    conflict_graph,
    cr_conflict_graph,
    fr_conflict_graph,
    hr_conflict_graph,
)
from .cyclic import CyclicRepetition
from .explicit import ExplicitPlacement
from .fractional import FractionalRepetition
from .hybrid import HybridRepetition
from .placement import Placement

#: placement family name → scheme class (the third registry, alongside
#: SCHEME_REGISTRY and BACKEND_REGISTRY in :mod:`repro.engine.spec`).
PLACEMENT_REGISTRY: Dict[str, Type["PlacementScheme"]] = {}

#: accepted alternate spellings → canonical family name.
_ALIASES: Dict[str, str] = {}


def register_placement(
    name: str, *, aliases: Sequence[str] = ()
) -> Callable[[Type["PlacementScheme"]], Type["PlacementScheme"]]:
    """Class decorator registering a placement family under ``name``.

    ``aliases`` are accepted alternate spellings (``"fractional"`` for
    ``"fr"`` and so on); they resolve to the same class but are not
    listed as separate families.
    """

    def wrap(cls: Type["PlacementScheme"]) -> Type["PlacementScheme"]:
        if name in PLACEMENT_REGISTRY:
            raise ConfigurationError(
                f"placement family {name!r} already registered "
                f"({PLACEMENT_REGISTRY[name].__name__})"
            )
        PLACEMENT_REGISTRY[name] = cls
        cls.family = name
        cls.aliases = tuple(aliases)
        for alias in aliases:
            _ALIASES[alias] = name
        return cls

    return wrap


def registered_placements() -> List[str]:
    """Sorted canonical family names (aliases excluded)."""
    return sorted(PLACEMENT_REGISTRY)


def unknown_placement_message(name: Any) -> str:
    """The did-you-mean error text for an unregistered family name.

    Shared by :func:`resolve_placement` (runtime) and the SPEC001/002
    static rules, so ``repro check`` and ``repro run`` report typos
    identically.
    """
    known = sorted(set(PLACEMENT_REGISTRY) | set(_ALIASES))
    close = difflib.get_close_matches(str(name), known, n=3, cutoff=0.5)
    hint = (
        " — did you mean " + " or ".join(repr(m) for m in close) + "?"
        if close
        else ""
    )
    return (
        f"unknown placement family {name!r}{hint} "
        f"(registered families: {', '.join(registered_placements())})"
    )


def resolve_placement(name: str) -> Type["PlacementScheme"]:
    """The scheme class for ``name`` (canonical or alias)."""
    if not isinstance(name, str):
        raise ConfigurationError(
            f"placement family must be a string, got {name!r}"
        )
    cls = PLACEMENT_REGISTRY.get(_ALIASES.get(name, name))
    if cls is None:
        raise ConfigurationError(unknown_placement_message(name))
    return cls


def placement_scheme(name: str, **params: Any) -> "PlacementScheme":
    """Instantiate the registered family ``name`` with ``params``.

    Unknown parameter names are rejected with the family's accepted
    signature (a raw ``TypeError`` would not say which family or which
    parameters exist).
    """
    cls = resolve_placement(name)
    try:
        return cls(**params)
    except TypeError as exc:
        accepted = [
            p
            for p in inspect.signature(cls.__init__).parameters
            if p not in ("self", "kwargs")
        ]
        raise ConfigurationError(
            f"invalid parameters for placement family {cls.family!r}: "
            f"{exc}; accepted: {', '.join(accepted)}"
        ) from exc


def make_placement(name: str, **params: Any) -> Placement:
    """Construct the placement of registered family ``name``.

    The single construction entry point for library code, the CLI and
    the spec engine (REG004 flags direct ``*Repetition``/``*Placement``
    constructor calls outside this layer).  Parameter-constraint
    violations raise :class:`~repro.exceptions.PlacementError` exactly
    as the direct constructors do — same type, same message — so
    callers' error handling is unchanged by going through the registry.
    """
    return placement_scheme(name, **params).construct()


def spec_placement_scheme(
    name: str,
    *,
    num_workers: int,
    partitions_per_worker: Optional[int] = None,
    **params: Any,
) -> "PlacementScheme":
    """Registry lookup under ``make_strategy``'s calling convention.

    Spec-driven callers always carry a uniform ``partitions_per_worker``
    (the :class:`~repro.engine.spec.ExperimentSpec` field, default 1);
    families that derive ``c`` from their own parameters
    (``uses_uniform_c = False``, e.g. HR's ``c1 + c2``) must not
    receive it, so this helper forwards it only where it is meaningful.
    """
    cls = resolve_placement(name)
    kwargs = dict(params)
    if cls.uses_uniform_c and partitions_per_worker is not None:
        kwargs.setdefault("partitions_per_worker", partitions_per_worker)
    return placement_scheme(name, num_workers=num_workers, **kwargs)


def placement_spec_problems(
    family: Any,
    *,
    num_workers: int,
    partitions_per_worker: Optional[int] = None,
    declared: bool = False,
    params: Optional[Mapping[str, Any]] = None,
) -> List[str]:
    """Static feasibility problems of ``family`` at these parameters.

    The arithmetic-only hook behind the SPEC001/SPEC002 rules: nothing
    is constructed, so the checks are safe on untrusted spec documents.
    Unknown families return the same did-you-mean message
    ``repro run`` would raise.  ``declared`` says whether
    ``partitions_per_worker`` was explicitly present in the spec
    document (families deriving ``c`` themselves only cross-check an
    explicitly declared value).
    """
    if not isinstance(family, str):
        return [f"placement family must be a string, got {family!r}"]
    cls = PLACEMENT_REGISTRY.get(_ALIASES.get(family, family))
    if cls is None:
        return [unknown_placement_message(family)]
    return cls.spec_problems(
        num_workers=num_workers,
        partitions_per_worker=partitions_per_worker,
        declared=declared,
        params=dict(params or {}),
    )


def as_placement(obj: "Placement | PlacementScheme") -> Placement:
    """Coerce a scheme or placement to the :class:`Placement` it denotes.

    Lets every placement consumer (decoders, coders, simulators,
    migration planning) accept either level of the protocol.
    """
    if isinstance(obj, Placement):
        return obj
    if isinstance(obj, PlacementScheme):
        return obj.construct()
    raise ConfigurationError(
        f"expected a Placement or PlacementScheme, got {type(obj).__name__}"
    )


def scheme_for(placement: Placement) -> "PlacementScheme":
    """Wrap an already-constructed placement in its family's scheme view.

    Recovers the protocol object (fast conflict paths, family-specific
    bounds) for placements built elsewhere; unknown concrete types fall
    back to the generic ``explicit`` family, which is correct for any
    placement.  The wrapper reuses ``placement`` itself, so
    ``fingerprint()`` (hence every cache key) is unchanged.
    """
    for cls in dict.fromkeys(PLACEMENT_REGISTRY.values()):
        scheme = cls.from_placement(placement)
        if scheme is not None:
            return scheme
    return ExplicitScheme._wrap(placement)


# ----------------------------------------------------------------------
# The protocol.


class PlacementScheme(ABC):
    """One placement family: parameters in, paper machinery out.

    Subclasses register with :func:`register_placement`, implement
    :meth:`_construct`, and optionally override :meth:`conflict_graph`
    with a *verified* closed-form fast path and
    :meth:`recovery_bounds` with family-specific theorems.  The default
    implementations — partition-intersection ground truth and the
    single-selected-worker bracket — are correct for **any** placement,
    so a minimal new family is just a constructor.
    """

    #: canonical registry name, set by :func:`register_placement`.
    family: ClassVar[str] = "abstract"
    #: accepted alternate spellings, set by :func:`register_placement`.
    aliases: ClassVar[Tuple[str, ...]] = ()
    #: one-line human description for listings.
    summary: ClassVar[str] = ""
    #: pointer into the paper (section / theorem / algorithm).
    paper: ClassVar[str] = ""
    #: whether spec-driven construction should forward the uniform
    #: ``partitions_per_worker`` count; families deriving ``c`` from
    #: their own parameters (HR's ``c1 + c2``, explicit tables) set
    #: this ``False`` (see :func:`spec_placement_scheme`).
    uses_uniform_c: ClassVar[bool] = True

    def __init__(self) -> None:
        self._placement: Optional[Placement] = None

    # -- construction ---------------------------------------------------
    @abstractmethod
    def _construct(self) -> Placement:
        """Build the placement (called once; result is cached)."""

    def construct(self) -> Placement:
        """The placement this scheme denotes (constructed lazily once).

        Parameter-constraint violations surface here as
        :class:`~repro.exceptions.PlacementError`, identical to the
        direct constructors.
        """
        if self._placement is None:
            self._placement = self._construct()
        return self._placement

    # -- the protocol ---------------------------------------------------
    def conflict_graph(self) -> Graph:
        """The conflict graph ``G`` of the constructed placement.

        Default: partition-intersection ground truth
        (:func:`repro.core.conflict.conflict_graph`), correct for any
        placement.  Families with closed-form constructions (Theorem 1
        for CR, clique unions for FR, Alg. 4 for HR) override this
        with the fast path — which must agree with the ground truth
        (property-tested per family).
        """
        return conflict_graph(self.construct())

    def recovery_bounds(self, wait_for: int) -> Tuple[int, int]:
        """Bracket on recovered partitions ``|I|`` at ``w = wait_for``.

        Default bracket, valid for **any** placement: at least one
        available worker is always selected (``c`` partitions), and at
        most ``min(w, ⌊n/c⌋)`` pairwise-disjoint ``c``-sets fit
        (Theorem 11's counting argument needs nothing about the
        placement's structure).  Theorem 10's stronger lower bound
        ``⌈w/c⌉`` does *not* hold for arbitrary placements — e.g. a
        star-shaped table where every worker shares partition 0 pins
        ``α = 1`` — so it lives in the FR/CR overrides where the paper
        proves it.
        """
        placement = self.construct()
        n = placement.num_workers
        c = placement.partitions_per_worker
        if not 0 <= wait_for <= n:
            raise ValueError(
                f"need 0 <= w <= n, got w={wait_for}, n={n}"
            )
        if wait_for == 0:
            return 0, 0
        return c, min(min(wait_for, n // c) * c, n)

    def fingerprint(self) -> str:
        """The placement's content digest — the decode-cache key
        component (:class:`~repro.parallel.DecodeCache`); identical to
        ``construct().fingerprint`` by construction."""
        return self.construct().fingerprint

    def decoder(
        self,
        *,
        rng: Any = None,
        metrics: Any = None,
        cache: Any = None,
    ):
        """This family's :class:`~repro.core.decoders.Decoder` over the
        constructed placement (the registry's linear-time decoder, or
        the exact-MIS decoder where that *is* the documented decoder —
        explicit tables)."""
        # Imported lazily: scheme.py must stay importable from the
        # decoder modules without a cycle.
        from .decoders import decoder_for

        return decoder_for(
            self.construct(), rng=rng, metrics=metrics, cache=cache
        )

    def decode_batch(
        self,
        masks: Any,
        *,
        rng: Any = None,
        metrics: Any = None,
        cache: Any = None,
    ):
        """Decode a whole batch of availability masks through this
        family's decoder — ``self.decoder(...).decode_batch(masks)``.

        One-shot convenience for analysis code; callers decoding many
        batches should hold on to :meth:`decoder` (its adjacency /
        partition matrices are built once per decoder instance).
        """
        return self.decoder(
            rng=rng, metrics=metrics, cache=cache
        ).decode_batch(masks)

    def describe(self) -> str:
        """Human-readable family + placement description."""
        lines = [f"[{self.family}] {self.summary}".rstrip()]
        if self.paper:
            lines.append(f"paper: {self.paper}")
        lines.append(self.construct().describe())
        return "\n".join(lines)

    # -- static hooks ---------------------------------------------------
    @classmethod
    def spec_problems(
        cls,
        *,
        num_workers: int,
        partitions_per_worker: Optional[int] = None,
        declared: bool = False,
        params: Optional[Mapping[str, Any]] = None,
    ) -> List[str]:
        """Arithmetic-only feasibility problems (for SPEC001/SPEC002).

        Must not construct anything; return constraint-citing messages.
        The default accepts everything (constraints then surface at
        :meth:`construct` time only).
        """
        return []

    @classmethod
    def from_placement(
        cls, placement: Placement
    ) -> Optional["PlacementScheme"]:
        """A scheme wrapping ``placement`` if it is this family's
        concrete type, else ``None`` (used by :func:`scheme_for`)."""
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(family={self.family!r})"


# ----------------------------------------------------------------------
# Registered families.  This module is the sanctioned construction
# layer, mirroring engine/spec.py for strategies/backends — the direct
# ``*Repetition(...)`` / ``*Placement(...)`` calls below are exactly
# what REG004 steers the rest of the library through here for.


@register_placement("fr", aliases=("fractional",))
class FRScheme(PlacementScheme):
    """Fractional repetition: ``n/c`` disjoint groups of ``c`` clones."""

    summary = (
        "fractional repetition — n/c disjoint groups of c identical "
        "replicas (requires c | n); best recovery, least flexible"
    )
    paper = "Sec. III; decoder Alg. 2; bounds Thms. 10-11; Fig. 4(a)"

    def __init__(self, *, num_workers: int, partitions_per_worker: int = 1):
        super().__init__()
        self._n = int(num_workers)
        self._c = int(partitions_per_worker)

    def _construct(self) -> Placement:
        return FractionalRepetition(self._n, self._c)

    def conflict_graph(self) -> Graph:
        # Clique union (Fig. 4a) — verified against ground truth.
        return fr_conflict_graph(self._n, self._c)

    def recovery_bounds(self, wait_for: int) -> Tuple[int, int]:
        return recovered_partitions_bounds(self._n, self._c, wait_for)

    @classmethod
    def spec_problems(
        cls, *, num_workers, partitions_per_worker=None, declared=False,
        params=None,
    ) -> List[str]:
        n, c = num_workers, partitions_per_worker
        if c is not None and n % c != 0:
            return [
                "FR placement requires c | n (Sec. III: workers form "
                f"n/c groups of c replicas); got n={n}, c={c}"
            ]
        return []

    @classmethod
    def from_placement(cls, placement):
        if type(placement) is FractionalRepetition:
            scheme = cls(
                num_workers=placement.num_workers,
                partitions_per_worker=placement.partitions_per_worker,
            )
            scheme._placement = placement
            return scheme
        return None


@register_placement("cr", aliases=("cyclic",))
class CRScheme(PlacementScheme):
    """Cyclic repetition: worker ``i`` stores ``(i .. i+c-1) mod n``."""

    summary = (
        "cyclic repetition — worker i stores partitions (i..i+c-1) mod n; "
        "always valid, most flexible wait choices"
    )
    paper = "Sec. III; conflict graph Thm. 1 (circulant C_n^{1..c-1}); decoder Alg. 1"

    def __init__(self, *, num_workers: int, partitions_per_worker: int = 1):
        super().__init__()
        self._n = int(num_workers)
        self._c = int(partitions_per_worker)

    def _construct(self) -> Placement:
        return CyclicRepetition(self._n, self._c)

    def conflict_graph(self) -> Graph:
        # Theorem 1's circulant construction — verified against ground
        # truth (property-tested across the (n, c) grid).
        return cr_conflict_graph(self._n, self._c)

    def recovery_bounds(self, wait_for: int) -> Tuple[int, int]:
        return recovered_partitions_bounds(self._n, self._c, wait_for)

    @classmethod
    def spec_problems(
        cls, *, num_workers, partitions_per_worker=None, declared=False,
        params=None,
    ) -> List[str]:
        n, c = num_workers, partitions_per_worker
        if c is not None and c >= n:
            return [
                f"CR placement requires 1 <= c < n: with c = n = {n} "
                "every pair of workers shares a partition (Theorem 1: "
                "conflict iff circular distance < c), so at most one "
                "payload is ever decodable"
            ]
        return []

    @classmethod
    def from_placement(cls, placement):
        if type(placement) is CyclicRepetition:
            scheme = cls(
                num_workers=placement.num_workers,
                partitions_per_worker=placement.partitions_per_worker,
            )
            scheme._placement = placement
            return scheme
        return None


@register_placement("hr", aliases=("hybrid",))
class HRScheme(PlacementScheme):
    """Hybrid repetition ``HR(n, c1, c2)`` with ``g`` groups."""

    summary = (
        "hybrid repetition — HR(n, c1, c2) with g groups interpolates "
        "FR and CR (c = c1 + c2); Theorem 5-7 constraints apply"
    )
    paper = "Sec. VI; conflict test Alg. 4; decoder Alg. 3; Thms. 5-7"
    uses_uniform_c = False

    def __init__(
        self,
        *,
        num_workers: int,
        c1: int,
        c2: int,
        num_groups: int,
        partitions_per_worker: Optional[int] = None,
    ):
        super().__init__()
        self._n = int(num_workers)
        self._c1 = int(c1)
        self._c2 = int(c2)
        self._g = int(num_groups)
        if (
            partitions_per_worker is not None
            and int(partitions_per_worker) != self._c1 + self._c2
        ):
            raise ConfigurationError(
                f"HR stores c1 + c2 = {self._c1 + self._c2} partitions "
                "per worker but partitions_per_worker="
                f"{partitions_per_worker} was given; make them agree "
                "(or drop partitions_per_worker)"
            )

    def _construct(self) -> Placement:
        return HybridRepetition(self._n, self._c1, self._c2, self._g)

    def conflict_graph(self) -> Graph:
        # Alg. 4's closed-form predicate — verified against ground truth.
        return hr_conflict_graph(self._n, self._c1, self._c2, self._g)

    def recovery_bounds(self, wait_for: int) -> Tuple[int, int]:
        # Corrected group-wise α bounds (see bounds.hr_alpha_bounds for
        # why the printed Theorem 10 fails when n0 > c), scaled to
        # partitions.
        lo, hi = hr_alpha_bounds(
            self._n, self._c1, self._c2, self._g, wait_for
        )
        c = self._c1 + self._c2
        return min(lo * c, self._n), min(hi * c, self._n)

    @classmethod
    def spec_problems(
        cls, *, num_workers, partitions_per_worker=None, declared=False,
        params=None,
    ) -> List[str]:
        n = num_workers
        params = params or {}
        c1 = _spec_int(params.get("c1"))
        c2 = _spec_int(params.get("c2"))
        g = _spec_int(params.get("num_groups"))
        if c1 is None or c2 is None or g is None:
            return [
                "HR placement needs integer params c1, c2 and "
                "num_groups (HR(n, c1, c2) with g groups, Sec. VI)"
            ]
        problems = _hr_constraint_problems(n, c1, c2, g)
        if (
            declared
            and partitions_per_worker is not None
            and partitions_per_worker != c1 + c2
        ):
            problems.append(
                "HR spec declares partitions_per_worker="
                f"{partitions_per_worker} but the placement stores "
                f"c1 + c2 = {c1 + c2} partitions per worker; make "
                "them agree"
            )
        return problems

    @classmethod
    def from_placement(cls, placement):
        if type(placement) is HybridRepetition:
            scheme = cls(
                num_workers=placement.num_workers,
                c1=placement.c1,
                c2=placement.c2,
                num_groups=placement.num_groups,
            )
            scheme._placement = placement
            return scheme
        return None


@register_placement("explicit", aliases=("table",))
class ExplicitScheme(PlacementScheme):
    """A user-supplied worker → partitions table."""

    summary = (
        "explicit table — any worker->partitions assignment; decoded "
        "by the exact-MIS decoder, bounds are the generic bracket"
    )
    paper = "Sec. V-A (conflict graphs) + exact-MIS decoding"
    uses_uniform_c = False

    def __init__(
        self,
        *,
        rows: Optional[Sequence[Sequence[int]]] = None,
        assignments: Optional[Mapping[int, Sequence[int]]] = None,
        num_workers: Optional[int] = None,
    ):
        super().__init__()
        if (rows is None) == (assignments is None):
            raise ConfigurationError(
                "explicit placement needs exactly one of rows= "
                "(row-per-worker list) or assignments= (worker -> "
                "partitions mapping)"
            )
        # A shallow copy is enough here: ExplicitPlacement.from_rows
        # tuple-normalizes every row at construction time anyway.
        self._rows = list(rows) if rows is not None else None
        self._assignments = (
            {int(w): tuple(p) for w, p in assignments.items()}
            if assignments is not None
            else None
        )
        expected = num_workers
        actual = (
            len(self._rows) if self._rows is not None
            else len(self._assignments)
        )
        if expected is not None and int(expected) != actual:
            raise ConfigurationError(
                f"explicit table has {actual} workers but "
                f"num_workers={expected} was given; make them agree"
            )

    def _construct(self) -> Placement:
        if self._rows is not None:
            return ExplicitPlacement.from_rows(self._rows)
        return ExplicitPlacement(self._assignments)

    @classmethod
    def _wrap(cls, placement: Placement) -> "ExplicitScheme":
        """Generic :func:`scheme_for` fallback: view any placement
        through the explicit family without re-deriving its table."""
        scheme = cls(assignments=placement.assignment_table())
        scheme._placement = placement
        return scheme

    @classmethod
    def from_placement(cls, placement):
        if type(placement) is ExplicitPlacement:
            return cls._wrap(placement)
        return None


@register_placement("hetero", aliases=("heterogeneous",))
class HeteroScheme(PlacementScheme):
    """A base family with a machine → worker-index re-assignment.

    Heterogeneity-aware operation (:mod:`repro.core.hetero_placement`)
    picks which physical machine plays which worker index; the placed
    table is the base family's, rows permuted so machine ``m`` stores
    what worker ``assignment[m]`` would.  Conflict structure and
    bounds are the base family's up to vertex relabelling.
    """

    summary = (
        "heterogeneity-aware — a base family's table with machines "
        "permuted onto worker indices (assignment from "
        "optimize_assignment)"
    )
    paper = "Sec. VIII discussion; related work [21]"

    def __init__(
        self,
        *,
        num_workers: int,
        assignment: Sequence[int],
        base: str = "cr",
        partitions_per_worker: Optional[int] = None,
        **base_params: Any,
    ):
        super().__init__()
        self._n = int(num_workers)
        self._assignment = [int(a) for a in assignment]
        if sorted(self._assignment) != list(range(self._n)):
            raise ConfigurationError(
                "assignment must be a permutation of worker indices "
                f"0..{self._n - 1}, got {assignment!r}"
            )
        self._base = spec_placement_scheme(
            base,
            num_workers=num_workers,
            partitions_per_worker=partitions_per_worker,
            **base_params,
        )

    @property
    def base(self) -> PlacementScheme:
        """The underlying family whose table is being permuted."""
        return self._base

    @property
    def assignment(self) -> List[int]:
        """machine ``m`` → base worker index it plays."""
        return list(self._assignment)

    def _construct(self) -> Placement:
        base = self._base.construct()
        return ExplicitPlacement(
            {
                m: base.partitions_of(w)
                for m, w in enumerate(self._assignment)
            }
        )

    def conflict_graph(self) -> Graph:
        # Relabel the base family's (fast-path) graph: machine m plays
        # base worker assignment[m], so edges map through the inverse.
        base_graph = self._base.conflict_graph()
        machine_of = {w: m for m, w in enumerate(self._assignment)}
        graph = Graph(vertices=range(self._n))
        for edge in base_graph.edges:
            a, b = tuple(edge)
            graph.add_edge(machine_of[a], machine_of[b])
        return graph

    def recovery_bounds(self, wait_for: int) -> Tuple[int, int]:
        # α is invariant under vertex relabelling.
        return self._base.recovery_bounds(wait_for)


@register_placement("comm-efficient", aliases=("comm_efficient", "ye-abbe"))
class CommEfficientScheme(PlacementScheme):
    """FR placement + Ye-Abbe Vandermonde block coding (ICML'18).

    The placement (hence conflict graph, fingerprint and IS-GC
    decoding semantics) is plain FR; :meth:`coder` yields the
    :class:`~repro.codes.comm_efficient.CommEfficientGC` codec with
    ``k = blocks``, tolerating ``c - k`` stragglers per group at a
    ``k×`` upload saving.
    """

    summary = (
        "communication-efficient GC (Ye-Abbe) — FR placement whose "
        "workers upload k-block Vandermonde combinations (k x smaller)"
    )
    paper = "related work [17] (Ye & Abbe ICML'18); IS extension in codes/comm_efficient.py"

    def __init__(
        self,
        *,
        num_workers: int,
        partitions_per_worker: int = 1,
        blocks: int = 1,
    ):
        super().__init__()
        self._n = int(num_workers)
        self._c = int(partitions_per_worker)
        self._blocks = int(blocks)

    @property
    def blocks(self) -> int:
        """``k``: blocks per group gradient (upload shrinks ``k×``)."""
        return self._blocks

    def _construct(self) -> Placement:
        return FractionalRepetition(self._n, self._c)

    def conflict_graph(self) -> Graph:
        return fr_conflict_graph(self._n, self._c)

    def recovery_bounds(self, wait_for: int) -> Tuple[int, int]:
        return recovered_partitions_bounds(self._n, self._c, wait_for)

    def coder(self):
        """The Vandermonde codec over this scheme's FR placement."""
        # Imported lazily: core must stay importable without codes.
        from ..codes.comm_efficient import CommEfficientGC

        return CommEfficientGC(self.construct(), self._blocks)

    @classmethod
    def spec_problems(
        cls, *, num_workers, partitions_per_worker=None, declared=False,
        params=None,
    ) -> List[str]:
        problems = FRScheme.spec_problems(
            num_workers=num_workers,
            partitions_per_worker=partitions_per_worker,
        )
        k = _spec_int((params or {}).get("blocks", 1))
        if k is None or (
            partitions_per_worker is not None
            and not 1 <= k <= partitions_per_worker
        ):
            problems.append(
                "communication-efficient GC needs integer blocks k "
                "with 1 <= k <= c; got blocks="
                f"{(params or {}).get('blocks', 1)!r}, "
                f"c={partitions_per_worker}"
            )
        return problems


@register_placement("multimessage", aliases=("multi-message",))
class MultiMessageScheme(PlacementScheme):
    """A base family operated with per-partition uploads.

    The placement is the base family's; :meth:`round` yields the
    :class:`~repro.partial.multimessage.MultiMessageRound` simulator
    (each partition's gradient ships as soon as it is computed, so
    stragglers' partial work counts).
    """

    summary = (
        "multi-message uploads — a base family's placement where each "
        "partition gradient ships as computed (partial straggler work "
        "counts, up to c x the bytes)"
    )
    paper = "related work [19]-[21] (Ozfatura et al.); partial/multimessage.py"

    def __init__(
        self,
        *,
        num_workers: int,
        partitions_per_worker: Optional[int] = None,
        base: str = "cr",
        **base_params: Any,
    ):
        super().__init__()
        resolve_placement(base)  # fail fast on an unknown base family
        self._base_family = base
        self._base_kwargs = dict(
            num_workers=num_workers,
            partitions_per_worker=partitions_per_worker,
            **base_params,
        )
        self._base: Optional[PlacementScheme] = None

    @property
    def base(self) -> PlacementScheme:
        """The placement family whose table is uploaded per-partition."""
        if self._base is None:
            self._base = spec_placement_scheme(
                self._base_family, **self._base_kwargs
            )
        return self._base

    def _construct(self) -> Placement:
        return self.base.construct()

    def conflict_graph(self) -> Graph:
        return self.base.conflict_graph()

    def recovery_bounds(self, wait_for: int) -> Tuple[int, int]:
        return self.base.recovery_bounds(wait_for)

    def round(self, **kwargs):
        """A :class:`MultiMessageRound` simulator over this placement."""
        # Imported lazily: core must stay importable without partial.
        from ..partial.multimessage import MultiMessageRound

        return MultiMessageRound(self.construct(), **kwargs)

    @classmethod
    def spec_problems(
        cls, *, num_workers, partitions_per_worker=None, declared=False,
        params=None,
    ) -> List[str]:
        params = dict(params or {})
        base = params.pop("base", "cr")
        return placement_spec_problems(
            base,
            num_workers=num_workers,
            partitions_per_worker=partitions_per_worker,
            declared=declared,
            params=params,
        )


# ----------------------------------------------------------------------
# Shared arithmetic helpers for the static hooks.


def _spec_int(value: Any) -> Optional[int]:
    """``value`` as an int for static checks (bools are not ints)."""
    if isinstance(value, bool) or not isinstance(value, int):
        return None
    return value


def _hr_constraint_problems(n: int, c1: int, c2: int, g: int) -> List[str]:
    """Theorem 5-7 feasibility of ``HR(n, c1, c2)`` with ``g`` groups."""
    problems: List[str] = []
    if c1 < 0 or c2 < 0 or c1 + c2 < 1:
        problems.append(
            "HR needs c1, c2 >= 0 with c = c1 + c2 >= 1; got "
            f"c1={c1}, c2={c2}"
        )
        return problems
    if g < 1 or n % g != 0:
        problems.append(
            "HR requires g | n (workers split into g equal groups, "
            f"Sec. VI); got n={n}, num_groups={g}"
        )
        return problems
    n0 = n // g
    c = c1 + c2
    if c > n:
        problems.append(
            f"HR needs c = c1 + c2 <= n; got c={c}, n={n}"
        )
        return problems
    if c1 > 0 and g > 1:
        if c > n0:
            problems.append(
                "HR requires c <= n0 = n/g (Theorem 5: a group must "
                f"hold all its partitions); got c={c}, n0={n0}"
            )
        if c1 > n0:
            problems.append(
                "HR upper part needs c1 <= n0 (at most one within-group "
                f"wrap); got c1={c1}, n0={n0}"
            )
        if c2 > 0 and n0 > c + c1:
            problems.append(
                "general HR needs n0 <= c + c1 (Theorem 6 within-group "
                "completeness: workers of one group must pairwise "
                f"conflict); got n0={n0}, c={c}, c1={c1}"
            )
    return problems
