"""Decoder for fractional repetition — Alg. 1 of the paper.

All workers in an FR group carry identical payloads (the sum of the
group's partitions), so the master simply keeps one *random* survivor
per non-empty group.  Complexity O(|W'|); randomness keeps the fairness
guarantee (every worker — hence every partition — equally likely to
contribute when stragglers are homogeneous).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

from .decoders import Decoder, Selection, register_decoder
from .fractional import FractionalRepetition


@register_decoder("fr")
class FRDecoder(Decoder):
    """Alg. 1: one random available worker per FR group.

    Deliberately uncached: decoding is already O(|W'|) — there is no
    search kernel worth memoising, and the per-group RNG draws must
    stay live for fairness anyway.
    """

    def __init__(
        self,
        placement: FractionalRepetition,
        *,
        rng=None,
        cache=None,
    ):
        if not isinstance(placement, FractionalRepetition):
            raise TypeError(
                f"FRDecoder requires a FractionalRepetition placement, "
                f"got {type(placement).__name__}"
            )
        super().__init__(placement, rng=rng, cache=cache)

    def _decode(self, available: FrozenSet[int]) -> Selection:
        placement: FractionalRepetition = self._placement  # type: ignore[assignment]
        by_group: Dict[int, List[int]] = {}
        for worker in available:
            by_group.setdefault(placement.group_of(worker), []).append(worker)
        selected = frozenset(
            int(self._rng.choice(sorted(members)))
            for members in by_group.values()
        )
        return Selection(selected, 1)
