"""Decoder for fractional repetition — Alg. 1 of the paper.

All workers in an FR group carry identical payloads (the sum of the
group's partitions), so the master simply keeps one *random* survivor
per non-empty group.  Complexity O(|W'|); randomness keeps the fairness
guarantee (every worker — hence every partition — equally likely to
contribute when stragglers are homogeneous).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List

import numpy as np

from .batch import BatchDecodeResult, MaskBatch, masks_to_array
from .decoders import Decoder, Selection, register_decoder
from .fractional import FractionalRepetition


@register_decoder("fr")
class FRDecoder(Decoder):
    """Alg. 1: one random available worker per FR group.

    Deliberately uncached: decoding is already O(|W'|) — there is no
    search kernel worth memoising, and the per-group RNG draws must
    stay live for fairness anyway.
    """

    def __init__(
        self,
        placement: FractionalRepetition,
        *,
        rng=None,
        cache=None,
    ):
        if not isinstance(placement, FractionalRepetition):
            raise TypeError(
                "FRDecoder requires a FractionalRepetition placement, "
                f"got {type(placement).__name__}"
            )
        super().__init__(placement, rng=rng, cache=cache)

    def _decode(self, available: FrozenSet[int]) -> Selection:
        placement: FractionalRepetition = self._placement  # type: ignore[assignment]
        by_group: Dict[int, List[int]] = {}
        for worker in available:
            by_group.setdefault(placement.group_of(worker), []).append(worker)
        selected = frozenset(
            int(self._rng.choice(sorted(members)))
            for members in by_group.values()
        )
        return Selection(selected, 1)

    def decode_batch(self, masks: MaskBatch) -> BatchDecodeResult:
        """Batched Alg. 1: validate up front, then run the per-group
        draws mask by mask in batch order.

        FR decoding is one RNG draw per non-empty group — there is no
        deterministic search kernel to vectorize, so the per-mask loop
        stays.  The loop iterates each mask as a *frozenset built from
        the original mask object* (array rows fall back to ascending
        ids): ``_decode`` groups workers in frozenset iteration order,
        and reproducing that order is what keeps batched selections and
        the generator stream bit-for-bit identical to the looped path.
        """
        placement: FractionalRepetition = self._placement  # type: ignore[assignment]
        avail, originals = masks_to_array(masks, placement.num_workers)
        num_masks = avail.shape[0]
        selected = np.zeros_like(avail)
        for i in range(num_masks):
            if originals is not None:
                available = frozenset(originals[i])
            else:
                available = frozenset(np.flatnonzero(avail[i]).tolist())
            picks = self._decode(available).workers
            selected[i, list(picks)] = True
        return self._finalize_batch(
            avail, selected, np.ones(num_masks, dtype=np.intp)
        )
