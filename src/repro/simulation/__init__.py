"""Discrete-event cluster simulation: events, network, wait policies."""

from .events import Event, EventQueue
from .network import IDEAL_NETWORK, NetworkModel
from .policies import (
    AdaptiveWaitK,
    BestEffortWaitForK,
    DeadlinePolicy,
    WaitForAll,
    WaitForK,
    WaitOutcome,
    WaitPolicy,
    linear_rampup,
)
from .cluster import ClusterSimulator, ComputeModel, RoundResult
from .metrics import StepStatistics, moving_average, steps_to_threshold
from .contention import (
    ContendedRound,
    ContendedUploadModel,
    fair_share_finish_times,
)
from .heterogeneous import (
    HeterogeneousComputeModel,
    HeterogeneousDelayAdapter,
    lognormal_speed_profile,
    tiered_speed_profile,
    uniform_speed_profile,
)

__all__ = [
    "Event",
    "EventQueue",
    "NetworkModel",
    "IDEAL_NETWORK",
    "WaitPolicy",
    "WaitForK",
    "WaitForAll",
    "BestEffortWaitForK",
    "DeadlinePolicy",
    "AdaptiveWaitK",
    "WaitOutcome",
    "linear_rampup",
    "ClusterSimulator",
    "ComputeModel",
    "RoundResult",
    "StepStatistics",
    "moving_average",
    "steps_to_threshold",
    "HeterogeneousComputeModel",
    "HeterogeneousDelayAdapter",
    "uniform_speed_profile",
    "tiered_speed_profile",
    "lognormal_speed_profile",
    "fair_share_finish_times",
    "ContendedUploadModel",
    "ContendedRound",
]
