"""Event-driven master/worker cluster simulator.

One :class:`ClusterSimulator` models a synchronous training round:

1. at step start the master broadcasts parameters (one broadcast time);
2. every worker computes gradients on its ``c`` partitions
   (``base_compute + c · per_partition_compute`` seconds), suffers a
   straggler delay from the injected :class:`~repro.straggler.DelayModel`,
   and uploads its coded gradient (network transfer time);
3. arrival events are pushed into an :class:`EventQueue`; the caller's
   wait policy then decides who is accepted and when the master moves on.

All time is simulated seconds.  Two time origins coexist and are kept
strictly apart:

* **absolute** — the simulator clock (``step_start``/``step_end``);
* **step-relative** — everything a wait policy sees or returns, and the
  ``arrivals``/``outcome`` carried by :class:`RoundResult`, measured
  from the start of the current step.

The same simulator instance can be replayed for several schemes by
fixing the delay model to a recorded
:class:`~repro.straggler.DelayTrace`; :meth:`ClusterSimulator.reset`
rewinds the clock *and* the RNG/model state so a replay reproduces the
same rounds exactly.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict

import numpy as np

from ..exceptions import ConfigurationError, SimulationError
from ..straggler.failures import FailureModel, NoFailures
from ..straggler.models import DelayModel, NoDelay
from .contention import ContendedUploadModel
from .events import Event, EventQueue
from .network import NetworkModel
from .policies import WaitOutcome, WaitPolicy

if TYPE_CHECKING:  # pragma: no cover
    from ..env.environment import Environment
    from ..obs.tracer import RoundTracer


@dataclass(frozen=True)
class ComputeModel:
    """Per-worker gradient computation cost.

    ``base`` covers batch loading and framework overhead;
    ``per_partition`` is the marginal cost of one more dataset
    partition, so a worker with ``c`` partitions spends
    ``base + c · per_partition`` seconds before upload.
    """

    base: float = 0.05
    per_partition: float = 0.10

    def __post_init__(self) -> None:
        if self.base < 0 or self.per_partition < 0:
            raise ConfigurationError(
                f"compute costs must be >= 0, got base={self.base}, "
                f"per_partition={self.per_partition}"
            )

    def step_time(self, partitions: int) -> float:
        """Seconds of compute for a worker holding ``partitions``."""
        if partitions <= 0:
            raise ConfigurationError(
                f"partitions must be positive, got {partitions}"
            )
        return self.base + partitions * self.per_partition


@dataclass(frozen=True)
class RoundResult:
    """Everything a training strategy needs from one simulated round.

    ``arrivals`` and ``outcome`` are *step-relative* (seconds since
    ``step_start``) — the same convention the wait policies use, so the
    policy's decision is carried through verbatim.  ``step_start`` and
    ``step_end`` are absolute simulator-clock readings; absolute arrival
    times are ``step_start + arrivals[w]``.
    """

    #: worker → step-relative arrival time (seconds since step_start).
    arrivals: Dict[int, float]
    #: The wait policy's decision, unchanged (proceed_time relative).
    outcome: WaitOutcome
    step_start: float
    step_end: float
    #: Compute-seconds spent by workers whose uploads the master did
    #: not accept this round — the price of ignoring stragglers, and
    #: the quantity the multi-message extension (repro.partial) exists
    #: to harvest.
    wasted_compute: float = 0.0

    @property
    def step_time(self) -> float:
        return self.step_end - self.step_start


class ClusterSimulator:
    """Simulates rounds of distributed gradient computation."""

    def __init__(
        self,
        num_workers: int,
        partitions_per_worker: int,
        compute: ComputeModel | None = None,
        network: NetworkModel | None = None,
        delay_model: DelayModel | None = None,
        gradient_elements: int = 10_000,
        rng: np.random.Generator | None = None,
        failure_model: FailureModel | None = None,
        contended_link: ContendedUploadModel | None = None,
        tracer: "RoundTracer | None" = None,
        environment: "Environment | None" = None,
    ):
        if num_workers <= 0:
            raise ConfigurationError(
                f"num_workers must be positive, got {num_workers}"
            )
        if partitions_per_worker <= 0:
            raise ConfigurationError(
                "partitions_per_worker must be positive, "
                f"got {partitions_per_worker}"
            )
        if environment is not None:
            given = [
                name
                for name, value in (
                    ("compute", compute),
                    ("network", network),
                    ("delay_model", delay_model),
                    ("failure_model", failure_model),
                    ("contended_link", contended_link),
                )
                if value is not None
            ]
            if given:
                raise ConfigurationError(
                    "environment= bundles every model layer; drop the "
                    f"individual argument(s) {', '.join(given)}"
                )
            compute = environment.compute
            network = environment.network
            delay_model = environment.delay
            failure_model = environment.failure
            contended_link = environment.contention
        self._n = num_workers
        self._c = partitions_per_worker
        self._compute = compute if compute is not None else ComputeModel()
        self._network = network if network is not None else NetworkModel()
        self._delays = delay_model if delay_model is not None else NoDelay()
        self._gradient_elements = gradient_elements
        self._rng = rng if rng is not None else np.random.default_rng()  # repro: noqa[DET003] deliberate opt-in to entropy when no rng is injected
        self._failures = failure_model if failure_model is not None else NoFailures()
        self._link = contended_link
        self._tracer = tracer
        self._clock = 0.0
        # Snapshot the generator so reset() can replay the exact same
        # random stream (and therefore the exact same rounds).
        self._rng_state = copy.deepcopy(self._rng.bit_generator.state)

    # ------------------------------------------------------------------
    @property
    def num_workers(self) -> int:
        return self._n

    @property
    def clock(self) -> float:
        """Current simulated time in seconds."""
        return self._clock

    @property
    def tracer(self) -> "RoundTracer | None":
        """The attached round tracer, or ``None`` (tracing disabled)."""
        return self._tracer

    @tracer.setter
    def tracer(self, tracer: "RoundTracer | None") -> None:
        self._tracer = tracer

    def reset(self) -> None:
        """Rewind to the initial state: clock zero, the RNG restored to
        its construction-time state, and stateful delay/failure models
        reset — so a reset simulator replays identical rounds."""
        self._clock = 0.0
        self._rng.bit_generator.state = self._rng_state
        self._delays.reset()
        self._failures.reset()

    def snapshot_state(self) -> Dict:
        """JSON-safe mutable simulator state (checkpointing).

        The failure models are pure functions of ``(worker, step)`` and
        carry no mutable state, so clock + RNG + delay-model state is
        the complete picture.
        """
        return {
            "clock": self._clock,
            "rng": copy.deepcopy(self._rng.bit_generator.state),
            "delays": self._delays.snapshot_state(),
        }

    def restore_state(self, state) -> None:
        """Restore state captured by :meth:`snapshot_state`."""
        self._clock = float(state["clock"])
        self._rng.bit_generator.state = copy.deepcopy(dict(state["rng"]))
        self._delays.restore_state(state["delays"])

    # ------------------------------------------------------------------
    def run_round(self, step: int, policy: WaitPolicy) -> RoundResult:
        """Simulate one synchronous round under ``policy``.

        Crashed/dropped workers (``failure_model``) produce no arrival;
        with a ``contended_link`` the uploads fair-share the master's
        ingress bandwidth instead of transferring independently.

        The round is drawn in two batches: all alive checks (worker
        order), then one :meth:`DelayModel.sample_round` over the
        survivors — a single vectorized draw for the vectorizable
        families instead of ``n`` scalar ones.
        """
        start = self._clock
        broadcast = self._network.broadcast_time(
            self._gradient_elements, self._n
        )
        alive = [
            worker
            for worker in range(self._n)
            if self._failures.is_alive(worker, step, self._rng)
        ]
        if not alive:
            raise SimulationError(
                f"step {step}: every worker failed; nothing to wait for"
            )
        compute_t = self._compute.step_time(self._c)
        straggles = self._delays.sample_round(alive, step, self._rng)
        upload_starts = {
            worker: start + broadcast + compute_t + float(straggle_t)
            for worker, straggle_t in zip(alive, straggles)
        }

        if self._link is not None:
            contended = self._link.round_arrivals(
                upload_starts, self._gradient_elements
            )
            arrivals = contended.arrivals
        else:
            queue = EventQueue()
            upload_t = self._network.transfer_time(self._gradient_elements)
            for worker, begun in upload_starts.items():
                queue.push(
                    Event(
                        time=begun + upload_t,
                        kind="gradient_arrival",
                        worker=worker,
                    )
                )
            arrivals = {ev.worker: ev.time for ev in queue.drain()}
        # Policies reason in step-relative time (deadlines); convert
        # once and keep the relative convention all the way out — the
        # returned RoundResult carries the policy's outcome verbatim.
        relative = {w: t - start for w, t in arrivals.items()}
        outcome = policy.wait(relative, step)
        end = start + outcome.proceed_time
        self._clock = end
        per_worker_compute = self._compute.step_time(self._c)
        wasted = per_worker_compute * sum(
            1 for w in relative if w not in outcome.accepted_workers
        )
        if self._tracer is not None:
            self._tracer.record_round(
                step=step,
                arrivals=relative,
                outcome=outcome,
                policy=policy.describe(),
                step_start=start,
                step_end=end,
                wasted_compute=wasted,
            )
        return RoundResult(
            arrivals=relative,
            outcome=outcome,
            step_start=start,
            step_end=end,
            wasted_compute=wasted,
        )
