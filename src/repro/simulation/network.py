"""Communication model.

The paper's Fig. 12(c) discussion infers that "most time is spent on
uploading gradients to the master", so the simulator models uploads
explicitly: a fixed per-message latency plus a size/bandwidth term.
Coded gradients in IS-GC are a single vector regardless of ``c`` (the
sum of ``c`` per-partition gradients), so upload size depends on the
model dimension only — one of the reasons IS-GC's per-step overhead over
IS-SGD stays modest.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class NetworkModel:
    """Latency + bandwidth transfer-time model.

    Attributes
    ----------
    latency:
        Per-message fixed cost in seconds (propagation + framing).
    bandwidth:
        Bytes per second; ``float("inf")`` models an ideal network.
    bytes_per_element:
        Gradient element width; 4 for fp32 (the paper's setting).
    """

    latency: float = 0.001
    bandwidth: float = 1.25e9  # 10 Gbit/s
    bytes_per_element: int = 4

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ConfigurationError(f"latency must be >= 0, got {self.latency}")
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"bandwidth must be > 0, got {self.bandwidth}"
            )
        if self.bytes_per_element <= 0:
            raise ConfigurationError(
                f"bytes_per_element must be > 0, got {self.bytes_per_element}"
            )

    def transfer_time(self, num_elements: int) -> float:
        """Seconds to ship a gradient of ``num_elements`` floats."""
        if num_elements < 0:
            raise ConfigurationError(
                f"num_elements must be >= 0, got {num_elements}"
            )
        size_bytes = num_elements * self.bytes_per_element
        return self.latency + size_bytes / self.bandwidth

    def broadcast_time(self, num_elements: int, num_workers: int) -> float:
        """Master → workers broadcast of the decoded gradient.

        Modelled as a single pipelined transfer (tree broadcast), i.e.
        independent of ``num_workers`` beyond one latency; a sequential
        model would penalise all schemes identically and change nothing
        in relative comparisons.
        """
        if num_workers <= 0:
            raise ConfigurationError(
                f"num_workers must be > 0, got {num_workers}"
            )
        return self.transfer_time(num_elements)


#: An ideal network for experiments that isolate compute stragglers.
IDEAL_NETWORK = NetworkModel(latency=0.0, bandwidth=float("inf"))
