"""Heterogeneous clusters: per-worker speed factors.

The paper's experiments assume homogeneous hardware with injected
delays, but its discussion (and cited work on heterogeneity-aware GC,
[21]) motivates clusters where some machines are simply slower.  This
module provides a per-worker compute model and a helper to build the
speed profile from common shapes.
"""

from __future__ import annotations

from typing import Dict, Mapping, Sequence

import numpy as np

from ..exceptions import ConfigurationError
from ..straggler.models import DelayModel
from .cluster import ComputeModel


class HeterogeneousComputeModel:
    """Per-worker compute cost: base model scaled by a speed factor.

    A factor of 2.0 means the worker takes twice as long per step.
    Exposes ``step_time_for(worker, partitions)``;
    :meth:`worker_view` adapts one worker's cost to the homogeneous
    :class:`ComputeModel` interface for reuse.
    """

    def __init__(self, base: ComputeModel, speed_factors: Mapping[int, float]):
        for worker, factor in speed_factors.items():
            if factor <= 0:
                raise ConfigurationError(
                    f"worker {worker} has non-positive speed factor {factor}"
                )
        self._base = base
        self._factors = dict(speed_factors)

    @property
    def speed_factors(self) -> Dict[int, float]:
        return dict(self._factors)

    def factor(self, worker: int) -> float:
        """Speed factor of ``worker`` (1.0 when unlisted)."""
        return self._factors.get(worker, 1.0)

    def step_time_for(self, worker: int, partitions: int) -> float:
        """Per-step compute seconds for ``worker``."""
        return self._base.step_time(partitions) * self.factor(worker)

    def worker_view(self, worker: int) -> ComputeModel:
        """A homogeneous-model adapter for one worker."""
        f = self.factor(worker)
        return ComputeModel(
            base=self._base.base * f,
            per_partition=self._base.per_partition * f,
        )


def uniform_speed_profile(num_workers: int) -> Dict[int, float]:
    """Everybody at factor 1.0 (a homogeneous cluster)."""
    if num_workers <= 0:
        raise ConfigurationError(f"num_workers must be positive, got {num_workers}")
    return {w: 1.0 for w in range(num_workers)}


def tiered_speed_profile(
    num_workers: int, slow_workers: Sequence[int], slow_factor: float = 3.0
) -> Dict[int, float]:
    """A two-tier cluster: listed workers run ``slow_factor×`` slower."""
    profile = uniform_speed_profile(num_workers)
    for worker in slow_workers:
        if not 0 <= worker < num_workers:
            raise ConfigurationError(
                f"slow worker {worker} outside [0, {num_workers})"
            )
        profile[worker] = slow_factor
    return profile


def lognormal_speed_profile(
    num_workers: int, sigma: float = 0.3, seed: int = 0
) -> Dict[int, float]:
    """A realistic spread: factors ~ LogNormal(0, sigma), median 1.0."""
    if sigma < 0:
        raise ConfigurationError(f"sigma must be >= 0, got {sigma}")
    rng = np.random.default_rng(seed)
    return {
        w: float(rng.lognormal(mean=0.0, sigma=sigma))
        for w in range(num_workers)
    }


class HeterogeneousDelayAdapter(DelayModel):
    """Expose heterogeneous *compute* as a DelayModel-compatible extra.

    The homogeneous :class:`~repro.simulation.ClusterSimulator` charges
    every worker the same compute time; this adapter converts the
    per-worker surplus ``(factor − 1) × base_step_time`` into an
    additive delay so heterogeneous clusters can be simulated without
    changing the simulator.
    """

    def __init__(
        self, model: HeterogeneousComputeModel, partitions_per_worker: int
    ):
        if partitions_per_worker <= 0:
            raise ConfigurationError(
                "partitions_per_worker must be positive, "
                f"got {partitions_per_worker}"
            )
        self._model = model
        self._partitions = partitions_per_worker

    def sample(self, worker: int, step: int, rng) -> float:
        """Extra delay: the worker surplus over the homogeneous cost."""
        base_time = self._model.step_time_for(worker, self._partitions)
        homogeneous = self._model.step_time_for(worker, self._partitions) / (
            self._model.factor(worker)
        )
        return max(0.0, base_time - homogeneous)
