"""Master wait policies.

The master decides *when to stop waiting* for coded gradients each
step.  The paper highlights that IS-GC frees this choice entirely:

* classic GC / sync-SGD must wait for a fixed count (``n - s`` resp.
  ``n``),
* IS-SGD / IS-GC wait for any ``w`` (``ray.wait(num_returns=w)``),
* a deadline policy ("we can set a deadline in each step") and an
  adaptive schedule ("receive gradients from fewer workers at the
  beginning … more afterwards") are also described in Sec. IV.

A policy consumes the full arrival-time vector for a step and returns
the accepted worker set plus the simulated time at which the master
proceeds.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, FrozenSet, Mapping, Tuple

from ..exceptions import ConfigurationError, SimulationError


@dataclass(frozen=True)
class WaitOutcome:
    """What a wait policy decided for one step."""

    accepted_workers: FrozenSet[int]
    proceed_time: float


class WaitPolicy(abc.ABC):
    """Decide which arrivals the master accepts and when it moves on."""

    @abc.abstractmethod
    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        """``arrivals`` maps worker → absolute arrival time (this step)."""

    @staticmethod
    def _sorted_arrivals(arrivals: Mapping[int, float]) -> list[Tuple[float, int]]:
        if not arrivals:
            raise SimulationError("wait policy invoked with zero arrivals")
        return sorted((t, w) for w, t in arrivals.items())


class WaitForK(WaitPolicy):
    """Accept the ``k`` fastest workers; proceed at the k-th arrival.

    ``k = n`` is synchronous SGD; ``k = n - c + 1`` is classic GC;
    any smaller ``k`` is the IS-SGD / IS-GC regime.
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self._k = k

    @property
    def k(self) -> int:
        return self._k

    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        ordered = self._sorted_arrivals(arrivals)
        if len(ordered) < self._k:
            raise SimulationError(
                f"policy needs {self._k} arrivals but only "
                f"{len(ordered)} workers reported"
            )
        chosen = ordered[: self._k]
        return WaitOutcome(
            accepted_workers=frozenset(w for _, w in chosen),
            proceed_time=chosen[-1][0],
        )


class BestEffortWaitForK(WaitPolicy):
    """Accept the ``k`` fastest, or everyone when fewer than ``k``
    workers report (crashes/dropouts).  The ignore-straggler decoders
    handle whatever subset arrives, so training survives failures that
    would deadlock a strict wait."""

    def __init__(self, k: int):
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self._k = k

    @property
    def k(self) -> int:
        return self._k

    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        ordered = self._sorted_arrivals(arrivals)
        chosen = ordered[: min(self._k, len(ordered))]
        return WaitOutcome(
            accepted_workers=frozenset(w for _, w in chosen),
            proceed_time=chosen[-1][0],
        )


class WaitForAll(WaitForK):
    """Synchronous SGD: wait for every worker."""

    def __init__(self, num_workers: int):
        super().__init__(num_workers)


class DeadlinePolicy(WaitPolicy):
    """Accept everything that lands within ``deadline`` seconds of the
    step start; if nobody makes it, wait for the first arrival (the
    master can never proceed empty-handed)."""

    def __init__(self, deadline: float):
        if deadline < 0:
            raise ConfigurationError(
                f"deadline must be >= 0, got {deadline}"
            )
        self._deadline = deadline

    @property
    def deadline(self) -> float:
        return self._deadline

    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        ordered = self._sorted_arrivals(arrivals)
        within = [(t, w) for t, w in ordered if t <= self._deadline]
        if not within:
            first_time, first_worker = ordered[0]
            return WaitOutcome(
                accepted_workers=frozenset({first_worker}),
                proceed_time=first_time,
            )
        return WaitOutcome(
            accepted_workers=frozenset(w for _, w in within),
            proceed_time=max(self._deadline, within[-1][0]),
        )


class AdaptiveWaitK(WaitPolicy):
    """``k`` as a function of the step index (Sec. IV's ramp-up idea)."""

    def __init__(self, schedule: Callable[[int], int]):
        self._schedule = schedule

    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        k = self._schedule(step)
        if k <= 0:
            raise SimulationError(
                f"adaptive schedule produced invalid k={k} at step {step}"
            )
        return WaitForK(min(k, len(arrivals))).wait(arrivals, step)


def linear_rampup(start_k: int, end_k: int, over_steps: int) -> Callable[[int], int]:
    """A ready-made ramp: ``start_k`` → ``end_k`` linearly over
    ``over_steps`` steps, then constant ``end_k``."""
    if start_k <= 0 or end_k <= 0 or over_steps <= 0:
        raise ConfigurationError(
            "start_k, end_k and over_steps must all be positive"
        )

    def schedule(step: int) -> int:
        if step >= over_steps:
            return end_k
        frac = step / over_steps
        return round(start_k + frac * (end_k - start_k))

    return schedule
