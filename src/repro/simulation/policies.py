"""Master wait policies.

The master decides *when to stop waiting* for coded gradients each
step.  The paper highlights that IS-GC frees this choice entirely:

* classic GC / sync-SGD must wait for a fixed count (``n - s`` resp.
  ``n``),
* IS-SGD / IS-GC wait for any ``w`` (``ray.wait(num_returns=w)``),
* a deadline policy ("we can set a deadline in each step") and an
  adaptive schedule ("receive gradients from fewer workers at the
  beginning … more afterwards") are also described in Sec. IV.

A policy consumes the full arrival-time vector for a step and returns
the accepted worker set plus the time at which the master proceeds.

**Unit convention** — policies reason entirely in *step-relative*
seconds: every arrival time is measured from the start of the current
step, and :attr:`WaitOutcome.proceed_time` is likewise relative (the
caller adds its own step start to obtain an absolute clock).  This is
what makes deadlines meaningful per step and lets one policy instance
serve every round of a run.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Callable, FrozenSet, Mapping, Tuple

from ..exceptions import ConfigurationError, SimulationError


@dataclass(frozen=True)
class WaitOutcome:
    """What a wait policy decided for one step.

    ``proceed_time`` is *step-relative*: seconds after the step start
    at which the master stops waiting (see the module docstring).
    """

    accepted_workers: FrozenSet[int]
    proceed_time: float


class WaitPolicy(abc.ABC):
    """Decide which arrivals the master accepts and when it moves on."""

    @abc.abstractmethod
    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        """``arrivals`` maps worker → *step-relative* arrival time
        (seconds since the step start); the returned
        :attr:`WaitOutcome.proceed_time` uses the same origin."""

    def describe(self) -> str:
        """Short label for traces and reports (override for detail)."""
        return type(self).__name__

    @staticmethod
    def _sorted_arrivals(arrivals: Mapping[int, float]) -> list[Tuple[float, int]]:
        if not arrivals:
            raise SimulationError("wait policy invoked with zero arrivals")
        return sorted((t, w) for w, t in arrivals.items())


class WaitForK(WaitPolicy):
    """Accept the ``k`` fastest workers; proceed at the k-th arrival.

    ``k = n`` is synchronous SGD; ``k = n - c + 1`` is classic GC;
    any smaller ``k`` is the IS-SGD / IS-GC regime.
    """

    def __init__(self, k: int):
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self._k = k

    @property
    def k(self) -> int:
        return self._k

    def describe(self) -> str:
        return f"wait-for-k(k={self._k})"

    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        ordered = self._sorted_arrivals(arrivals)
        if len(ordered) < self._k:
            raise SimulationError(
                f"policy needs {self._k} arrivals but only "
                f"{len(ordered)} workers reported"
            )
        chosen = ordered[: self._k]
        return WaitOutcome(
            accepted_workers=frozenset(w for _, w in chosen),
            proceed_time=chosen[-1][0],
        )


class BestEffortWaitForK(WaitPolicy):
    """Accept the ``k`` fastest, or everyone when fewer than ``k``
    workers report (crashes/dropouts).  The ignore-straggler decoders
    handle whatever subset arrives, so training survives failures that
    would deadlock a strict wait."""

    def __init__(self, k: int):
        if k <= 0:
            raise ConfigurationError(f"k must be positive, got {k}")
        self._k = k

    @property
    def k(self) -> int:
        return self._k

    def describe(self) -> str:
        return f"best-effort-wait-for-k(k={self._k})"

    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        ordered = self._sorted_arrivals(arrivals)
        chosen = ordered[: min(self._k, len(ordered))]
        return WaitOutcome(
            accepted_workers=frozenset(w for _, w in chosen),
            proceed_time=chosen[-1][0],
        )


class WaitForAll(WaitForK):
    """Synchronous SGD: wait for every worker."""

    def __init__(self, num_workers: int):
        super().__init__(num_workers)


class DeadlinePolicy(WaitPolicy):
    """Accept everything that lands within ``deadline`` seconds of the
    step start and proceed at the deadline; if nobody makes it, wait
    for the first arrival (the master can never proceed empty-handed)."""

    def __init__(self, deadline: float):
        if deadline < 0:
            raise ConfigurationError(
                f"deadline must be >= 0, got {deadline}"
            )
        self._deadline = deadline

    @property
    def deadline(self) -> float:
        return self._deadline

    def describe(self) -> str:
        return f"deadline({self._deadline}s)"

    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        ordered = self._sorted_arrivals(arrivals)
        within = [(t, w) for t, w in ordered if t <= self._deadline]
        if not within:
            first_time, first_worker = ordered[0]
            return WaitOutcome(
                accepted_workers=frozenset({first_worker}),
                proceed_time=first_time,
            )
        # Every accepted arrival is <= deadline by construction, so the
        # master proceeds exactly at the deadline.
        return WaitOutcome(
            accepted_workers=frozenset(w for _, w in within),
            proceed_time=self._deadline,
        )


class AdaptiveWaitK(WaitPolicy):
    """``k`` as a function of the step index (Sec. IV's ramp-up idea)."""

    def __init__(self, schedule: Callable[[int], int]):
        self._schedule = schedule

    def describe(self) -> str:
        return "adaptive-k"

    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        k = self._schedule(step)
        if k <= 0:
            raise SimulationError(
                f"adaptive schedule produced invalid k={k} at step {step}"
            )
        return WaitForK(min(k, len(arrivals))).wait(arrivals, step)


def linear_rampup(start_k: int, end_k: int, over_steps: int) -> Callable[[int], int]:
    """A ready-made ramp: ``start_k`` → ``end_k`` linearly over
    ``over_steps`` steps, then constant ``end_k``.

    The interpolation is pure integer arithmetic
    (``start_k + (step · Δ) // over_steps``), so the schedule is exact,
    deterministic, and monotone — no float rounding (the previous
    banker's-rounding ``round()`` made step-to-step behaviour depend on
    tie-breaking) — and hits ``start_k`` at step 0 and ``end_k`` at
    ``over_steps`` exactly.
    """
    if start_k <= 0 or end_k <= 0 or over_steps <= 0:
        raise ConfigurationError(
            "start_k, end_k and over_steps must all be positive"
        )

    def schedule(step: int) -> int:
        if step >= over_steps:
            return end_k
        return start_k + (step * (end_k - start_k)) // over_steps

    return schedule
