"""Shared-link contention: fair-share uplink into the master.

The paper infers that "most time is spent on uploading gradients to the
master" (Sec. VIII-C) — in a real cluster those uploads *share* the
master's ingress link, so simultaneous uploads slow each other down.
The plain :class:`~repro.simulation.NetworkModel` ignores this; this
module adds a processor-sharing model:

:func:`fair_share_finish_times` — given each flow's start time and
size, computes finish times under max-min fair sharing of one link of
capacity ``C`` (progressive filling: between consecutive events, every
active flow receives ``C / #active`` bytes per second).

:class:`ContendedUploadModel` wraps it into a round-level helper the
experiments use to see how contention changes scheme ordering (an
ablation the paper's analysis motivates but does not run).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..exceptions import ConfigurationError, SimulationError


def fair_share_finish_times(
    start_times: Sequence[float],
    sizes: Sequence[float],
    capacity: float,
) -> List[float]:
    """Finish times of flows sharing one link max-min fairly.

    Event-driven progressive filling: advance to the next start or the
    earliest projected finish, draining each active flow at
    ``capacity / num_active`` in between.  O((F log F)·F) worst case —
    trivial at worker scale.
    """
    if len(start_times) != len(sizes):
        raise ConfigurationError(
            f"{len(start_times)} start times vs {len(sizes)} sizes"
        )
    if capacity <= 0:
        raise ConfigurationError(f"capacity must be > 0, got {capacity}")
    for i, (t, s) in enumerate(zip(start_times, sizes)):
        if t < 0 or s < 0:
            raise ConfigurationError(
                f"flow {i} has negative start or size ({t}, {s})"
            )

    remaining = {i: float(s) for i, s in enumerate(sizes)}
    finish: Dict[int, float] = {}
    # Flows with zero bytes finish the instant they start.
    for i, s in enumerate(sizes):
        if s == 0.0:
            finish[i] = float(start_times[i])
            del remaining[i]
    # Done-threshold per flow: relative, because `rate * (bytes/rate)`
    # can round a hair below `bytes`, leaving a residual above any
    # absolute epsilon whose drain time then underflows `now + dt`
    # (a permanent stall).  1e-9 relative is far below one float ulp
    # of any realistic finish-time difference.
    tolerance = {i: max(1e-12, 1e-9 * float(s)) for i, s in enumerate(sizes)}

    pending = sorted(
        (float(start_times[i]), i) for i in remaining
    )
    active: set[int] = set()
    now = pending[0][0] if pending else 0.0
    next_start_idx = 0

    while remaining:
        # Admit flows that have started by `now`.
        while next_start_idx < len(pending) and pending[next_start_idx][0] <= now:
            active.add(pending[next_start_idx][1])
            next_start_idx += 1
        if not active:
            now = pending[next_start_idx][0]
            continue

        rate = capacity / len(active)
        soonest_finish = min(remaining[i] / rate for i in active)
        next_event = now + soonest_finish
        if next_start_idx < len(pending):
            next_event = min(next_event, pending[next_start_idx][0])

        elapsed = next_event - now
        drained = rate * elapsed
        done = []
        for i in active:
            remaining[i] -= drained
            if remaining[i] <= tolerance[i]:
                done.append(i)
        if not done and next_event == now:
            # Zero time elapsed and nothing finished: the soonest
            # finisher's drain time underflowed the clock.  Finish it
            # now rather than loop forever.
            stuck = min(active, key=lambda i: remaining[i])
            done.append(stuck)
        for i in done:
            finish[i] = next_event
            active.discard(i)
            del remaining[i]
        now = next_event

    return [finish[i] for i in range(len(sizes))]


@dataclass(frozen=True)
class ContendedRound:
    """Arrival times for one round under link contention."""

    arrivals: Dict[int, float]
    link_busy_until: float


class ContendedUploadModel:
    """Round-level upload timing under a shared master ingress link."""

    def __init__(self, capacity_bytes_per_s: float, bytes_per_element: int = 4):
        if capacity_bytes_per_s <= 0:
            raise ConfigurationError(
                f"capacity must be > 0, got {capacity_bytes_per_s}"
            )
        if bytes_per_element <= 0:
            raise ConfigurationError(
                f"bytes_per_element must be > 0, got {bytes_per_element}"
            )
        self._capacity = capacity_bytes_per_s
        self._elem_bytes = bytes_per_element

    def round_arrivals(
        self,
        upload_start_times: Mapping[int, float],
        gradient_elements: int,
    ) -> ContendedRound:
        """Each worker starts uploading when its compute finishes; the
        shared link serialises/fair-shares the transfers."""
        if gradient_elements < 0:
            raise SimulationError(
                f"gradient_elements must be >= 0, got {gradient_elements}"
            )
        workers = sorted(upload_start_times)
        starts = [upload_start_times[w] for w in workers]
        sizes = [gradient_elements * self._elem_bytes] * len(workers)
        finishes = fair_share_finish_times(starts, sizes, self._capacity)
        arrivals = dict(zip(workers, finishes))
        return ContendedRound(
            arrivals=arrivals,
            link_busy_until=max(finishes) if finishes else 0.0,
        )
