"""Compatibility re-exports: these helpers live in :mod:`repro.obs` now.

``StepStatistics``, ``steps_to_threshold`` and ``moving_average``
predate the observability layer; they are implemented in
:mod:`repro.obs.aggregate` on top of :class:`~repro.obs.MetricsRegistry`
and re-exported here so historical imports keep working.
"""

from __future__ import annotations

from ..obs.aggregate import StepStatistics, moving_average, steps_to_threshold

__all__ = ["StepStatistics", "moving_average", "steps_to_threshold"]
