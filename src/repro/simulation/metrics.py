"""Aggregation helpers for simulated-training metrics."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from ..types import StepRecord


@dataclass(frozen=True)
class StepStatistics:
    """Summary statistics over a sequence of step records."""

    count: int
    mean_step_time: float
    p50_step_time: float
    p95_step_time: float
    mean_recovery_fraction: float
    mean_available: float
    total_time: float

    @classmethod
    def from_records(cls, records: Sequence[StepRecord]) -> "StepStatistics":
        if not records:
            raise ValueError("no step records to summarise")
        # Step times are the per-step increments of the simulated clock.
        times = np.array([r.wait_time for r in records])
        return cls(
            count=len(records),
            mean_step_time=float(times.mean()),
            p50_step_time=float(np.percentile(times, 50)),
            p95_step_time=float(np.percentile(times, 95)),
            mean_recovery_fraction=float(
                np.mean([r.recovery_fraction for r in records])
            ),
            mean_available=float(np.mean([r.num_available for r in records])),
            total_time=float(times.sum()),
        )


def steps_to_threshold(
    losses: Iterable[float], threshold: float
) -> int | None:
    """First 1-based step index whose loss is ≤ ``threshold``; ``None``
    when the run never got there."""
    for idx, loss in enumerate(losses, start=1):
        if loss <= threshold:
            return idx
    return None


def moving_average(values: Sequence[float], window: int) -> np.ndarray:
    """Simple trailing moving average (shorter windows at the start)."""
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    arr = np.asarray(values, dtype=float)
    out = np.empty_like(arr)
    csum = np.cumsum(arr)
    for i in range(len(arr)):
        lo = max(0, i - window + 1)
        total = csum[i] - (csum[lo - 1] if lo > 0 else 0.0)
        out[i] = total / (i - lo + 1)
    return out
