"""Discrete-event primitives for the cluster simulator.

A tiny but real event-driven core: a priority queue of timestamped
events with deterministic tie-breaking (by insertion sequence), which is
what makes whole simulations reproducible bit-for-bit under a fixed
seed.  The synchronous-step experiments drive it one round at a time;
the queue also supports open-ended pipelined simulations.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Optional

from ..exceptions import SimulationError


@dataclass(frozen=True, order=False)
class Event:
    """One simulated occurrence.

    Attributes
    ----------
    time:
        Simulated-seconds timestamp.
    kind:
        Free-form tag, e.g. ``"gradient_arrival"`` or ``"deadline"``.
    worker:
        Originating worker index, or ``None`` for master-side events.
    payload:
        Arbitrary attached data (never inspected by the queue).
    """

    time: float
    kind: str
    worker: Optional[int] = None
    payload: Any = field(default=None, compare=False)


class EventQueue:
    """Min-heap of :class:`Event` with stable FIFO tie-breaking."""

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._counter = itertools.count()

    def push(self, event: Event) -> None:
        """Insert an event; rejects negative timestamps."""
        if event.time < 0:
            raise SimulationError(f"negative event time {event.time}")
        heapq.heappush(self._heap, (event.time, next(self._counter), event))

    def pop(self) -> Event:
        """Remove and return the earliest event."""
        if not self._heap:
            raise SimulationError("pop from empty event queue")
        return heapq.heappop(self._heap)[2]

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise SimulationError("peek at empty event queue")
        return self._heap[0][2]

    def snapshot_events(self) -> list:
        """Queued events in pop order, non-destructively (checkpointing).

        Re-pushing the returned events into a fresh queue reproduces
        this queue's pop order exactly: the sort key is the same
        ``(time, insertion sequence)`` pair the heap orders by.
        """
        return [
            item[2]
            for item in sorted(self._heap, key=lambda item: item[:2])
        ]

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def drain_until(self, deadline: float) -> Iterator[Event]:
        """Pop events with ``time <= deadline`` in order.

        ``deadline`` is in the same clock as the queued event times —
        absolute simulated seconds for simulator-produced events (the
        queue itself is origin-agnostic; it only compares).
        """
        while self._heap and self._heap[0][0] <= deadline:
            yield self.pop()

    def drain(self) -> Iterator[Event]:
        """Pop everything in order."""
        while self._heap:
            yield self.pop()
