"""The environment registries: straggler models constructible by name.

The paper's premise is decoding under *arbitrary* straggler behaviour
(Sec. IV "as many scenarios as you can imagine"), and the related work
widens the space further — per-round random stragglers (Bitar et al.),
chronically slow machines (Sec. VIII-C's "enduring straggler").  This
module makes every such scenario a *named, parameterised family*, the
same move :mod:`repro.core.scheme` made for placements:

* one registry per environment layer — **delay**, **failure**,
  **compute**, **network**, **contention** — populated by the
  :func:`register_delay` / :func:`register_failure` /
  :func:`register_compute` / :func:`register_network` /
  :func:`register_contention` decorators (alias support included);
* :func:`make_delay_model` and friends — the construction entry points
  the spec engine, the CLI and library code share (``repro check``
  REG005 enforces this), with did-you-mean errors for typos;
* :func:`delay_model_from` etc. — coercers accepting a built model, a
  bare kind string or a ``{"kind": ..., **params}`` mapping, applied
  recursively for composite families (``persistent`` / ``diurnal`` /
  ``bursty`` / ``bernoulli`` / ``mixture`` name their sub-models the
  same way);
* :func:`model_spec_problems` — the arithmetic-only validation hook
  behind spec checking: signature-level problems (unknown kind, unknown
  or missing parameters, malformed nesting) without constructing
  anything;
* :func:`spec_of` / :func:`model_fingerprint` — canonical JSON-ready
  specs and content digests for registry-built models (provenance is
  recorded at construction), with a best-effort class/state fallback
  for models built directly.

Registry-built models are **bit-for-bit identical** to direct
construction: the factories below forward parameters verbatim, so the
delay/failure streams (and RNG consumption order) match exactly —
property-tested per family in ``tests/test_env.py`` and pinned by
``tests/golden/environments.json``.
"""

from __future__ import annotations

import dataclasses
import difflib
import hashlib
import inspect
import json
import weakref
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from ..simulation.cluster import ComputeModel
from ..simulation.contention import ContendedUploadModel
from ..simulation.heterogeneous import HeterogeneousComputeModel
from ..simulation.network import NetworkModel
from ..straggler.failures import (
    CompositeFailures,
    FailureModel,
    NoFailures,
    PermanentCrashes,
    TransientDropouts,
)
from ..straggler.models import (
    BernoulliStraggler,
    BurstyDelay,
    DelayModel,
    DiurnalDelay,
    ExponentialDelay,
    MixtureDelay,
    NoDelay,
    ParetoDelay,
    PersistentStragglers,
    ShiftedExponentialDelay,
)
from ..straggler.traces import DelayTrace, TraceReplayModel

#: the environment layers, in catalogue order.
LAYERS: Tuple[str, ...] = (
    "delay", "failure", "compute", "network", "contention"
)


@dataclasses.dataclass(frozen=True)
class ModelFamily:
    """One registered environment family: a named builder + metadata."""

    layer: str
    kind: str
    aliases: Tuple[str, ...]
    summary: str
    paper: str
    build: Callable[..., Any]
    #: parameter names whose values recursively name sub-models (shown
    #: in listings; validated recursively by :func:`model_spec_problems`).
    nested: Tuple[str, ...] = ()

    def parameters(self) -> Dict[str, Any]:
        """name → default (``inspect.Parameter.empty`` when required)."""
        return {
            name: p.default
            for name, p in inspect.signature(self.build).parameters.items()
            if p.kind
            in (p.POSITIONAL_OR_KEYWORD, p.KEYWORD_ONLY)
        }


#: layer → kind → family (five registries, same shape as
#: PLACEMENT_REGISTRY / SCHEME_REGISTRY / BACKEND_REGISTRY).
ENV_REGISTRY: Dict[str, Dict[str, ModelFamily]] = {
    layer: {} for layer in LAYERS
}

#: layer → accepted alternate spelling → canonical kind.
_ALIASES: Dict[str, Dict[str, str]] = {layer: {} for layer in LAYERS}

#: registry-built model → (layer, kind, raw params) for :func:`spec_of`.
#: Keyed weakly so the registry never pins model lifetimes.
_PROVENANCE: "weakref.WeakKeyDictionary[Any, Tuple[str, str, Dict[str, Any]]]" = (
    weakref.WeakKeyDictionary()
)


def _register(
    layer: str,
    kind: str,
    *,
    aliases: Sequence[str] = (),
    summary: str = "",
    paper: str = "",
    nested: Sequence[str] = (),
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    registry = ENV_REGISTRY[layer]

    def wrap(build: Callable[..., Any]) -> Callable[..., Any]:
        if kind in registry:
            raise ConfigurationError(
                f"{layer} model {kind!r} already registered"
            )
        registry[kind] = ModelFamily(
            layer=layer,
            kind=kind,
            aliases=tuple(aliases),
            summary=summary,
            paper=paper,
            build=build,
            nested=tuple(nested),
        )
        for alias in aliases:
            _ALIASES[layer][alias] = kind
        return build

    return wrap


def register_delay(kind: str, **meta: Any):
    """Decorator registering a delay-model factory under ``kind``."""
    return _register("delay", kind, **meta)


def register_failure(kind: str, **meta: Any):
    """Decorator registering a failure-model factory under ``kind``."""
    return _register("failure", kind, **meta)


def register_compute(kind: str, **meta: Any):
    """Decorator registering a compute-model factory under ``kind``."""
    return _register("compute", kind, **meta)


def register_network(kind: str, **meta: Any):
    """Decorator registering a network-model factory under ``kind``."""
    return _register("network", kind, **meta)


def register_contention(kind: str, **meta: Any):
    """Decorator registering a contention-model factory under ``kind``."""
    return _register("contention", kind, **meta)


def registered_models(layer: str) -> List[str]:
    """Sorted canonical kinds of ``layer`` (aliases excluded)."""
    if layer not in ENV_REGISTRY:
        raise ConfigurationError(
            f"unknown environment layer {layer!r} "
            f"(layers: {', '.join(LAYERS)})"
        )
    return sorted(ENV_REGISTRY[layer])


def unknown_model_message(layer: str, name: Any) -> str:
    """The did-you-mean error text for an unregistered model kind.

    Shared by runtime construction and the static spec checks, so
    ``repro check`` and ``repro run`` report typos identically
    (mirrors :func:`repro.core.scheme.unknown_placement_message`).
    """
    known = sorted(set(ENV_REGISTRY[layer]) | set(_ALIASES[layer]))
    close = difflib.get_close_matches(str(name), known, n=3, cutoff=0.5)
    hint = (
        " — did you mean " + " or ".join(repr(m) for m in close) + "?"
        if close
        else ""
    )
    return (
        f"unknown {layer} model {name!r}{hint} "
        f"(registered kinds: {', '.join(registered_models(layer))})"
    )


def resolve_model(layer: str, name: str) -> ModelFamily:
    """The family registered for ``name`` (canonical or alias)."""
    if layer not in ENV_REGISTRY:
        raise ConfigurationError(
            f"unknown environment layer {layer!r} "
            f"(layers: {', '.join(LAYERS)})"
        )
    if not isinstance(name, str):
        raise ConfigurationError(
            f"{layer} model kind must be a string, got {name!r}"
        )
    family = ENV_REGISTRY[layer].get(_ALIASES[layer].get(name, name))
    if family is None:
        raise ConfigurationError(unknown_model_message(layer, name))
    return family


def make_model(layer: str, kind: str, **params: Any) -> Any:
    """Construct the ``layer`` model of registered family ``kind``.

    The single construction entry point behind :func:`make_delay_model`
    and friends.  Unknown parameter names are rejected with the
    family's accepted signature; the built model's provenance
    ``(kind, params)`` is recorded so :func:`spec_of` /
    :func:`model_fingerprint` can reproduce the canonical spec.
    """
    family = resolve_model(layer, kind)
    try:
        model = family.build(**params)
    except TypeError as exc:
        raise ConfigurationError(
            f"invalid parameters for {layer} model {family.kind!r}: "
            f"{exc}; accepted: {', '.join(family.parameters())}"
        ) from exc
    if model is not None:
        try:
            _PROVENANCE[model] = (layer, family.kind, dict(params))
        except TypeError:  # pragma: no cover - non-weakref-able model
            pass
    return model


def make_delay_model(kind: str, **params: Any) -> DelayModel:
    """Construct the delay model of registered family ``kind``."""
    return make_model("delay", kind, **params)


def make_failure_model(kind: str, **params: Any) -> FailureModel:
    """Construct the failure model of registered family ``kind``."""
    return make_model("failure", kind, **params)


def make_compute_model(kind: str = "uniform", **params: Any):
    """Construct the compute model of registered family ``kind``."""
    return make_model("compute", kind, **params)


def make_network_model(kind: str = "uniform", **params: Any):
    """Construct the network model of registered family ``kind``."""
    return make_model("network", kind, **params)


def make_contention_model(kind: str, **params: Any):
    """Construct the contention model of registered family ``kind``
    (the ``none`` family yields ``None``: an uncontended link)."""
    return make_model("contention", kind, **params)


# ----------------------------------------------------------------------
# Spec coercion: model object | kind string | {"kind": ..., **params}.


def _model_from(layer: str, value: Any, *, default_kind: Optional[str] = None):
    if isinstance(value, str):
        return make_model(layer, value)
    if isinstance(value, Mapping):
        params = dict(value)
        kind = params.pop("kind", default_kind)
        if kind is None:
            raise ConfigurationError(
                f"{layer} spec needs a 'kind' key naming a registered "
                f"model (kinds: {', '.join(registered_models(layer))})"
            )
        return make_model(layer, kind, **params)
    raise ConfigurationError(
        f"cannot build a {layer} model from {value!r}; pass a kind "
        f"string, a {{'kind': ...}} mapping, or a model instance"
    )


def delay_model_from(value: Any) -> DelayModel:
    """Coerce ``value`` to a :class:`DelayModel`.

    Accepts a built model, a recorded :class:`DelayTrace` (wrapped in
    the replay adapter — the Fig. 11/12 record-once-replay-everywhere
    idiom), a kind string, or a ``{"kind": ...}`` mapping.
    """
    if isinstance(value, DelayModel):
        return value
    if isinstance(value, DelayTrace):
        model = TraceReplayModel(value)
        _PROVENANCE[model] = (
            "delay", "trace-replay", {"delays": value.delays.tolist()}
        )
        return model
    return _model_from("delay", value)


def failure_model_from(value: Any) -> FailureModel:
    """Coerce ``value`` to a :class:`FailureModel` (spec or instance)."""
    if isinstance(value, FailureModel):
        return value
    return _model_from("failure", value)


def compute_model_from(value: Any):
    """Coerce ``value`` to a compute model.

    Bare-parameter mappings (no ``kind`` key) build the ``uniform``
    family — the historical ``compute: {base: ..., per_partition: ...}``
    spec syntax.
    """
    if isinstance(value, (ComputeModel, HeterogeneousComputeModel)):
        return value
    return _model_from("compute", value, default_kind="uniform")


def network_model_from(value: Any):
    """Coerce ``value`` to a :class:`NetworkModel` (``kind`` defaults to
    ``uniform``, the historical bare-parameter spec syntax)."""
    if isinstance(value, NetworkModel):
        return value
    return _model_from("network", value, default_kind="uniform")


def contention_model_from(value: Any):
    """Coerce ``value`` to a contention model or ``None`` (no link
    sharing)."""
    if value is None or isinstance(value, ContendedUploadModel):
        return value
    return _model_from("contention", value)


# ----------------------------------------------------------------------
# Canonical specs + fingerprints.

_MODEL_TYPES = (
    DelayModel,
    FailureModel,
    ComputeModel,
    HeterogeneousComputeModel,
    NetworkModel,
    ContendedUploadModel,
)


def _canonical(value: Any) -> Any:
    """``value`` as canonical JSON-ready data (deterministic ordering)."""
    if isinstance(value, _MODEL_TYPES):
        return spec_of(value)
    if isinstance(value, Mapping):
        return {
            str(k): _canonical(v)
            for k, v in sorted(value.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(value, (frozenset, set)):
        return sorted(_canonical(v) for v in value)
    if isinstance(value, (list, tuple, range)):
        return [_canonical(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def spec_of(model: Any) -> Optional[Dict[str, Any]]:
    """The canonical ``{"kind": ..., **params}`` spec of ``model``.

    Registry-built models reproduce their construction spec exactly
    (nested sub-models recurse).  Models built directly fall back to a
    best-effort ``{"class": ..., **state}`` digest — stable, but not a
    spec the registry can rebuild.
    """
    if model is None:
        return None
    try:
        entry = _PROVENANCE.get(model)
    except TypeError:  # pragma: no cover - unhashable model
        entry = None
    if entry is not None:
        _, kind, params = entry
        spec = {"kind": kind}
        spec.update(_canonical(params))
        return spec
    if dataclasses.is_dataclass(model):
        state = {
            f.name: getattr(model, f.name)
            for f in dataclasses.fields(model)
        }
    else:
        state = {
            name.lstrip("_"): value
            for name, value in sorted(vars(model).items())
        }
    spec = {"class": type(model).__name__}
    spec.update(_canonical(state))
    return spec


def model_fingerprint(model: Any) -> str:
    """Content digest of ``model``'s canonical spec (sha256 hex)."""
    payload = json.dumps(spec_of(model), sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


# ----------------------------------------------------------------------
# Static validation (arithmetic-only, nothing constructed).


def model_spec_problems(layer: str, value: Any, *, section: str = "") -> List[str]:
    """Signature-level problems of one model spec (for static checks).

    Mirrors :func:`repro.core.scheme.placement_spec_problems`: unknown
    kinds get the same did-you-mean message runtime construction would
    raise; parameter names are checked against the factory signature;
    nested sub-model specs recurse.  Value-range constraints (negative
    means etc.) are construction-time concerns and not checked here.
    """
    where = section or f"{layer} spec"
    if isinstance(value, _MODEL_TYPES):
        return []
    if isinstance(value, str):
        kind, params = value, {}
    elif isinstance(value, Mapping):
        params = dict(value)
        kind = params.pop(
            "kind", "uniform" if layer in ("compute", "network") else None
        )
        if kind is None:
            return [
                f"{where} needs a 'kind' key naming a registered model "
                f"(kinds: {', '.join(registered_models(layer))})"
            ]
    else:
        return [
            f"{where} must be a kind string or a {{'kind': ...}} "
            f"mapping, got {value!r}"
        ]
    if not isinstance(kind, str):
        return [f"{where}: model kind must be a string, got {kind!r}"]
    family = ENV_REGISTRY[layer].get(_ALIASES[layer].get(kind, kind))
    if family is None:
        return [f"{where}: {unknown_model_message(layer, kind)}"]
    problems: List[str] = []
    accepted = family.parameters()
    for name in params:
        if name not in accepted:
            problems.append(
                f"{where}: {layer} model {family.kind!r} got unknown "
                f"parameter {name!r} (accepted: {', '.join(accepted)})"
            )
    for name, default in accepted.items():
        if default is inspect.Parameter.empty and name not in params:
            problems.append(
                f"{where}: {layer} model {family.kind!r} missing "
                f"required parameter {name!r}"
            )
    for name in family.nested:
        sub = params.get(name)
        if sub is None:
            continue
        sub_layer = "failure" if layer == "failure" else "delay"
        sub_section = f"{where}.{name}"
        if isinstance(sub, (list, tuple)):
            for i, entry in enumerate(sub):
                problems.extend(
                    model_spec_problems(
                        sub_layer, entry, section=f"{sub_section}[{i}]"
                    )
                )
        else:
            problems.extend(
                model_spec_problems(sub_layer, sub, section=sub_section)
            )
    return problems


# ----------------------------------------------------------------------
# Registered delay families.  This module is the sanctioned
# construction layer, mirroring core/scheme.py for placements — the
# direct constructor calls below are exactly what REG005 steers the
# rest of the library through here for.


@register_delay(
    "none",
    aliases=("no-delay", "ideal"),
    summary="the ideal cluster — nobody straggles",
    paper="baseline in every figure",
)
def _delay_none() -> DelayModel:
    return NoDelay()


@register_delay(
    "exponential",
    aliases=("exp",),
    summary=(
        "exponential delay on a chosen worker subset (affected=None "
        "hits everyone)"
    ),
    paper="Sec. VIII-B / Fig. 11 (means 1.5 s and 3.0 s)",
)
def _delay_exponential(
    mean: float = 1.0, affected: Optional[Sequence[int]] = None
) -> DelayModel:
    return ExponentialDelay(mean, affected=affected)


@register_delay(
    "shifted-exponential",
    aliases=("shifted_exponential", "shifted-exp"),
    summary="constant floor plus exponential tail — the classic latency model",
    paper="straggler literature staple (e.g. Lee et al.)",
)
def _delay_shifted(shift: float, mean: float) -> DelayModel:
    return ShiftedExponentialDelay(shift, mean)


@register_delay(
    "pareto",
    summary="heavy-tailed delays scale*Pareto(alpha) for tail-weight ablations",
    paper="tail-sensitivity ablations",
)
def _delay_pareto(alpha: float, scale: float) -> DelayModel:
    return ParetoDelay(alpha, scale)


@register_delay(
    "bernoulli",
    summary=(
        "each worker independently straggles with probability p per "
        "step, drawing from the nested delay model"
    ),
    paper="stochastic gradient coding (Bitar et al., arXiv 1905.05383)",
    nested=("delay",),
)
def _delay_bernoulli(probability: float, delay: Any) -> DelayModel:
    return BernoulliStraggler(probability, delay_model_from(delay))


@register_delay(
    "persistent",
    summary=(
        "a fixed set of chronically slow workers (the 'enduring "
        "straggler'); mean=/background_mean= are exponential sugar"
    ),
    paper="Sec. VIII-C (the 99.6% enduring-straggler effect)",
    nested=("delay", "background"),
)
def _delay_persistent(
    stragglers: Sequence[int],
    delay: Any = None,
    background: Any = None,
    mean: Optional[float] = None,
    background_mean: Optional[float] = None,
) -> DelayModel:
    if (delay is None) == (mean is None):
        raise ConfigurationError(
            "persistent delay needs exactly one of delay= (a nested "
            "delay spec) or mean= (exponential sugar)"
        )
    if background is not None and background_mean is not None:
        raise ConfigurationError(
            "persistent delay takes background= (a nested delay spec) "
            "or background_mean= (exponential sugar), not both"
        )
    slow = delay_model_from(delay) if delay is not None else ExponentialDelay(mean)
    fast = None
    if background is not None:
        fast = delay_model_from(background)
    elif background_mean is not None:
        fast = ExponentialDelay(background_mean)
    return PersistentStragglers(stragglers, slow, background_delay=fast)


@register_delay(
    "diurnal",
    summary=(
        "nested base delay scaled by a sinusoidal load wave "
        "1 + amplitude*sin(2*pi*step/period)"
    ),
    paper="datacenter load cycles (beyond-paper ablation)",
    nested=("base",),
)
def _delay_diurnal(
    base: Any, period_steps: int, amplitude: float = 0.5
) -> DelayModel:
    return DiurnalDelay(delay_model_from(base), period_steps, amplitude)


@register_delay(
    "bursty",
    summary=(
        "two-state Gilbert model: calm <-> bursty per worker, burst "
        "delays from the nested model"
    ),
    paper="noisy-neighbour on/off pattern (beyond-paper ablation)",
    nested=("burst",),
)
def _delay_bursty(
    burst: Any, enter_burst: float = 0.05, exit_burst: float = 0.25
) -> DelayModel:
    return BurstyDelay(
        delay_model_from(burst), enter_burst=enter_burst, exit_burst=exit_burst
    )


@register_delay(
    "mixture",
    summary="per-step mixture: with probability weights[k] use models[k]",
    paper="scenario blending (Sec. IV's 'any scenario' premise)",
    nested=("models",),
)
def _delay_mixture(models: Sequence[Any], weights: Sequence[float]) -> DelayModel:
    return MixtureDelay([delay_model_from(m) for m in models], weights)


@register_delay(
    "trace-replay",
    aliases=("trace",),
    summary=(
        "replay a recorded DelayTrace (path= to a JSON trace file, or "
        "delays= an inline steps x workers table)"
    ),
    paper="Fig. 11/12 controlled-seed methodology",
)
def _delay_trace(
    path: Optional[str] = None,
    delays: Optional[Sequence[Sequence[float]]] = None,
) -> DelayModel:
    if (path is None) == (delays is None):
        raise ConfigurationError(
            "trace-replay delay needs exactly one of path= (a JSON "
            "trace file) or delays= (an inline steps x workers table)"
        )
    trace = (
        DelayTrace.load(path)
        if path is not None
        else DelayTrace(np.asarray(delays, dtype=float))
    )
    return TraceReplayModel(trace)


# ----------------------------------------------------------------------
# Registered failure families.


@register_failure(
    "none",
    aliases=("no-failures",),
    summary="everything always arrives (the default)",
    paper="baseline",
)
def _failure_none() -> FailureModel:
    return NoFailures()


@register_failure(
    "permanent-crashes",
    aliases=("crashes", "permanent_crashes"),
    summary="listed workers crash at a given step and never return",
    paper="arbitrary ignorance keeps w below the live count (Sec. IV)",
)
def _failure_crashes(
    crashed_workers: Sequence[int], at_step: int = 0
) -> FailureModel:
    return PermanentCrashes(crashed_workers, at_step=at_step)


@register_failure(
    "transient-dropouts",
    aliases=("dropouts", "transient_dropouts"),
    summary="each upload independently lost with probability p",
    paper="packet loss / preemption / OOM-restart",
)
def _failure_dropouts(probability: float) -> FailureModel:
    return TransientDropouts(probability)


@register_failure(
    "composite",
    summary="alive only if alive under every nested failure model",
    paper="scenario composition",
    nested=("models",),
)
def _failure_composite(models: Sequence[Any]) -> FailureModel:
    return CompositeFailures([failure_model_from(m) for m in models])


# ----------------------------------------------------------------------
# Registered compute / network / contention families.


@register_compute(
    "uniform",
    summary="base + c*per_partition seconds per worker per step",
    paper="Sec. VIII-B step-time accounting",
)
def _compute_uniform(
    base: float = 0.05, per_partition: float = 0.10
) -> ComputeModel:
    return ComputeModel(base=base, per_partition=per_partition)


@register_compute(
    "heterogeneous",
    summary=(
        "uniform cost scaled by per-worker speed factors (pair with "
        "HeterogeneousDelayAdapter for the homogeneous simulator)"
    ),
    paper="heterogeneity-aware GC discussion (related work [21])",
)
def _compute_heterogeneous(
    speed_factors: Mapping[Any, float],
    base: float = 0.05,
    per_partition: float = 0.10,
) -> HeterogeneousComputeModel:
    factors = {int(w): float(f) for w, f in speed_factors.items()}
    return HeterogeneousComputeModel(
        ComputeModel(base=base, per_partition=per_partition), factors
    )


@register_network(
    "uniform",
    summary="latency + size/bandwidth per message (10 Gbit/s default)",
    paper="Fig. 12(c): 'most time is spent on uploading gradients'",
)
def _network_uniform(
    latency: float = 0.001,
    bandwidth: float = 1.25e9,
    bytes_per_element: int = 4,
) -> NetworkModel:
    return NetworkModel(
        latency=latency,
        bandwidth=bandwidth,
        bytes_per_element=bytes_per_element,
    )


@register_network(
    "ideal",
    summary="zero latency, infinite bandwidth — isolates compute stragglers",
    paper="compute-only ablations",
)
def _network_ideal() -> NetworkModel:
    return NetworkModel(latency=0.0, bandwidth=float("inf"))


@register_contention(
    "none",
    summary="uncontended uplink: transfers are independent (the default)",
    paper="baseline",
)
def _contention_none() -> None:
    return None


@register_contention(
    "fair-share",
    aliases=("fair_share", "shared-link"),
    summary=(
        "uploads max-min fair-share one master ingress link of the "
        "given capacity"
    ),
    paper="Sec. VIII-C upload-bound inference",
)
def _contention_fair_share(
    capacity_bytes_per_s: float, bytes_per_element: int = 4
) -> ContendedUploadModel:
    return ContendedUploadModel(
        capacity_bytes_per_s, bytes_per_element=bytes_per_element
    )
