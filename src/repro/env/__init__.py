"""Environment layer: named straggler scenarios behind one registry.

Mirrors :mod:`repro.core.scheme`'s placement registry for the
environment side of an experiment — see :mod:`repro.env.registry` for
the catalogue machinery and :mod:`repro.env.environment` for the
composite :class:`Environment` object.  ``repro environments`` lists
the registered families; ``docs/environments.md`` is the catalogue.
"""

from .environment import Environment
from .registry import (
    ENV_REGISTRY,
    LAYERS,
    ModelFamily,
    compute_model_from,
    contention_model_from,
    delay_model_from,
    failure_model_from,
    make_compute_model,
    make_contention_model,
    make_delay_model,
    make_failure_model,
    make_model,
    make_network_model,
    model_fingerprint,
    model_spec_problems,
    network_model_from,
    register_compute,
    register_contention,
    register_delay,
    register_failure,
    register_network,
    registered_models,
    resolve_model,
    spec_of,
    unknown_model_message,
)

__all__ = [
    "ENV_REGISTRY",
    "Environment",
    "LAYERS",
    "ModelFamily",
    "compute_model_from",
    "contention_model_from",
    "delay_model_from",
    "failure_model_from",
    "make_compute_model",
    "make_contention_model",
    "make_delay_model",
    "make_failure_model",
    "make_model",
    "make_network_model",
    "model_fingerprint",
    "model_spec_problems",
    "network_model_from",
    "register_compute",
    "register_contention",
    "register_delay",
    "register_failure",
    "register_network",
    "registered_models",
    "resolve_model",
    "spec_of",
    "unknown_model_message",
]
