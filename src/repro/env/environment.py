"""The :class:`Environment` composite: one object per straggler scenario.

An experiment's environment is five coordinated layers — delay,
failure, compute, network, contention — that before this module every
caller wired by hand.  :class:`Environment` bundles them into one
describable, content-fingerprintable, resettable unit:

* build it from spec sections (``Environment.from_sections``), from
  already-built models, or any mix — each layer accepts a model
  instance, a kind string, or a ``{"kind": ..., **params}`` mapping;
* :meth:`describe` renders the catalogue view, :meth:`fingerprint`
  digests the canonical spec (the sweep-cache key discipline of
  :meth:`repro.core.scheme.PlacementScheme.fingerprint`);
* :meth:`reset` rewinds stateful delay/failure models so a replay
  reproduces the run;
* :meth:`simulator` binds the environment to a
  :class:`~repro.simulation.ClusterSimulator` in one call.

``Environment.spec_problems`` is the arithmetic-only validation hook:
signature-level problems of every section without constructing
anything, with the same did-you-mean messages construction would raise.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Dict, List, Mapping, Optional

import numpy as np

from ..exceptions import ConfigurationError
from ..simulation.cluster import ClusterSimulator
from .registry import (
    LAYERS,
    compute_model_from,
    contention_model_from,
    delay_model_from,
    failure_model_from,
    model_spec_problems,
    network_model_from,
    spec_of,
)


class Environment:
    """Delay + failure + compute + network + contention, as one unit.

    Every layer defaults to its ideal/neutral family (no delay, no
    failures, uniform compute, uniform network, uncontended link), so
    ``Environment()`` is the clean cluster and each section opts into
    one kind of trouble.
    """

    def __init__(
        self,
        *,
        delay: Any = None,
        failure: Any = None,
        compute: Any = None,
        network: Any = None,
        contention: Any = None,
    ):
        self._delay = delay_model_from(delay if delay is not None else "none")
        self._failure = failure_model_from(
            failure if failure is not None else "none"
        )
        self._compute = compute_model_from(
            compute if compute is not None else "uniform"
        )
        self._network = network_model_from(
            network if network is not None else "uniform"
        )
        self._contention = contention_model_from(contention)

    # -- layers ---------------------------------------------------------
    @property
    def delay(self):
        return self._delay

    @property
    def failure(self):
        return self._failure

    @property
    def compute(self):
        return self._compute

    @property
    def network(self):
        return self._network

    @property
    def contention(self):
        return self._contention

    # -- construction helpers ------------------------------------------
    @classmethod
    def from_sections(
        cls, sections: Mapping[str, Any], *, where: str = "environment"
    ) -> "Environment":
        """Build from a ``{layer: spec}`` mapping (unknown layers are
        rejected with the accepted layer names)."""
        unknown = sorted(set(sections) - set(LAYERS))
        if unknown:
            raise ConfigurationError(
                f"{where} has unknown sections "
                f"{', '.join(map(repr, unknown))} "
                f"(layers: {', '.join(LAYERS)})"
            )
        return cls(**{layer: sections.get(layer) for layer in LAYERS})

    # -- the protocol ---------------------------------------------------
    def reset(self) -> None:
        """Rewind stateful delay/failure models (bursty state etc.) so
        a replay under a restored RNG reproduces the run."""
        self._delay.reset()
        self._failure.reset()

    def spec(self) -> Dict[str, Any]:
        """Canonical ``{layer: spec}`` mapping of every layer.

        Registry-built layers reproduce their construction spec
        (``Environment.from_sections(env.spec())`` rebuilds an
        equivalent environment); directly-built models fall back to a
        stable class/state digest.
        """
        return {
            "delay": spec_of(self._delay),
            "failure": spec_of(self._failure),
            "compute": spec_of(self._compute),
            "network": spec_of(self._network),
            "contention": spec_of(self._contention),
        }

    def fingerprint(self) -> str:
        """Content digest of the canonical spec (sha256 hex) — the
        cache-key discipline of placement fingerprints, for sweeps that
        key results by environment."""
        payload = json.dumps(self.spec(), sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        """Human-readable per-layer description."""
        lines = ["Environment:"]
        for layer, section in self.spec().items():
            if section is None:
                lines.append(f"  {layer}: none")
            else:
                rendered = ", ".join(
                    f"{k}={v}" for k, v in section.items() if k != "kind"
                )
                label = section.get("kind", section.get("class", "?"))
                lines.append(
                    f"  {layer}: {label}" + (f" ({rendered})" if rendered else "")
                )
        return "\n".join(lines)

    def simulator(
        self,
        num_workers: int,
        partitions_per_worker: int,
        *,
        gradient_elements: int = 10_000,
        rng: Optional[np.random.Generator] = None,
        tracer: Any = None,
    ) -> ClusterSimulator:
        """A :class:`ClusterSimulator` running in this environment."""
        return ClusterSimulator(
            num_workers=num_workers,
            partitions_per_worker=partitions_per_worker,
            environment=self,
            gradient_elements=gradient_elements,
            rng=rng,
            tracer=tracer,
        )

    # -- static hooks ---------------------------------------------------
    @staticmethod
    def spec_problems(
        sections: Mapping[str, Any], *, where: str = "environment"
    ) -> List[str]:
        """Arithmetic-only problems of a ``{layer: spec}`` mapping.

        Nothing is constructed; unknown kinds/parameters return the
        same did-you-mean messages construction would raise.
        """
        if not isinstance(sections, Mapping):
            return [f"{where} must be a mapping, got {sections!r}"]
        problems = [
            f"{where} has unknown section {name!r} "
            f"(layers: {', '.join(LAYERS)})"
            for name in sorted(set(sections) - set(LAYERS))
        ]
        for layer in LAYERS:
            section = sections.get(layer)
            if section is None:
                continue
            problems.extend(
                model_spec_problems(
                    layer, section, section=f"{where}.{layer}"
                )
            )
        return problems

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Environment(fingerprint={self.fingerprint()[:12]}...)"
