"""repro — a full reproduction of "On Arbitrary Ignorance of Stragglers
with Gradient Coding" (IS-GC, ICDCS 2023).

Public API tour
---------------
Placements (who stores which dataset partition) — built by family name
through the placement registry::

    from repro import make_placement, registered_placements
    placement = make_placement("cr", num_workers=8, partitions_per_worker=2)

Decoding (the master's maximal partial-sum recovery)::

    from repro import decoder_for
    decoder = decoder_for(CyclicRepetition(8, 2))
    result = decoder.decode([0, 2, 5, 6])       # any subset of workers

Gradient coding (worker payloads → recovered gradients)::

    from repro import SummationCode, ClassicGradientCode

End-to-end simulated training::

    from repro import (DistributedTrainer, ISGCStrategy, ClusterSimulator,
                       ExponentialDelay, SGD)

Straggler environments (delay/failure/compute/network/contention
models, built by family name through the environment registry)::

    from repro import Environment, make_delay_model
    delay = make_delay_model("pareto", alpha=2.5, scale=0.3)
    env = Environment(delay={"kind": "exponential", "mean": 1.5})
    sim = env.simulator(num_workers=8, partitions_per_worker=2)

Declarative experiments (one engine, pluggable backends/schemes)::

    from repro import ExperimentSpec, run_spec
    summary = run_spec(ExperimentSpec(
        name="demo", scheme="is-gc-cr", num_workers=4,
        partitions_per_worker=2, wait_for=2,
    ))

Multi-job serving (one coordinator, many concurrent specs)::

    from repro import Coordinator, run_jobs
    reports = run_jobs([spec_a, spec_b], mode="deterministic")

See ``examples/quickstart.py`` for a runnable walk-through,
``docs/architecture.md`` for the engine layering, and
``EXPERIMENTS.md`` for the paper-figure reproductions.
"""

from .exceptions import (
    AdmissionError,
    CodingError,
    ConfigurationError,
    DecodeError,
    ObservabilityError,
    PlacementError,
    ReproError,
    ServeError,
    SimulationError,
    SubmissionRejectedError,
    TrainingError,
)
from .types import DecodeResult, StepRecord, TrainingSummary
from .core import (
    CRDecoder,
    ExplicitPlacement,
    CyclicRepetition,
    Decoder,
    DescentBound,
    ExactDecoder,
    FRDecoder,
    FractionalRepetition,
    HRDecoder,
    HybridRepetition,
    PLACEMENT_REGISTRY,
    Placement,
    PlacementScheme,
    SummationCode,
    alpha_lower_bound,
    alpha_upper_bound,
    as_placement,
    conflict_graph,
    decoder_for,
    make_placement,
    placement_scheme,
    rank_placements,
    recommend_placement,
    recovered_partitions_bounds,
    register_placement,
    registered_placements,
    scheme_for,
)
from .codes import (
    ClassicGradientCode,
    CommEfficientGC,
    LeastSquaresDecoder,
    StochasticSumDecoder,
)
from .straggler import (
    BernoulliStraggler,
    EstimatingWaitPolicy,
    LatencyEstimator,
    PermanentCrashes,
    TransientDropouts,
    DelayModel,
    DelayTrace,
    ExponentialDelay,
    MixtureDelay,
    NoDelay,
    ParetoDelay,
    PersistentStragglers,
    ShiftedExponentialDelay,
    TraceReplayModel,
)
from .simulation import (
    AdaptiveWaitK,
    BestEffortWaitForK,
    ContendedUploadModel,
    ClusterSimulator,
    ComputeModel,
    DeadlinePolicy,
    NetworkModel,
    WaitForAll,
    WaitForK,
    WaitPolicy,
)
from .training import (
    AsyncSGDTrainer,
    ClassicGCStrategy,
    DistributedTrainer,
    ISGCStrategy,
    ISSGDStrategy,
    LinearRegressionModel,
    LogisticRegressionModel,
    MLPClassifier,
    SGD,
    SoftmaxRegressionModel,
    SyncSGDStrategy,
    build_batch_streams,
    make_cifar_like,
    make_classification,
    make_regression,
    partition_dataset,
)
from .env import (
    ENV_REGISTRY,
    Environment,
    make_compute_model,
    make_contention_model,
    make_delay_model,
    make_failure_model,
    make_network_model,
    model_fingerprint,
    register_compute,
    register_contention,
    register_delay,
    register_failure,
    register_network,
    registered_models,
    spec_of,
)
from .analysis import monte_carlo_recovery, recovery_curve, summarize_trials
from .engine import (
    EngineState,
    ExperimentSpec,
    RoundEngine,
    RunReport,
    build_engine,
    build_run_report,
    make_strategy,
    register_backend,
    register_scheme,
    run_spec,
)
from .parallel import DecodeCache, ProcessExecutor, SerialExecutor
from .runtime import SimulatedRuntime
from .obs import (
    MetricsRegistry,
    RoundTrace,
    RoundTracer,
    TraceStreamWriter,
    aggregate_traces,
    read_traces,
    write_traces,
)
from .serve import (
    Coordinator,
    CoordinatorClient,
    JobCancelledError,
    JobFailedError,
    JobHandle,
    JobState,
    PoolStats,
    SchedulingClass,
    ServeMailbox,
    WorkerPool,
    run_jobs,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ReproError",
    "ConfigurationError",
    "PlacementError",
    "DecodeError",
    "CodingError",
    "SimulationError",
    "TrainingError",
    "ObservabilityError",
    "ServeError",
    "AdmissionError",
    "SubmissionRejectedError",
    # types
    "DecodeResult",
    "StepRecord",
    "TrainingSummary",
    # core
    "Placement",
    "FractionalRepetition",
    "CyclicRepetition",
    "HybridRepetition",
    "conflict_graph",
    "PlacementScheme",
    "PLACEMENT_REGISTRY",
    "register_placement",
    "registered_placements",
    "placement_scheme",
    "make_placement",
    "as_placement",
    "scheme_for",
    "Decoder",
    "decoder_for",
    "FRDecoder",
    "CRDecoder",
    "HRDecoder",
    "ExactDecoder",
    "SummationCode",
    "DescentBound",
    "alpha_lower_bound",
    "alpha_upper_bound",
    "recovered_partitions_bounds",
    # codes
    "ClassicGradientCode",
    # straggler
    "DelayModel",
    "NoDelay",
    "ExponentialDelay",
    "ShiftedExponentialDelay",
    "ParetoDelay",
    "BernoulliStraggler",
    "PersistentStragglers",
    "MixtureDelay",
    "DelayTrace",
    "TraceReplayModel",
    # simulation
    "ClusterSimulator",
    "ComputeModel",
    "NetworkModel",
    "WaitPolicy",
    "WaitForK",
    "WaitForAll",
    "DeadlinePolicy",
    "AdaptiveWaitK",
    # training
    "SGD",
    "LinearRegressionModel",
    "LogisticRegressionModel",
    "SoftmaxRegressionModel",
    "MLPClassifier",
    "make_regression",
    "make_classification",
    "make_cifar_like",
    "partition_dataset",
    "build_batch_streams",
    "SyncSGDStrategy",
    "ISSGDStrategy",
    "ClassicGCStrategy",
    "ISGCStrategy",
    "DistributedTrainer",
    # environment registry
    "ENV_REGISTRY",
    "Environment",
    "make_delay_model",
    "make_failure_model",
    "make_compute_model",
    "make_network_model",
    "make_contention_model",
    "register_delay",
    "register_failure",
    "register_compute",
    "register_network",
    "register_contention",
    "registered_models",
    "spec_of",
    "model_fingerprint",
    # analysis
    "monte_carlo_recovery",
    "recovery_curve",
    "summarize_trials",
    # extensions
    "ExplicitPlacement",
    "rank_placements",
    "recommend_placement",
    "CommEfficientGC",
    "LeastSquaresDecoder",
    "StochasticSumDecoder",
    "LatencyEstimator",
    "EstimatingWaitPolicy",
    "PermanentCrashes",
    "TransientDropouts",
    "BestEffortWaitForK",
    "ContendedUploadModel",
    "AsyncSGDTrainer",
    "SimulatedRuntime",
    # engine
    "RoundEngine",
    "EngineState",
    "RunReport",
    "build_run_report",
    "ExperimentSpec",
    "build_engine",
    "run_spec",
    "make_strategy",
    "register_scheme",
    "register_backend",
    # parallel execution
    "DecodeCache",
    "ProcessExecutor",
    "SerialExecutor",
    # observability
    "MetricsRegistry",
    "RoundTrace",
    "RoundTracer",
    "TraceStreamWriter",
    "aggregate_traces",
    "read_traces",
    "write_traces",
    # serving
    "Coordinator",
    "run_jobs",
    "JobState",
    "JobHandle",
    "JobFailedError",
    "JobCancelledError",
    "SchedulingClass",
    "WorkerPool",
    "PoolStats",
    "ServeMailbox",
    "CoordinatorClient",
    "__version__",
]
