"""Straggler delay models.

The paper simulates stragglers by adding a random delay (exponential,
parameterised from real cloud measurements) before a worker's upload
(Sec. VIII-B), and observes an "enduring straggler" effect in the cloud
runs (Sec. VIII-C).  This module provides those models plus common
alternatives used in the straggler literature, all behind one interface:

``DelayModel.sample(worker, step, rng) -> float`` — extra seconds of
delay for ``worker`` at ``step``.

Models take no global state; randomness flows through the caller's
:class:`numpy.random.Generator` so experiments are reproducible and
schemes can be compared on *identical* delay realisations.
"""

from __future__ import annotations

import abc
from collections.abc import Iterable, Sequence
from typing import FrozenSet

import numpy as np

from ..exceptions import ConfigurationError


class DelayModel(abc.ABC):
    """Base class: per-(worker, step) additive delay in seconds."""

    @abc.abstractmethod
    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        """Extra delay for ``worker`` at ``step`` (non-negative seconds)."""

    def reset(self) -> None:
        """Forget any internal state so a replay reproduces the run.

        The built-in models are stateless (randomness flows through the
        caller's RNG), so the default is a no-op; stateful subclasses
        must override.  Called by :meth:`ClusterSimulator.reset`.
        """

    def snapshot_state(self) -> dict:
        """JSON-safe mutable state (checkpointing).

        Mirrors :meth:`reset`: the default is stateless (``{}``);
        stateful subclasses override, and wrapper models recurse into
        their inner models.
        """
        return {}

    def restore_state(self, state) -> None:
        """Restore state captured by :meth:`snapshot_state`."""

    def sample_round(
        self, workers: Sequence[int], step: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Delays for a whole round as an array aligned with ``workers``.

        Contract: consumes ``rng`` exactly as per-worker :meth:`sample`
        calls in ``workers`` order would — bit-for-bit.  Vectorized
        overrides (exponential & co.) preserve this because numpy's
        ``Generator`` fills a size-``k`` request by applying the scalar
        routine ``k`` times, so batched and looped simulation produce
        identical delay streams.
        """
        return np.array(
            [self.sample(w, step, rng) for w in workers], dtype=float
        )

    def sample_all(
        self, workers: Sequence[int], step: int, rng: np.random.Generator
    ) -> dict[int, float]:
        """Delays for a whole round, keyed by worker.

        Shim over :meth:`sample_round` kept for dict-shaped callers.
        """
        ordered = list(workers)
        round_delays = self.sample_round(ordered, step, rng)
        return {w: float(d) for w, d in zip(ordered, round_delays)}


class NoDelay(DelayModel):
    """The ideal cluster: nobody straggles."""

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        return 0.0

    def sample_round(
        self, workers: Sequence[int], step: int, rng: np.random.Generator
    ) -> np.ndarray:
        return np.zeros(len(list(workers)))


class ExponentialDelay(DelayModel):
    """Exponential delay on a chosen subset of workers (paper, Fig. 11).

    ``affected`` selects which workers can straggle (the paper injects
    delays on 12 or on all 24 of its workers); ``None`` affects all.
    """

    def __init__(self, mean: float, affected: Iterable[int] | None = None):
        if mean < 0:
            raise ConfigurationError(f"mean delay must be >= 0, got {mean}")
        self._mean = float(mean)
        self._affected: FrozenSet[int] | None = (
            frozenset(affected) if affected is not None else None
        )

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def affected(self) -> FrozenSet[int] | None:
        return self._affected

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        if self._affected is not None and worker not in self._affected:
            return 0.0
        if self._mean == 0.0:
            return 0.0
        return float(rng.exponential(self._mean))

    def sample_round(
        self, workers: Sequence[int], step: int, rng: np.random.Generator
    ) -> np.ndarray:
        ordered = list(workers)
        out = np.zeros(len(ordered))
        if self._mean == 0.0:
            return out
        if self._affected is None:
            hit = np.arange(len(ordered))
        else:
            hit = np.array(
                [i for i, w in enumerate(ordered) if w in self._affected],
                dtype=int,
            )
        if hit.size:
            out[hit] = rng.exponential(self._mean, size=hit.size)
        return out


class ShiftedExponentialDelay(DelayModel):
    """Constant floor plus exponential tail — the classic latency model."""

    def __init__(self, shift: float, mean: float):
        if shift < 0 or mean < 0:
            raise ConfigurationError(
                f"shift and mean must be >= 0, got shift={shift}, mean={mean}"
            )
        self._shift = float(shift)
        self._mean = float(mean)

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        tail = float(rng.exponential(self._mean)) if self._mean > 0 else 0.0
        return self._shift + tail

    def sample_round(
        self, workers: Sequence[int], step: int, rng: np.random.Generator
    ) -> np.ndarray:
        count = len(list(workers))
        out = np.full(count, self._shift)
        if self._mean > 0 and count:
            out += rng.exponential(self._mean, size=count)
        return out


class ParetoDelay(DelayModel):
    """Heavy-tailed delays: ``scale · (Pareto(alpha))`` seconds.

    Used by the ablation benches to probe sensitivity to tail weight.
    """

    def __init__(self, alpha: float, scale: float):
        if alpha <= 0 or scale < 0:
            raise ConfigurationError(
                f"need alpha > 0 and scale >= 0, got alpha={alpha}, scale={scale}"
            )
        self._alpha = float(alpha)
        self._scale = float(scale)

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        return self._scale * float(rng.pareto(self._alpha))

    def sample_round(
        self, workers: Sequence[int], step: int, rng: np.random.Generator
    ) -> np.ndarray:
        count = len(list(workers))
        if not count:
            return np.zeros(0)
        return self._scale * rng.pareto(self._alpha, size=count)


class BernoulliStraggler(DelayModel):
    """Each worker independently straggles with probability ``p`` per step.

    When it does, the delay is drawn from ``delay_model``; otherwise 0.
    """

    def __init__(self, probability: float, delay_model: DelayModel):
        if not 0.0 <= probability <= 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability}"
            )
        self._p = float(probability)
        self._inner = delay_model

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        if rng.random() >= self._p:
            return 0.0
        return self._inner.sample(worker, step, rng)

    def reset(self) -> None:
        self._inner.reset()

    def snapshot_state(self) -> dict:
        return {"inner": self._inner.snapshot_state()}

    def restore_state(self, state) -> None:
        self._inner.restore_state(state["inner"])


class PersistentStragglers(DelayModel):
    """A fixed set of chronically slow workers (the "enduring straggler").

    Reproduces the Sec. VIII-C observation that a persistently slow
    worker makes IS-GC's recovered fraction *higher* than the i.i.d.
    expectation (the same worker is always the one ignored).
    """

    def __init__(
        self,
        straggler_workers: Iterable[int],
        straggler_delay: DelayModel,
        background_delay: DelayModel | None = None,
    ):
        self._stragglers = frozenset(straggler_workers)
        self._slow = straggler_delay
        self._fast = background_delay if background_delay is not None else NoDelay()

    @property
    def straggler_workers(self) -> FrozenSet[int]:
        return self._stragglers

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        if worker in self._stragglers:
            return self._slow.sample(worker, step, rng)
        return self._fast.sample(worker, step, rng)

    def reset(self) -> None:
        self._slow.reset()
        self._fast.reset()

    def snapshot_state(self) -> dict:
        return {
            "slow": self._slow.snapshot_state(),
            "fast": self._fast.snapshot_state(),
        }

    def restore_state(self, state) -> None:
        self._slow.restore_state(state["slow"])
        self._fast.restore_state(state["fast"])


class DiurnalDelay(DelayModel):
    """Load-dependent delays following a daily (or any-period) cycle.

    Cloud measurements show straggling intensity tracks datacenter
    load; this model scales a base delay by
    ``1 + amplitude · sin(2π · step / period)`` (clamped at 0), so
    experiments can probe schedulers against predictable load waves.
    """

    def __init__(self, base: DelayModel, period_steps: int, amplitude: float = 0.5):
        if period_steps <= 0:
            raise ConfigurationError(
                f"period_steps must be positive, got {period_steps}"
            )
        if amplitude < 0:
            raise ConfigurationError(
                f"amplitude must be >= 0, got {amplitude}"
            )
        self._base = base
        self._period = period_steps
        self._amplitude = amplitude

    def scale_at(self, step: int) -> float:
        """The sinusoidal load multiplier at ``step`` (clamped at 0)."""
        phase = 2.0 * np.pi * (step % self._period) / self._period
        return max(0.0, 1.0 + self._amplitude * np.sin(phase))

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        return self.scale_at(step) * self._base.sample(worker, step, rng)

    def sample_round(
        self, workers: Sequence[int], step: int, rng: np.random.Generator
    ) -> np.ndarray:
        return self.scale_at(step) * self._base.sample_round(workers, step, rng)

    def reset(self) -> None:
        self._base.reset()

    def snapshot_state(self) -> dict:
        return {"base": self._base.snapshot_state()}

    def restore_state(self, state) -> None:
        self._base.restore_state(state["base"])


class BurstyDelay(DelayModel):
    """Two-state Markov (Gilbert) model: calm ↔ bursty per worker.

    Each worker independently alternates between a calm state (no extra
    delay) and a burst state (delays from ``burst_model``), with the
    given per-step transition probabilities — the on/off pattern of
    co-located noisy neighbours.

    State is per-instance; :meth:`reset` returns every worker to the
    calm state, so a reset simulator replay reproduces the run (pair
    it with the same rng seed, or record a
    :class:`~repro.straggler.DelayTrace`).
    """

    def __init__(
        self,
        burst_model: DelayModel,
        enter_burst: float = 0.05,
        exit_burst: float = 0.25,
    ):
        for name, p in (("enter_burst", enter_burst), ("exit_burst", exit_burst)):
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        self._burst = burst_model
        self._enter = enter_burst
        self._exit = exit_burst
        self._in_burst: dict[int, bool] = {}

    def in_burst(self, worker: int) -> bool:
        """Whether ``worker`` is currently in the burst state."""
        return self._in_burst.get(worker, False)

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        bursting = self._in_burst.get(worker, False)
        if bursting:
            if rng.random() < self._exit:
                bursting = False
        else:
            if rng.random() < self._enter:
                bursting = True
        self._in_burst[worker] = bursting
        if not bursting:
            return 0.0
        return self._burst.sample(worker, step, rng)

    def reset(self) -> None:
        """Return every worker to the calm state."""
        self._in_burst.clear()
        self._burst.reset()

    def snapshot_state(self) -> dict:
        # JSON object keys are strings; worker ids round-trip via str().
        return {
            "in_burst": {
                str(worker): bursting
                for worker, bursting in sorted(self._in_burst.items())
            },
            "burst": self._burst.snapshot_state(),
        }

    def restore_state(self, state) -> None:
        self._in_burst = {
            int(worker): bool(bursting)
            for worker, bursting in state["in_burst"].items()
        }
        self._burst.restore_state(state["burst"])


class MixtureDelay(DelayModel):
    """Per-step mixture: with probability ``weights[k]`` use model ``k``."""

    def __init__(self, models: Sequence[DelayModel], weights: Sequence[float]):
        if len(models) != len(weights) or not models:
            raise ConfigurationError(
                "models and weights must be equal-length and non-empty"
            )
        total = float(sum(weights))
        if total <= 0 or any(w < 0 for w in weights):
            raise ConfigurationError("weights must be non-negative and sum > 0")
        self._models = list(models)
        self._weights = np.asarray(weights, dtype=float) / total

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        idx = int(rng.choice(len(self._models), p=self._weights))
        return self._models[idx].sample(worker, step, rng)

    def reset(self) -> None:
        for model in self._models:
            model.reset()

    def snapshot_state(self) -> dict:
        return {
            "models": [model.snapshot_state() for model in self._models]
        }

    def restore_state(self, state) -> None:
        for model, inner in zip(self._models, state["models"]):
            model.restore_state(inner)
