"""Online straggler estimation.

The paper's Sec. IV leaves "how to choose ``w``" open ("we can set a
deadline … we may also choose to receive gradients from fewer workers
at the beginning …").  Related work (FlexRR [10]) detects stragglers
from observed latencies.  This module provides the observation side:

* :class:`LatencyEstimator` — per-worker exponentially-weighted moving
  averages of observed round latencies, with straggler scoring;
* :class:`EstimatingWaitPolicy` — a wait policy that uses the
  estimator to pick ``w`` each step: wait for every worker whose
  *predicted* latency is within ``slack × median``; chronically slow
  workers stop being waited for automatically.

Everything is observation-driven — no oracle access to the delay
model — so the same components would work against a real cluster.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional

from ..exceptions import ConfigurationError, SimulationError
from ..simulation.policies import WaitOutcome, WaitPolicy


class LatencyEstimator:
    """EWMA latency tracker with straggler scoring.

    ``update(worker, latency)`` after each observed arrival;
    ``estimate(worker)`` returns the current prediction (``None`` until
    first observation); ``straggler_score(worker)`` is the ratio of the
    worker's estimate to the median estimate — ≥ ``threshold`` flags a
    straggler.
    """

    def __init__(self, smoothing: float = 0.2, threshold: float = 2.0):
        if not 0.0 < smoothing <= 1.0:
            raise ConfigurationError(
                f"smoothing must be in (0, 1], got {smoothing}"
            )
        if threshold <= 1.0:
            raise ConfigurationError(
                f"threshold must exceed 1, got {threshold}"
            )
        self._alpha = smoothing
        self._threshold = threshold
        self._estimates: Dict[int, float] = {}
        self._observations: Dict[int, int] = {}

    def update(self, worker: int, latency: float) -> None:
        """Fold one observed round latency into the EWMA."""
        if latency < 0:
            raise ConfigurationError(f"negative latency {latency}")
        if worker in self._estimates:
            old = self._estimates[worker]
            self._estimates[worker] = (
                (1 - self._alpha) * old + self._alpha * latency
            )
        else:
            self._estimates[worker] = latency
        self._observations[worker] = self._observations.get(worker, 0) + 1

    def update_round(self, arrivals: Mapping[int, float]) -> None:
        """Feed one full round of (worker → latency) observations."""
        for worker, latency in arrivals.items():
            self.update(worker, latency)

    def estimate(self, worker: int) -> Optional[float]:
        """Current latency prediction, or ``None`` before any data."""
        return self._estimates.get(worker)

    def observations(self, worker: int) -> int:
        """How many latencies have been observed for ``worker``."""
        return self._observations.get(worker, 0)

    def median_estimate(self) -> Optional[float]:
        """Median of the per-worker estimates (``None`` when empty)."""
        if not self._estimates:
            return None
        values = sorted(self._estimates.values())
        mid = len(values) // 2
        if len(values) % 2:
            return values[mid]
        return 0.5 * (values[mid - 1] + values[mid])

    def straggler_score(self, worker: int) -> Optional[float]:
        """Estimate / median; ``None`` until the worker is observed."""
        est = self.estimate(worker)
        med = self.median_estimate()
        if est is None or med is None or med == 0.0:
            return None
        return est / med

    def stragglers(self) -> FrozenSet[int]:
        """Workers currently scoring at or above the threshold."""
        flagged = set()
        for worker in self._estimates:
            score = self.straggler_score(worker)
            if score is not None and score >= self._threshold:
                flagged.add(worker)
        return frozenset(flagged)


class EstimatingWaitPolicy(WaitPolicy):
    """Adaptive policy: wait for the workers predicted to be fast.

    Each step the target count ``w`` is the number of workers whose
    estimated latency is within ``slack ×`` the median estimate,
    clamped to ``[min_wait, n]``.  Until ``warmup_rounds`` of
    observations the policy waits for everyone (it has nothing to
    ignore on).  Observed arrivals always feed back into the estimator.
    """

    def __init__(
        self,
        estimator: LatencyEstimator,
        min_wait: int = 1,
        slack: float = 1.5,
        warmup_rounds: int = 3,
    ):
        if min_wait <= 0:
            raise ConfigurationError(f"min_wait must be positive, got {min_wait}")
        if slack < 1.0:
            raise ConfigurationError(f"slack must be >= 1, got {slack}")
        if warmup_rounds < 0:
            raise ConfigurationError(
                f"warmup_rounds must be >= 0, got {warmup_rounds}"
            )
        self._estimator = estimator
        self._min_wait = min_wait
        self._slack = slack
        self._warmup = warmup_rounds
        self._rounds_seen = 0

    @property
    def estimator(self) -> LatencyEstimator:
        return self._estimator

    def _target_w(self, num_workers: int) -> int:
        median = self._estimator.median_estimate()
        if self._rounds_seen < self._warmup or median is None:
            return num_workers
        fast = 0
        for worker in range(num_workers):
            est = self._estimator.estimate(worker)
            if est is None or est <= self._slack * median:
                fast += 1
        return max(self._min_wait, min(fast, num_workers))

    def wait(self, arrivals: Mapping[int, float], step: int) -> WaitOutcome:
        ordered = self._sorted_arrivals(arrivals)
        target = self._target_w(len(ordered))
        if target > len(ordered):
            raise SimulationError(
                f"target w={target} exceeds {len(ordered)} arrivals"
            )
        chosen = ordered[:target]
        outcome = WaitOutcome(
            accepted_workers=frozenset(w for _, w in chosen),
            proceed_time=chosen[-1][0],
        )
        # Learn from everything we saw this round, including stragglers
        # (their full latency is known once their upload lands).
        self._estimator.update_round({w: t for w, t in arrivals.items()})
        self._rounds_seen += 1
        return outcome
