"""Straggler delay models and trace record/replay."""

from .models import (
    BernoulliStraggler,
    BurstyDelay,
    DiurnalDelay,
    DelayModel,
    ExponentialDelay,
    MixtureDelay,
    NoDelay,
    ParetoDelay,
    PersistentStragglers,
    ShiftedExponentialDelay,
)
from .traces import DelayTrace, TraceReplayModel
from .estimators import EstimatingWaitPolicy, LatencyEstimator
from .failures import (
    CompositeFailures,
    FailureModel,
    NoFailures,
    PermanentCrashes,
    TransientDropouts,
)

__all__ = [
    "DelayModel",
    "NoDelay",
    "ExponentialDelay",
    "ShiftedExponentialDelay",
    "ParetoDelay",
    "BernoulliStraggler",
    "PersistentStragglers",
    "MixtureDelay",
    "DiurnalDelay",
    "BurstyDelay",
    "DelayTrace",
    "TraceReplayModel",
    "LatencyEstimator",
    "EstimatingWaitPolicy",
    "FailureModel",
    "NoFailures",
    "PermanentCrashes",
    "TransientDropouts",
    "CompositeFailures",
]
