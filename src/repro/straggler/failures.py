"""Worker failures: crashes and transient dropouts.

A straggler that never answers is a *failure* — and arbitrary-ignorance
decoding is exactly what keeps training alive through them (IS-GC's
``w`` can simply stay below the number of live workers).  These models
decide per (worker, step) whether an upload happens at all; the
cluster simulator drops the arrivals of dead workers.
"""

from __future__ import annotations

import abc
from typing import FrozenSet, Iterable

import numpy as np

from ..exceptions import ConfigurationError


class FailureModel(abc.ABC):
    """Decides whether a worker's upload materialises this step."""

    @abc.abstractmethod
    def is_alive(self, worker: int, step: int, rng: np.random.Generator) -> bool:
        """Whether ``worker``'s upload happens at ``step``."""

    def reset(self) -> None:
        """Forget any internal state so a replay reproduces the run.

        The built-in models are stateless given the caller's RNG, so
        the default is a no-op; stateful subclasses must override.
        Called by :meth:`ClusterSimulator.reset`.
        """


class NoFailures(FailureModel):
    """Everything always arrives (the default)."""

    def is_alive(self, worker: int, step: int, rng: np.random.Generator) -> bool:
        """Always ``True``."""
        return True


class PermanentCrashes(FailureModel):
    """Listed workers crash at a given step and never return."""

    def __init__(self, crashed_workers: Iterable[int], at_step: int = 0):
        if at_step < 0:
            raise ConfigurationError(f"at_step must be >= 0, got {at_step}")
        self._crashed = frozenset(crashed_workers)
        self._at_step = at_step

    @property
    def crashed_workers(self) -> FrozenSet[int]:
        return self._crashed

    @property
    def at_step(self) -> int:
        return self._at_step

    def is_alive(self, worker: int, step: int, rng: np.random.Generator) -> bool:
        """Alive unless crashed and the crash step has passed."""
        return worker not in self._crashed or step < self._at_step


class TransientDropouts(FailureModel):
    """Each upload is independently lost with probability ``p``
    (packet loss, preemption, OOM-kill-and-restart)."""

    def __init__(self, probability: float):
        if not 0.0 <= probability < 1.0:
            raise ConfigurationError(
                f"probability must be in [0, 1), got {probability}"
            )
        self._p = probability

    @property
    def probability(self) -> float:
        return self._p

    def is_alive(self, worker: int, step: int, rng: np.random.Generator) -> bool:
        """Independently drop this upload with probability ``p``."""
        return rng.random() >= self._p


class CompositeFailures(FailureModel):
    """Alive only if alive under *every* constituent model."""

    def __init__(self, models: Iterable[FailureModel]):
        self._models = list(models)
        if not self._models:
            raise ConfigurationError("need at least one failure model")

    def is_alive(self, worker: int, step: int, rng: np.random.Generator) -> bool:
        """Alive iff every constituent model says alive."""
        return all(m.is_alive(worker, step, rng) for m in self._models)

    def reset(self) -> None:
        """Reset every constituent model."""
        for model in self._models:
            model.reset()
