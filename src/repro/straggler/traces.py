"""Delay traces: record once, replay across schemes.

For apples-to-apples scheme comparisons (Fig. 11/12) every scheme must
face the *same* straggler realisations.  A :class:`DelayTrace` freezes a
delay model into a ``(steps × workers)`` table that replays
deterministically; it also serialises to/from plain dicts for storage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Mapping, Sequence

import numpy as np

from ..exceptions import ConfigurationError, SimulationError
from .models import DelayModel


@dataclass(frozen=True)
class DelayTrace:
    """A frozen table of per-(step, worker) delays."""

    delays: np.ndarray  # shape (num_steps, num_workers)

    def __post_init__(self) -> None:
        arr = np.asarray(self.delays, dtype=float)
        if arr.ndim != 2:
            raise ConfigurationError(
                f"trace must be 2-D (steps × workers), got shape {arr.shape}"
            )
        if (arr < 0).any():
            raise ConfigurationError("trace contains negative delays")
        object.__setattr__(self, "delays", arr)

    @property
    def num_steps(self) -> int:
        return self.delays.shape[0]

    @property
    def num_workers(self) -> int:
        return self.delays.shape[1]

    def delay(self, worker: int, step: int) -> float:
        """Delay for ``worker`` at ``step``; steps wrap modulo the trace
        length so a short recorded trace can drive a long training run."""
        if not 0 <= worker < self.num_workers:
            raise SimulationError(
                f"worker {worker} outside trace width {self.num_workers}"
            )
        return float(self.delays[step % self.num_steps, worker])

    # ------------------------------------------------------------------
    # Construction / serialisation
    # ------------------------------------------------------------------
    @classmethod
    def record(
        cls,
        model: DelayModel,
        num_workers: int,
        num_steps: int,
        rng: np.random.Generator,
    ) -> "DelayTrace":
        """Sample ``model`` into a frozen trace."""
        if num_workers <= 0 or num_steps <= 0:
            raise ConfigurationError(
                f"need positive dimensions, got {num_steps} × {num_workers}"
            )
        table = np.zeros((num_steps, num_workers))
        workers = range(num_workers)
        for step in range(num_steps):
            # sample_round's contract (RNG consumed exactly as the scalar
            # loop would) keeps recorded traces bit-identical to the
            # historical per-worker recording while vectorizing the draw.
            table[step] = model.sample_round(workers, step, rng)
        return cls(table)

    def to_dict(self) -> Dict[str, List[List[float]]]:
        """A JSON-ready dict (inverse of :meth:`from_dict`)."""
        return {"delays": self.delays.tolist()}

    @classmethod
    def from_dict(cls, payload: Mapping[str, List[List[float]]]) -> "DelayTrace":
        if "delays" not in payload:
            raise ConfigurationError("trace dict missing 'delays' key")
        return cls(np.asarray(payload["delays"], dtype=float))

    def save(self, path: str | Path) -> None:
        """Write the trace as JSON (inverse of :meth:`load`)."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "DelayTrace":
        """Read a JSON trace written by :meth:`save`."""
        file = Path(path)
        if not file.exists():
            raise ConfigurationError(f"trace file not found: {file}")
        try:
            payload = json.loads(file.read_text())
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"trace file {file} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, Mapping):
            raise ConfigurationError(
                f"trace file {file} must hold a mapping with a 'delays' key"
            )
        return cls.from_dict(payload)


class TraceReplayModel(DelayModel):
    """Adapter: replay a :class:`DelayTrace` through the DelayModel API."""

    def __init__(self, trace: DelayTrace):
        self._trace = trace

    @property
    def trace(self) -> DelayTrace:
        return self._trace

    def sample(self, worker: int, step: int, rng: np.random.Generator) -> float:
        # rng intentionally unused: replay is deterministic.
        return self._trace.delay(worker, step)

    def sample_round(
        self, workers: Sequence[int], step: int, rng: np.random.Generator
    ) -> np.ndarray:
        ordered = list(workers)
        for worker in ordered:
            if not 0 <= worker < self._trace.num_workers:
                raise SimulationError(
                    f"worker {worker} outside trace width "
                    f"{self._trace.num_workers}"
                )
        if not ordered:
            return np.zeros(0)
        row = step % self._trace.num_steps
        return self._trace.delays[row, ordered].astype(float)
