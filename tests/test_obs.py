"""Unit tests for the observability layer (repro.obs)."""

import json
import math

import numpy as np
import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    TRACE_SCHEMA_VERSION,
    MetricsRegistry,
    RoundTrace,
    RoundTracer,
    SchemeAggregate,
    aggregate_traces,
    null_tracer,
    read_traces,
    write_traces,
)
from repro.obs.registry import NULL_REGISTRY, Histogram, NullRegistry
from repro.simulation.policies import WaitOutcome


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = MetricsRegistry().counter("x")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("x")
        with pytest.raises(ObservabilityError):
            c.inc(-1.0)


class TestGauge:
    def test_set_overwrites(self):
        g = MetricsRegistry().gauge("clock")
        assert math.isnan(g.value)
        g.set(1.0)
        g.set(7.0)
        assert g.value == 7.0


class TestHistogram:
    def test_mean_and_quantiles(self):
        h = Histogram("t")
        for v in (1.0, 2.0, 3.0, 4.0):
            h.observe(v)
        assert h.count == 4
        assert h.mean == pytest.approx(2.5)
        assert h.p50 == pytest.approx(2.5)
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert h.quantile(1.0) == pytest.approx(4.0)

    def test_empty_quantile_is_nan(self):
        assert math.isnan(Histogram("t").p95)

    def test_quantile_range_validated(self):
        with pytest.raises(ObservabilityError):
            Histogram("t").quantile(1.5)

    def test_max_samples_validated(self):
        with pytest.raises(ObservabilityError):
            Histogram("t", max_samples=0)

    def test_reservoir_bounds_memory(self):
        h = Histogram("t", max_samples=16)
        for v in range(1000):
            h.observe(float(v))
        assert h.count == 1000
        assert len(h._samples) == 16
        # Total/mean stay exact even once sampling kicks in.
        assert h.total == pytest.approx(sum(range(1000)))
        assert h.mean == pytest.approx(499.5)

    def test_reservoir_deterministic_per_name(self):
        def fill(name):
            h = Histogram(name, max_samples=8)
            for v in range(200):
                h.observe(float(v))
            return list(h._samples)

        assert fill("same") == fill("same")

    def test_summary_keys(self):
        h = Histogram("t")
        h.observe(1.0)
        assert set(h.summary()) == {"count", "mean", "p50", "p95", "p99"}


class TestMetricsRegistry:
    def test_get_or_create_returns_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.histogram("h") is reg.histogram("h")

    def test_cross_kind_name_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ObservabilityError):
            reg.gauge("x")
        with pytest.raises(ObservabilityError):
            reg.histogram("x")

    def test_snapshot_flattens_everything(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(3.0)
        snap = reg.snapshot()
        assert snap["c"] == 2.0
        assert snap["g"] == 1.5
        assert snap["h"]["count"] == 1.0

    def test_names_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b")
        reg.gauge("a")
        assert list(reg.names) == ["a", "b"]


class TestNullRegistry:
    def test_shared_singletons(self):
        reg = NullRegistry()
        assert reg.counter("a") is reg.counter("b")
        assert reg.gauge("a") is reg.gauge("b")
        assert reg.histogram("a") is reg.histogram("b")

    def test_records_are_dropped(self):
        NULL_REGISTRY.counter("x").inc(100)
        NULL_REGISTRY.gauge("x").set(5.0)
        NULL_REGISTRY.histogram("x").observe(1.0)
        assert NULL_REGISTRY.counter("x").value == 0.0
        assert NULL_REGISTRY.histogram("x").count == 0
        assert NULL_REGISTRY.snapshot() == {}


# ----------------------------------------------------------------------
# RoundTrace events
# ----------------------------------------------------------------------
def _trace(**overrides):
    base = dict(
        step=3,
        scheme="is-gc(w=4)",
        step_start=10.0,
        step_end=12.5,
        arrivals={0: 0.5, 1: 2.5, 2: 0.75},
        accepted_workers=(0, 2),
        policy="wait-for-k(k=2)",
        proceed_time=0.75,
        wasted_compute=0.3,
    )
    base.update(overrides)
    return RoundTrace(**base)


class TestRoundTrace:
    def test_derived_properties(self):
        t = _trace()
        assert t.step_time == pytest.approx(2.5)
        assert t.num_arrived == 3
        assert t.num_accepted == 2
        assert t.recovery_fraction is None

    def test_with_decode_sets_recovery(self):
        t = _trace().with_decode(
            decoder_scheme="cr", num_searches=2,
            num_recovered=6, num_partitions=8,
        )
        assert t.recovery_fraction == pytest.approx(0.75)
        assert t.decoder_scheme == "cr"

    def test_with_decode_validation(self):
        with pytest.raises(ObservabilityError):
            _trace().with_decode("cr", 1, 9, 8)
        with pytest.raises(ObservabilityError):
            _trace().with_decode("cr", 1, 1, 0)

    def test_invalid_times_rejected(self):
        with pytest.raises(ObservabilityError):
            _trace(step_end=9.0)
        with pytest.raises(ObservabilityError):
            _trace(step=-1)

    def test_dict_round_trip_identity(self):
        t = _trace().with_decode("cr", 2, 6, 8)
        assert RoundTrace.from_dict(t.to_dict()) == t

    def test_dict_round_trip_restores_int_keys(self):
        restored = RoundTrace.from_dict(_trace().to_dict())
        assert set(restored.arrivals) == {0, 1, 2}

    def test_schema_version_enforced(self):
        payload = _trace().to_dict()
        payload["v"] = TRACE_SCHEMA_VERSION + 1
        with pytest.raises(ObservabilityError):
            RoundTrace.from_dict(payload)

    def test_malformed_payload_rejected(self):
        payload = _trace().to_dict()
        del payload["arrivals"]
        with pytest.raises(ObservabilityError):
            RoundTrace.from_dict(payload)


# ----------------------------------------------------------------------
# RoundTracer
# ----------------------------------------------------------------------
def _record(tracer, step=0, accepted=(0, 2), proceed=0.75):
    return tracer.record_round(
        step=step,
        arrivals={0: 0.5, 1: 2.5, 2: 0.75},
        outcome=WaitOutcome(frozenset(accepted), proceed),
        policy="wait-for-k(k=2)",
        step_start=float(step),
        step_end=float(step) + proceed,
        wasted_compute=0.3,
    )


class TestRoundTracer:
    def test_null_tracer_is_none(self):
        assert null_tracer() is None

    def test_record_round_collects_and_feeds_metrics(self):
        tracer = RoundTracer(scheme="gc")
        _record(tracer, step=0)
        _record(tracer, step=1)
        assert len(tracer) == 2
        assert all(t.scheme == "gc" for t in tracer.traces)
        assert tracer.registry.counter("round.count").value == 2.0
        assert tracer.registry.histogram("round.step_time").count == 2

    def test_record_decode_enriches_matching_round(self):
        tracer = RoundTracer(scheme="is-gc")
        _record(tracer, step=5)
        enriched = tracer.record_decode(
            5, decoder_scheme="cr", num_searches=3,
            num_recovered=4, num_partitions=8,
        )
        assert enriched.recovery_fraction == pytest.approx(0.5)
        assert tracer.traces[0].num_searches == 3
        assert tracer.registry.counter("decode.count").value == 1.0

    def test_record_decode_without_round_raises(self):
        with pytest.raises(ObservabilityError):
            RoundTracer().record_decode(0, "cr", 1, 1, 2)

    def test_decode_respects_scheme_context(self):
        tracer = RoundTracer(scheme="a")
        _record(tracer, step=0)
        tracer.set_context(scheme="b")
        _record(tracer, step=0)
        tracer.record_decode(0, "cr", 1, 2, 4)
        assert tracer.traces[0].num_recovered is None
        assert tracer.traces[1].num_recovered == 2

    def test_clear_drops_traces_keeps_metrics(self):
        tracer = RoundTracer()
        _record(tracer)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.registry.counter("round.count").value == 1.0
        with pytest.raises(ObservabilityError):
            tracer.record_decode(0, "cr", 1, 1, 2)


# ----------------------------------------------------------------------
# JSONL persistence
# ----------------------------------------------------------------------
class TestJsonl:
    def test_write_read_round_trip(self, tmp_path):
        traces = [_trace(step=i) for i in range(5)]
        path = tmp_path / "run.jsonl"
        assert write_traces(path, traces) == 5
        assert read_traces(path) == traces

    def test_export_jsonl_from_tracer(self, tmp_path):
        tracer = RoundTracer(scheme="x")
        _record(tracer, step=0)
        path = tmp_path / "t.jsonl"
        assert tracer.export_jsonl(path) == 1
        assert read_traces(path) == tracer.traces

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.jsonl"
        body = json.dumps(_trace().to_dict())
        path.write_text(f"\n{body}\n\n{body}\n")
        assert len(read_traces(path)) == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(ObservabilityError):
            read_traces(tmp_path / "nope.jsonl")

    def test_bad_json_reports_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(json.dumps(_trace().to_dict()) + "\n{oops\n")
        with pytest.raises(ObservabilityError, match=r"bad\.jsonl:2"):
            read_traces(path)

    def test_bad_schema_reports_line(self, tmp_path):
        payload = _trace().to_dict()
        payload["v"] = 99
        path = tmp_path / "old.jsonl"
        path.write_text(json.dumps(payload) + "\n")
        with pytest.raises(ObservabilityError, match=r"old\.jsonl:1"):
            read_traces(path)


# ----------------------------------------------------------------------
# Aggregation
# ----------------------------------------------------------------------
class TestAggregation:
    def _traces(self):
        out = []
        for i, dt in enumerate((1.0, 2.0, 3.0)):
            out.append(
                _trace(step=i, scheme="gc", step_start=0.0, step_end=dt)
            )
        out.append(
            _trace(step=0, scheme="is-gc", step_start=0.0, step_end=1.0)
            .with_decode("cr", 2, 4, 8)
        )
        return out

    def test_groups_by_scheme_in_order(self):
        aggs = aggregate_traces(self._traces())
        assert list(aggs) == ["gc", "is-gc"]
        assert aggs["gc"].rounds == 3
        assert aggs["is-gc"].rounds == 1

    def test_statistics(self):
        agg = aggregate_traces(self._traces())["gc"]
        assert agg.mean_step_time == pytest.approx(2.0)
        assert agg.p50_step_time == pytest.approx(2.0)
        assert agg.mean_accepted == pytest.approx(2.0)
        assert agg.total_wasted_compute == pytest.approx(0.9)
        assert agg.mean_recovery_fraction is None
        assert agg.decoded_rounds == 0

    def test_decoded_statistics(self):
        agg = aggregate_traces(self._traces())["is-gc"]
        assert agg.mean_recovery_fraction == pytest.approx(0.5)
        assert agg.mean_num_searches == pytest.approx(2.0)
        assert agg.decoded_rounds == 1

    def test_empty_inputs_rejected(self):
        with pytest.raises(ObservabilityError):
            aggregate_traces([])
        with pytest.raises(ObservabilityError):
            SchemeAggregate.from_traces("x", [])

    def test_aggregation_matches_numpy_exactly(self):
        # Same arithmetic as the live path: np.mean over the series.
        times = [0.37, 1.212, 2.003, 0.51]
        traces = [
            _trace(step=i, step_start=0.0, step_end=t, scheme="s")
            for i, t in enumerate(times)
        ]
        agg = aggregate_traces(traces)["s"]
        assert agg.mean_step_time == float(np.mean(times))
