"""Batched decoding: bit-for-bit equivalence with the looped path.

The ``decode_batch`` contract (see :mod:`repro.core.batch`) is that for
every decoder family, ``decode_batch(masks).results()`` equals
``[decode(m) for m in masks]`` element by element *and* the injected
generator ends in the identical stream position — the fairness draws
happen per mask, in batch order, outside the vectorized kernels.  These
tests pin that contract for all seven registered placement families,
with and without a :class:`~repro.parallel.DecodeCache`, plus the
cache's one-pass hit/miss partition and the shared mask validation.
"""

import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.closed_form import expected_recovered_exact
from repro.analysis.variance import estimator_moments
from repro.core import CyclicRepetition, decoder_for
from repro.core.batch import enumerate_masks, masks_to_array, validate_mask
from repro.core.scheme import make_placement
from repro.exceptions import DecodeError
from repro.parallel import DecodeCache


def _family_placements():
    """One representative placement per registered family."""
    return [
        ("fr", make_placement("fr", num_workers=12, partitions_per_worker=3)),
        ("cr", make_placement("cr", num_workers=12, partitions_per_worker=3)),
        ("hr", make_placement("hr", num_workers=12, c1=1, c2=2, num_groups=3)),
        ("hr-c1-0", make_placement("hr", num_workers=12, c1=0, c2=2, num_groups=3)),
        ("hr-c2-0", make_placement("hr", num_workers=12, c1=2, c2=0, num_groups=3)),
        (
            "explicit",
            make_placement(
                "explicit",
                rows=[[0, 1], [1, 2], [2, 3], [3, 4], [4, 5], [5, 0]],
            ),
        ),
        (
            "hetero",
            make_placement(
                "hetero",
                num_workers=8,
                assignment=[3, 1, 0, 2, 7, 5, 4, 6],
                base="cr",
                partitions_per_worker=2,
            ),
        ),
        (
            "comm-efficient",
            make_placement(
                "comm-efficient",
                num_workers=12,
                partitions_per_worker=3,
                blocks=2,
            ),
        ),
        (
            "multimessage",
            make_placement(
                "multimessage", num_workers=12, partitions_per_worker=2, base="cr"
            ),
        ),
    ]


FAMILIES = _family_placements()
FAMILY_IDS = [name for name, _ in FAMILIES]


def _random_masks(n: int, count: int, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    masks = np.zeros((count, n), dtype=bool)
    lo, hi = 1, max(2, n - 1)
    for i in range(count):
        size = int(rng.integers(lo, hi + 1))
        masks[i, rng.choice(n, size=size, replace=False)] = True
    return masks


def _decoder_pair(placement, seed, cache_a=None, cache_b=None):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        dec_a = decoder_for(placement, rng=rng_a, cache=cache_a)
        dec_b = decoder_for(placement, rng=rng_b, cache=cache_b)
    return dec_a, rng_a, dec_b, rng_b


class TestBatchLoopEquivalence:
    """decode_batch == [decode(m) ...]: selections AND generator stream."""

    @pytest.mark.parametrize(("name", "placement"), FAMILIES, ids=FAMILY_IDS)
    def test_bit_for_bit_uncached(self, name, placement):
        masks = _random_masks(placement.num_workers, 80, seed=5)
        dec_a, rng_a, dec_b, rng_b = _decoder_pair(placement, seed=23)
        looped = [dec_a.decode(np.flatnonzero(row).tolist()) for row in masks]
        batch = dec_b.decode_batch(masks)
        assert batch.results() == looped
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @pytest.mark.parametrize(("name", "placement"), FAMILIES, ids=FAMILY_IDS)
    def test_bit_for_bit_cached(self, name, placement):
        # Repeat each mask so the cache actually partitions hits/misses,
        # then run a second batched pass against a warm cache.
        base = _random_masks(placement.num_workers, 30, seed=6)
        masks = np.concatenate([base, base[::2]])
        dec_a, rng_a, dec_b, rng_b = _decoder_pair(
            placement, seed=31, cache_a=DecodeCache(), cache_b=DecodeCache()
        )
        looped = [dec_a.decode(np.flatnonzero(row).tolist()) for row in masks]
        looped += [dec_a.decode(np.flatnonzero(row).tolist()) for row in masks]
        batch1 = dec_b.decode_batch(masks)
        batch2 = dec_b.decode_batch(masks)
        assert batch1.results() + batch2.results() == looped
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @pytest.mark.parametrize(("name", "placement"), FAMILIES, ids=FAMILY_IDS)
    def test_cached_equals_uncached_batched(self, name, placement):
        masks = _random_masks(placement.num_workers, 40, seed=7)
        dec_a, rng_a, dec_b, rng_b = _decoder_pair(
            placement, seed=17, cache_b=DecodeCache()
        )
        plain = dec_a.decode_batch(masks)
        cached = dec_b.decode_batch(masks)
        assert plain.results() == cached.results()
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_list_of_masks_input(self):
        placement = CyclicRepetition(10, 2)
        mask_lists = [[0, 3, 5], [1, 2, 8, 9], [4], [0, 1, 2, 3, 4, 5]]
        dec_a, rng_a, dec_b, rng_b = _decoder_pair(placement, seed=3)
        looped = [dec_a.decode(m) for m in mask_lists]
        batch = dec_b.decode_batch(mask_lists)
        assert batch.results() == looped
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @settings(max_examples=25, deadline=None)
    @given(
        n=st.integers(min_value=2, max_value=16),
        c=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        data=st.data(),
    )
    def test_cr_property(self, n, c, seed, data):
        c = min(c, n)
        placement = CyclicRepetition(n, c)
        num_masks = data.draw(st.integers(min_value=1, max_value=12))
        mask_rng = np.random.default_rng(seed)
        masks = np.zeros((num_masks, n), dtype=bool)
        for i in range(num_masks):
            size = int(mask_rng.integers(1, n + 1))
            masks[i, mask_rng.choice(n, size=size, replace=False)] = True
        dec_a, rng_a, dec_b, rng_b = _decoder_pair(placement, seed=seed)
        looped = [dec_a.decode(np.flatnonzero(row).tolist()) for row in masks]
        batch = dec_b.decode_batch(masks)
        assert batch.results() == looped
        assert rng_a.bit_generator.state == rng_b.bit_generator.state


class TestBatchResultShape:
    def test_arrays_consistent(self):
        placement = CyclicRepetition(12, 2)
        masks = _random_masks(12, 25, seed=9)
        batch = decoder_for(placement, rng=np.random.default_rng(1)).decode_batch(
            masks
        )
        assert len(batch) == 25
        assert batch.available.shape == (25, 12)
        assert batch.selected.shape == (25, 12)
        assert batch.recovered.shape == (25, placement.num_partitions)
        assert (batch.selected <= batch.available).all()
        assert (batch.num_selected >= 1).all()
        np.testing.assert_array_equal(
            batch.num_recovered, batch.recovered.sum(axis=1)
        )

    def test_empty_batch(self):
        placement = CyclicRepetition(6, 2)
        batch = decoder_for(placement, rng=np.random.default_rng(0)).decode_batch(
            np.zeros((0, 6), dtype=bool)
        )
        assert len(batch) == 0
        assert batch.results() == []


class TestMaskValidation:
    """Same DecodeError, same message, looped and batched."""

    def test_empty_mask_message(self):
        with pytest.raises(DecodeError, match="zero available workers"):
            validate_mask([], 6)

    def test_duplicate_mask_message(self):
        with pytest.raises(DecodeError, match=r"duplicate available workers: \[2\]"):
            validate_mask([1, 2, 2, 3], 6)

    def test_out_of_range_message(self):
        with pytest.raises(
            DecodeError, match=r"out of range \[0, 6\): \[-1, 6\]"
        ):
            validate_mask([-1, 0, 6], 6)

    @pytest.mark.parametrize(("name", "placement"), FAMILIES, ids=FAMILY_IDS)
    def test_same_error_both_paths(self, name, placement):
        bad_masks = [[], [0, 0], [0, placement.num_workers]]
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            dec = decoder_for(placement, rng=np.random.default_rng(0))
        for bad in bad_masks:
            with pytest.raises(DecodeError) as looped_err:
                dec.decode(bad)
            with pytest.raises(DecodeError) as batched_err:
                dec.decode_batch([[0], bad])
            assert str(batched_err.value) == str(looped_err.value)

    def test_batch_fails_fast_without_consuming_rng(self):
        placement = CyclicRepetition(8, 2)
        rng = np.random.default_rng(4)
        dec = decoder_for(placement, rng=rng)
        state = rng.bit_generator.state
        with pytest.raises(DecodeError):
            dec.decode_batch([[0, 1], [3, 3]])
        assert rng.bit_generator.state == state

    def test_array_width_mismatch(self):
        dec = decoder_for(CyclicRepetition(8, 2), rng=np.random.default_rng(0))
        with pytest.raises(DecodeError, match="width 6 .* 8 workers"):
            dec.decode_batch(np.ones((2, 6), dtype=bool))

    def test_all_false_row_rejected(self):
        dec = decoder_for(CyclicRepetition(8, 2), rng=np.random.default_rng(0))
        arr = np.ones((3, 8), dtype=bool)
        arr[1] = False
        with pytest.raises(DecodeError, match="zero available workers"):
            dec.decode_batch(arr)

    def test_masks_to_array_roundtrip(self):
        avail, originals = masks_to_array([[2, 0], [1]], 4)
        assert originals == [[2, 0], [1]]
        np.testing.assert_array_equal(
            avail,
            np.array(
                [[True, False, True, False], [False, True, False, False]]
            ),
        )


class TestCacheBatchPartition:
    """get_or_compute_batch: one pass, hits/misses counted like a loop."""

    def test_partition_and_alignment(self):
        cache = DecodeCache()
        calls = []

        def compute_missing(missing):
            calls.append(list(missing))
            return [f"v:{k}" for k in missing]

        values = cache.get_or_compute_batch(
            "fp", "kind", ["a", "b", "a", "c"], compute_missing
        )
        # One compute call with the unique misses in first-occurrence
        # order; the duplicate "a" resolves as a hit (same as decoding
        # the stream one mask at a time).
        assert calls == [["a", "b", "c"]]
        assert values == ["v:a", "v:b", "v:a", "v:c"]
        assert cache.misses == 3
        assert cache.hits == 1

    def test_warm_cache_all_hits(self):
        cache = DecodeCache()
        cache.get_or_compute_batch(
            "fp", "kind", ["a", "b"], lambda ks: [k.upper() for k in ks]
        )
        values = cache.get_or_compute_batch(
            "fp", "kind", ["b", "a", "b"], lambda ks: pytest.fail("no misses")
        )
        assert values == ["B", "A", "B"]
        assert cache.hits == 3

    def test_counters_match_sequential(self):
        keys = ["x", "y", "x", "z", "y", "x"]
        batch_cache = DecodeCache()
        batch_cache.get_or_compute_batch(
            "fp", "k", keys, lambda ks: [k * 2 for k in ks]
        )
        loop_cache = DecodeCache()
        for key in keys:
            loop_cache.get_or_compute("fp", "k", key, lambda key=key: key * 2)
        assert batch_cache.hits == loop_cache.hits
        assert batch_cache.misses == loop_cache.misses

    def test_wrong_compute_length_rejected(self):
        from repro.exceptions import ConfigurationError

        cache = DecodeCache()
        with pytest.raises(ConfigurationError):
            cache.get_or_compute_batch("fp", "k", ["a", "b"], lambda ks: ["only-one"])


class TestFallbackWarning:
    def test_unknown_scheme_warns_and_counts(self):
        from repro.core.exact_decoder import ExactDecoder
        from repro.obs.registry import MetricsRegistry

        class OddPlacement(CyclicRepetition):
            scheme = "custom-unknown"

        metrics = MetricsRegistry()
        with pytest.warns(RuntimeWarning, match="custom-unknown.*exact-MIS"):
            dec = decoder_for(OddPlacement(4, 2), metrics=metrics)
        assert isinstance(dec, ExactDecoder)
        assert metrics.counter("decode.fallback").value == 1

    @pytest.mark.parametrize("name", ["explicit", "hetero"])
    def test_exact_by_design_schemes_stay_silent(self, name):
        placement = dict(FAMILIES)[name]
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            decoder_for(placement, rng=np.random.default_rng(0))

    @pytest.mark.parametrize(
        "name", ["fr", "cr", "hr", "comm-efficient", "multimessage"]
    )
    def test_registered_schemes_stay_silent(self, name):
        placement = dict(FAMILIES)[name]
        with warnings.catch_warnings():
            warnings.simplefilter("error", RuntimeWarning)
            decoder_for(placement, rng=np.random.default_rng(0))


class TestVarianceBatchPath:
    def test_enumeration_matches_closed_form(self):
        # Decoding every C(n, w) mask in one batch must agree with the
        # closed-form E[#recovered] over the same mask distribution
        # (the decoders return *maximum* independent sets, so the mean
        # recovered count is decoder-independent).
        placement = CyclicRepetition(8, 2)
        wait_for = 4
        dec = decoder_for(placement, rng=np.random.default_rng(0))
        batch = dec.decode_batch(enumerate_masks(8, wait_for))
        expected = expected_recovered_exact(placement, wait_for)
        assert float(batch.num_recovered.mean()) == pytest.approx(expected)

    def test_exact_enumeration_unbiased(self):
        # C(6, 3) = 20 <= exact_limit, so this exercises the exact
        # enumeration path through the batch mask representation.
        placement = CyclicRepetition(6, 2)
        n = 6
        rng = np.random.default_rng(2)
        grads = {p: rng.normal(size=4) for p in range(n)}
        full = sum(grads.values())
        moments = estimator_moments(placement, 3, grads)
        assert moments.is_unbiased
        np.testing.assert_allclose(moments.mean, full, atol=1e-10)

    def test_enumerate_masks_combinations_order(self):
        from itertools import combinations

        masks = enumerate_masks(5, 3)
        expected_rows = list(combinations(range(5), 3))
        assert masks.shape == (10, 5)
        for row, combo in zip(masks, expected_rows):
            assert np.flatnonzero(row).tolist() == list(combo)

    def test_enumerate_masks_bad_size(self):
        with pytest.raises(DecodeError, match=r"mask size must be in \[1, 5\]"):
            enumerate_masks(5, 6)
