"""Tests for top-k sparsification with error feedback."""

import numpy as np
import pytest

from repro.core import CyclicRepetition
from repro.exceptions import ConfigurationError
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
from repro.straggler import ExponentialDelay, NoDelay
from repro.training import (
    DistributedTrainer,
    ISGCStrategy,
    LogisticRegressionModel,
    SGD,
    build_batch_streams,
    make_classification,
    partition_dataset,
)
from repro.training.compression import (
    CompressedISGCStrategy,
    TopKCompressor,
    nonzero_fraction,
)


class TestTopKCompressor:
    def test_keeps_largest_magnitudes(self):
        comp = TopKCompressor(0.25)
        vec = np.array([0.1, -5.0, 0.2, 3.0, -0.3, 0.0, 1.0, 0.4])
        sent = comp.compress(0, vec)
        assert np.count_nonzero(sent) == 2
        assert sent[1] == -5.0 and sent[3] == 3.0

    def test_residual_kept_in_memory(self):
        comp = TopKCompressor(0.25)
        vec = np.array([0.1, -5.0, 0.2, 3.0, -0.3, 0.0, 1.0, 0.4])
        sent = comp.compress(0, vec)
        memory = comp.memory_of(0)
        np.testing.assert_allclose(sent + memory, vec)

    def test_error_feedback_transmits_everything_eventually(self):
        """Constant signal: cumulative sent converges to cumulative input."""
        comp = TopKCompressor(0.25)
        vec = np.array([1.0, 0.5, 0.25, 0.125])
        total_sent = np.zeros(4)
        rounds = 40
        for _ in range(rounds):
            total_sent += comp.compress(0, vec)
        # Per coordinate: sent + final memory == rounds × input.
        np.testing.assert_allclose(
            total_sent + comp.memory_of(0), rounds * vec, atol=1e-12
        )
        # Even the smallest coordinate got through (memory stays bounded).
        assert abs(comp.memory_of(0)).max() < rounds * 0.125

    def test_fraction_one_is_identity(self):
        comp = TopKCompressor(1.0)
        vec = np.array([1.0, -2.0, 3.0])
        np.testing.assert_allclose(comp.compress(0, vec), vec)
        np.testing.assert_allclose(comp.memory_of(0), np.zeros(3))

    def test_keep_count_at_least_one(self):
        assert TopKCompressor(0.001).keep_count(10) == 1

    def test_per_worker_memories_independent(self):
        comp = TopKCompressor(0.5)
        comp.compress(0, np.array([1.0, 0.1]))
        comp.compress(1, np.array([0.2, 2.0]))
        assert comp.memory_of(0)[1] == pytest.approx(0.1)
        assert comp.memory_of(1)[0] == pytest.approx(0.2)

    def test_reset(self):
        comp = TopKCompressor(0.5)
        comp.compress(0, np.array([1.0, 0.1]))
        comp.reset()
        assert comp.memory_of(0) is None

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TopKCompressor(0.0)
        with pytest.raises(ConfigurationError):
            TopKCompressor(1.5)
        comp = TopKCompressor(0.5)
        comp.compress(0, np.zeros(4))
        with pytest.raises(ConfigurationError, match="shape"):
            comp.compress(0, np.zeros(5))


class TestCompressedStrategy:
    def _grads(self, n=4, dim=40, seed=0):
        rng = np.random.default_rng(seed)
        return {p: rng.normal(size=dim) for p in range(n)}

    def test_payloads_sparse(self):
        strat = CompressedISGCStrategy(
            CyclicRepetition(4, 2), wait_for=2, fraction=0.1,
            rng=np.random.default_rng(0),
        )
        payloads = strat.encode(self._grads())
        assert nonzero_fraction(payloads) <= 0.1 + 1e-9

    def test_name_includes_fraction(self):
        strat = CompressedISGCStrategy(
            CyclicRepetition(4, 2), 2, fraction=0.25,
        )
        assert "top25%" in strat.name
        assert strat.upload_fraction == 0.25

    def test_decode_still_works(self):
        strat = CompressedISGCStrategy(
            CyclicRepetition(4, 2), wait_for=2, fraction=0.5,
            rng=np.random.default_rng(0),
        )
        grads = self._grads()
        payloads = strat.encode(grads)
        total, recovered = strat.decode([0, 2], payloads)
        assert recovered == frozenset(range(4))
        assert np.isfinite(total).all()

    def test_training_converges_with_compression(self):
        def build(strategy):
            ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
            parts = partition_dataset(ds, 4, seed=2)
            streams = build_batch_streams(parts, batch_size=32, seed=3)
            cluster = ClusterSimulator(
                4, 2, compute=ComputeModel(0.01, 0.01),
                network=NetworkModel(latency=0.0, bandwidth=float("inf")),
                delay_model=NoDelay(), rng=np.random.default_rng(0),
            )
            trainer = DistributedTrainer(
                LogisticRegressionModel(8, seed=0), streams, strategy,
                cluster, SGD(0.3), eval_data=ds,
            )
            return trainer.run(max_steps=80)

        compressed = build(CompressedISGCStrategy(
            CyclicRepetition(4, 2), wait_for=4, fraction=0.3,
            rng=np.random.default_rng(1),
        ))
        plain = build(ISGCStrategy(
            CyclicRepetition(4, 2), wait_for=4,
            rng=np.random.default_rng(1),
        ))
        # Compression slows convergence but must not break it.
        assert compressed.loss_curve[-1] < 0.5 * compressed.loss_curve[0]
        assert compressed.final_loss < plain.final_loss * 3 + 0.1

    def test_nonzero_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            nonzero_fraction({})
