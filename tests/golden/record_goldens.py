"""Record golden trajectories for the engine refactor.

Run as ``PYTHONPATH=src python tests/golden/record_goldens.py`` — it
writes one JSON file per workload into this directory.  The files
checked into the repo were recorded at the commit *before* the
``repro.engine`` extraction, so the regression tests in
``tests/test_golden_trajectories.py`` prove the engine-backed shims
reproduce the original five training loops bit-for-bit (JSON floats
round-trip exactly through ``repr``).

Keep the workloads here small but non-trivial: real stragglers (trace
replay of exponential delays), real decoding (FR/CR conflict graphs),
and every loop family (sync, GC, IS-SGD, IS-GC, async, adaptive,
local-update, actor runtime) plus one cell of each figure runner.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core import CyclicRepetition, FractionalRepetition
from repro.experiments import (
    Fig11Config,
    Fig12Config,
    Fig13Config,
    run_condition,
    run_fig12,
    run_fig13,
)
from repro.runtime import SimulatedRuntime
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
from repro.straggler import DelayTrace, ExponentialDelay, TraceReplayModel
from repro.training import (
    AsyncSGDTrainer,
    ClassicGCStrategy,
    DistributedTrainer,
    ISGCStrategy,
    ISSGDStrategy,
    LogisticRegressionModel,
    SGD,
    SyncSGDStrategy,
    build_batch_streams,
    make_classification,
    partition_dataset,
)
from repro.training.adaptive_trainer import AdaptivePlacementTrainer
from repro.training.local_sgd import LocalUpdateTrainer

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent

N = 4
STEPS = 25


def _workload(n=N):
    ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
    streams = build_batch_streams(partition_dataset(ds, n, seed=2), 32, seed=3)
    return ds, streams


def _trace(n=N, steps=100, seed=4, mean=0.5):
    return DelayTrace.record(
        ExponentialDelay(mean), n, steps, np.random.default_rng(seed)
    )


def make_strategy(kind, seed=7):
    if kind == "sync":
        return SyncSGDStrategy(N)
    if kind == "issgd":
        return ISSGDStrategy(N, 2)
    if kind == "gc":
        return ClassicGCStrategy(
            CyclicRepetition(N, 2), rng=np.random.default_rng(seed)
        )
    if kind == "isgc-fr":
        return ISGCStrategy(
            FractionalRepetition(N, 2), wait_for=2,
            rng=np.random.default_rng(seed),
        )
    if kind == "isgc-cr":
        return ISGCStrategy(
            CyclicRepetition(N, 2), wait_for=2,
            rng=np.random.default_rng(seed),
        )
    raise ValueError(kind)


def make_cluster(strategy, trace):
    return ClusterSimulator(
        num_workers=N,
        partitions_per_worker=strategy.placement.partitions_per_worker,
        compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=TraceReplayModel(trace),
        rng=np.random.default_rng(0),
    )


def record_to_dict(r):
    return {
        "step": r.step,
        "sim_time": r.sim_time,
        "wait_time": r.wait_time,
        "num_available": r.num_available,
        "num_recovered": r.num_recovered,
        "recovery_fraction": r.recovery_fraction,
        "loss": r.loss,
        "grad_norm": r.grad_norm,
    }


def summary_to_dict(s):
    return {
        "scheme": s.scheme,
        "num_steps": s.num_steps,
        "total_sim_time": s.total_sim_time,
        "final_loss": s.final_loss,
        "reached_threshold": s.reached_threshold,
        "avg_step_time": s.avg_step_time,
        "avg_recovery_fraction": s.avg_recovery_fraction,
        "loss_curve": list(s.loss_curve),
        "time_curve": list(s.time_curve),
    }


def golden_flat_trainers():
    out = {}
    for kind in ("sync", "issgd", "gc", "isgc-fr", "isgc-cr"):
        ds, streams = _workload()
        trace = _trace()
        strategy = make_strategy(kind)
        trainer = DistributedTrainer(
            LogisticRegressionModel(8, seed=0), streams, strategy,
            make_cluster(strategy, trace), SGD(0.3), eval_data=ds,
        )
        summary = trainer.run(max_steps=STEPS)
        out[kind] = {
            "summary": summary_to_dict(summary),
            "records": [record_to_dict(r) for r in trainer.records],
            "final_parameters": list(trainer._model.get_parameters()),
        }
    return out


def golden_flat_no_eval():
    """Batch-loss fallback path (no eval_data) for the sync family."""
    out = {}
    for kind in ("issgd", "isgc-cr"):
        _, streams = _workload()
        trace = _trace()
        strategy = make_strategy(kind)
        trainer = DistributedTrainer(
            LogisticRegressionModel(8, seed=0), streams, strategy,
            make_cluster(strategy, trace), SGD(0.3),
        )
        summary = trainer.run(max_steps=10)
        out[kind] = {"loss_curve": list(summary.loss_curve)}
    return out


def golden_runtime():
    out = {}
    for kind in ("sync", "issgd", "gc", "isgc-fr", "isgc-cr"):
        ds, streams = _workload()
        trace = _trace()
        runtime = SimulatedRuntime(
            strategy=make_strategy(kind),
            model=LogisticRegressionModel(8, seed=0),
            streams=streams,
            optimizer=SGD(0.3),
            compute=ComputeModel(0.02, 0.02),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=TraceReplayModel(trace),
            eval_data=ds,
            rng=np.random.default_rng(0),
        )
        summary = runtime.run(max_steps=STEPS)
        out[kind] = {
            "summary": summary_to_dict(summary),
            "records": [record_to_dict(r) for r in runtime.master.records],
        }
    return out


def golden_async():
    ds, streams = _workload()
    trainer = AsyncSGDTrainer(
        model=LogisticRegressionModel(8, seed=0),
        streams=streams,
        optimizer=SGD(0.05),
        compute=ComputeModel(0.05, 0.05),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=ExponentialDelay(0.3, affected=[0, 1]),
        eval_data=ds,
        rng=np.random.default_rng(11),
    )
    summary = trainer.run(max_updates=60)
    return {
        "records": [
            {
                "update_index": r.update_index,
                "sim_time": r.sim_time,
                "worker": r.worker,
                "staleness": r.staleness,
                "loss": r.loss,
            }
            for r in trainer.records
        ],
        "summary": {
            "num_updates": summary.num_updates,
            "total_sim_time": summary.total_sim_time,
            "final_loss": summary.final_loss,
            "mean_staleness": summary.mean_staleness,
            "max_staleness": summary.max_staleness,
            "loss_curve": list(summary.loss_curve),
        },
        "final_parameters": list(trainer._model.get_parameters()),
    }


def golden_adaptive():
    n = 8
    ds, streams = _workload(n)
    placement = CyclicRepetition(n, 2)
    cluster = ClusterSimulator(
        n, placement.partitions_per_worker,
        compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=ExponentialDelay(0.5),
        rng=np.random.default_rng(0),
    )
    trainer = AdaptivePlacementTrainer(
        model=LogisticRegressionModel(8, seed=0),
        streams=streams,
        initial_placement=placement,
        wait_for=4,
        cluster=cluster,
        optimizer=SGD(0.3),
        eval_data=ds,
        network=NetworkModel(latency=0.001, bandwidth=1e9),
        rng=np.random.default_rng(7),
        review_every=10,
        partition_bytes=1e4,
    )
    summary = trainer.run(max_steps=30)
    return {
        "summary": summary_to_dict(summary),
        "records": [record_to_dict(r) for r in trainer.records],
        "migrations": [
            {
                "step": m.step,
                "from_label": m.from_label,
                "to_label": m.to_label,
                "partition_copies": m.partition_copies,
                "cost_seconds": m.cost_seconds,
                "sim_time": m.sim_time,
            }
            for m in trainer.migrations
        ],
        "placement_scheme": trainer.placement.scheme,
        "final_parameters": list(trainer._model.get_parameters()),
    }


def golden_local():
    ds, streams = _workload()
    strategy = ISGCStrategy(
        CyclicRepetition(4, 2), wait_for=2, rng=np.random.default_rng(5)
    )
    cluster = ClusterSimulator(
        4, 2, compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=TraceReplayModel(_trace()),
        rng=np.random.default_rng(0),
    )
    trainer = LocalUpdateTrainer(
        LogisticRegressionModel(8, seed=0), streams, strategy, cluster,
        local_steps=3, local_lr=0.1, eval_data=ds,
    )
    summary = trainer.run(max_rounds=20)
    return {
        "summary": summary_to_dict(summary),
        "records": [record_to_dict(r) for r in trainer.records],
        "final_parameters": list(trainer._model.get_parameters()),
    }


def golden_fig11_cell():
    points = run_condition(Fig11Config(), 1.5, 12)
    return [
        {
            "scheme": p.scheme,
            "wait_for": p.wait_for,
            "partitions_per_worker": p.partitions_per_worker,
            "avg_step_time": p.avg_step_time,
        }
        for p in points
    ]


def golden_fig12_small():
    cfg = Fig12Config(
        num_trials=1, max_steps=40, loss_threshold=0.0,
        recovery_trials=400, dataset_samples=512,
    )
    results = run_fig12(cfg)
    return {
        str(w): [
            {
                "scheme": p.scheme,
                "wait_for": p.wait_for,
                "recovery_pct": p.recovery_pct,
                "num_steps": p.num_steps,
                "avg_step_time": p.avg_step_time,
                "total_time": p.total_time,
                "reached_threshold": p.reached_threshold,
            }
            for p in points
        ]
        for w, points in results.items()
    }


def golden_fig13_small():
    cfg = Fig13Config(num_steps=30, recovery_trials=400, dataset_samples=512)
    points = run_fig13(cfg)
    return [
        {
            "c1": p.c1,
            "c2": p.c2,
            "mean_recovered": p.mean_recovered,
            "mean_fraction": p.mean_fraction,
            "loss_curve": list(p.loss_curve),
        }
        for p in points
    ]


GOLDENS = {
    "trainer_flat.json": golden_flat_trainers,
    "trainer_flat_no_eval.json": golden_flat_no_eval,
    "runtime_actor.json": golden_runtime,
    "async_sgd.json": golden_async,
    "adaptive.json": golden_adaptive,
    "local_sgd.json": golden_local,
    "fig11_cell.json": golden_fig11_cell,
    "fig12_small.json": golden_fig12_small,
    "fig13_small.json": golden_fig13_small,
}


def main():
    for name, fn in GOLDENS.items():
        path = GOLDEN_DIR / name
        data = fn()
        path.write_text(json.dumps(data, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    main()
