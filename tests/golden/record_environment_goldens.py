"""Record golden environment fingerprints + sampled streams.

Run as
``PYTHONPATH=src python tests/golden/record_environment_goldens.py`` —
it writes ``environments.json`` into this directory.  The file checked
into the repo was recorded at the commit introducing ``repro.env``,
with each model built through the **direct constructors** (the
pre-registry construction path), so the equivalence tests in
``tests/test_env.py`` prove the registry port is bit-for-bit neutral:
identical ``model_fingerprint`` digests and identical sampled streams
through ``make_delay_model(...)`` & co. as through
``ExponentialDelay(...)`` & co.

Per case the golden stores the layer, the registry kind + params, the
expected fingerprint, and a behaviour probe:

* delay models — ``sample_round(range(8), step, default_rng(7))`` for
  steps 0..3 (one shared generator, so stateful models like bursty
  exercise their transitions);
* failure models — the ``is_alive`` grid over 8 workers x 4 steps
  under ``default_rng(7)``;
* compute models — ``step_time(c)`` (or per-worker times) for c in
  1..4;
* network models — broadcast/transfer times for a 10_000-element
  gradient;
* contention models — fair-share arrivals of a fixed upload pattern.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.env import make_model, model_fingerprint

HERE = pathlib.Path(__file__).parent

#: (layer, kind, params) — every registered family, nested composites
#: included.  Trace-replay uses an inline table so the golden is
#: self-contained.
TRACE_TABLE = [
    [0.0, 0.5, 1.0, 0.0, 0.25, 0.0, 2.0, 0.125],
    [1.5, 0.0, 0.0, 3.0, 0.0, 0.75, 0.0, 0.5],
]

CASES = [
    ("delay", "none", {}),
    ("delay", "exponential", {"mean": 1.5}),
    ("delay", "exponential", {"mean": 2.0, "affected": [0, 2, 5]}),
    ("delay", "shifted-exponential", {"shift": 3.0, "mean": 0.5}),
    ("delay", "pareto", {"alpha": 2.5, "scale": 0.3}),
    ("delay", "bernoulli",
     {"probability": 0.3, "delay": {"kind": "exponential", "mean": 2.0}}),
    ("delay", "persistent",
     {"stragglers": [0, 1], "mean": 3.0, "background_mean": 0.2}),
    ("delay", "persistent",
     {"stragglers": [1, 3],
      "delay": {"kind": "shifted-exponential", "shift": 3.0, "mean": 0.5},
      "background": {"kind": "exponential", "mean": 0.2}}),
    ("delay", "diurnal",
     {"base": {"kind": "exponential", "mean": 1.0},
      "period_steps": 3, "amplitude": 0.5}),
    ("delay", "bursty",
     {"burst": {"kind": "exponential", "mean": 4.0},
      "enter_burst": 0.3, "exit_burst": 0.4}),
    ("delay", "mixture",
     {"models": [{"kind": "exponential", "mean": 0.2},
                 {"kind": "shifted-exponential", "shift": 2.0, "mean": 1.0}],
      "weights": [0.7, 0.3]}),
    ("delay", "trace-replay", {"delays": TRACE_TABLE}),
    ("failure", "none", {}),
    ("failure", "permanent-crashes", {"crashed_workers": [2], "at_step": 1}),
    ("failure", "transient-dropouts", {"probability": 0.2}),
    ("failure", "composite",
     {"models": [{"kind": "permanent-crashes", "crashed_workers": [5]},
                 {"kind": "transient-dropouts", "probability": 0.1}]}),
    ("compute", "uniform", {"base": 0.05, "per_partition": 0.1}),
    ("compute", "heterogeneous",
     {"speed_factors": {"0": 2.0, "3": 0.5}, "base": 0.05,
      "per_partition": 0.1}),
    ("network", "uniform", {"latency": 0.002, "bandwidth": 1e9}),
    ("network", "ideal", {}),
    ("contention", "fair-share", {"capacity_bytes_per_s": 1e9}),
]

WORKERS = list(range(8))
STEPS = 4
ELEMENTS = 10_000


def probe(layer: str, model) -> dict:
    """Deterministic behaviour snapshot of one model."""
    if layer == "delay":
        rng = np.random.default_rng(7)
        return {
            "delays": [
                [float(x) for x in model.sample_round(WORKERS, step, rng)]
                for step in range(STEPS)
            ]
        }
    if layer == "failure":
        rng = np.random.default_rng(7)
        return {
            "alive": [
                [bool(model.is_alive(w, step, rng)) for w in WORKERS]
                for step in range(STEPS)
            ]
        }
    if layer == "compute":
        if hasattr(model, "step_time_for"):
            return {
                "worker_times": [
                    [model.step_time_for(w, c) for w in WORKERS]
                    for c in range(1, 5)
                ]
            }
        return {"times": [model.step_time(c) for c in range(1, 5)]}
    if layer == "network":
        return {
            "broadcast": model.broadcast_time(ELEMENTS, len(WORKERS)),
            "transfer": model.transfer_time(ELEMENTS),
        }
    if layer == "contention":
        starts = {w: 0.1 * w for w in WORKERS}
        result = model.round_arrivals(starts, ELEMENTS)
        return {
            "arrivals": {str(w): t for w, t in sorted(result.arrivals.items())}
        }
    raise ValueError(f"unknown layer {layer!r}")


def main() -> None:
    cases = []
    for layer, kind, params in CASES:
        model = make_model(layer, kind, **json.loads(json.dumps(params)))
        cases.append({
            "layer": layer,
            "kind": kind,
            "params": params,
            "fingerprint": model_fingerprint(model),
            "probe": probe(layer, model),
        })
    out = HERE / "environments.json"
    out.write_text(json.dumps({"cases": cases}, indent=1, sort_keys=True))
    print(f"wrote {len(cases)} cases to {out}")


if __name__ == "__main__":
    main()
