"""Record golden placement fingerprints + decode selections.

Run as ``PYTHONPATH=src python tests/golden/record_placement_goldens.py``
— it writes ``placement_schemes.json`` into this directory.  The file
checked into the repo was recorded at the commit introducing
``repro.core.scheme``, using the **direct constructors** (the
pre-registry construction path), so the equivalence tests in
``tests/test_scheme.py`` prove the registry port is bit-for-bit
neutral: identical ``Placement.fingerprint`` digests and identical
per-seed decode selections through ``make_placement(...)`` as through
``FractionalRepetition(...)`` & co.

Per case the golden stores the family name + registry params, the
expected fingerprint, and a handful of decodes: (seed, availability
mask) → sorted selected workers.  Decoders draw fairness tie-breaks
from ``default_rng(seed)``, so a fresh decoder per decode makes the
selections exactly reproducible.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.core.cyclic import CyclicRepetition
from repro.core.decoders import decoder_for
from repro.core.explicit import ExplicitPlacement
from repro.core.fractional import FractionalRepetition
from repro.core.hybrid import HybridRepetition

HERE = pathlib.Path(__file__).parent

#: family → (registry params, direct construction).  The direct
#: constructions are the pre-port reference; the registry params must
#: reproduce them exactly (asserted at record time and in the tests).
EXPLICIT_ROWS = [[0, 1], [1, 2], [2, 3], [3, 4], [4, 0]]
HETERO_ASSIGNMENT = [1, 0, 3, 2, 5, 4]

CASES = [
    ("fr", {"num_workers": 6, "partitions_per_worker": 2},
     lambda: FractionalRepetition(6, 2)),
    ("fr", {"num_workers": 12, "partitions_per_worker": 3},
     lambda: FractionalRepetition(12, 3)),
    ("cr", {"num_workers": 5, "partitions_per_worker": 2},
     lambda: CyclicRepetition(5, 2)),
    ("cr", {"num_workers": 9, "partitions_per_worker": 3},
     lambda: CyclicRepetition(9, 3)),
    ("cr", {"num_workers": 8, "partitions_per_worker": 1},
     lambda: CyclicRepetition(8, 1)),
    ("hr", {"num_workers": 12, "c1": 2, "c2": 1, "num_groups": 3},
     lambda: HybridRepetition(12, 2, 1, 3)),
    ("hr", {"num_workers": 8, "c1": 2, "c2": 0, "num_groups": 2},
     lambda: HybridRepetition(8, 2, 0, 2)),
    ("hr", {"num_workers": 6, "c1": 0, "c2": 2, "num_groups": 1},
     lambda: HybridRepetition(6, 0, 2, 1)),
    ("explicit", {"rows": EXPLICIT_ROWS},
     lambda: ExplicitPlacement.from_rows(EXPLICIT_ROWS)),
    ("hetero",
     {"num_workers": 6, "partitions_per_worker": 2, "base": "cr",
      "assignment": HETERO_ASSIGNMENT},
     lambda: ExplicitPlacement({
         m: CyclicRepetition(6, 2).partitions_of(w)
         for m, w in enumerate(HETERO_ASSIGNMENT)
     })),
    ("comm-efficient",
     {"num_workers": 8, "partitions_per_worker": 4, "blocks": 2},
     lambda: FractionalRepetition(8, 4)),
    ("multimessage",
     {"num_workers": 8, "partitions_per_worker": 3, "base": "cr"},
     lambda: CyclicRepetition(8, 3)),
]


def masks_for(n: int) -> list:
    """Deterministic availability masks: full, evens, and two random."""
    masks = [list(range(n)), list(range(0, n, 2))]
    for i in (0, 1):
        rng = np.random.default_rng(99 + i)
        size = int(rng.integers(1, n))
        masks.append(sorted(int(x) for x in rng.choice(n, size, replace=False)))
    return [sorted(set(m)) for m in masks if m]


def record() -> dict:
    cases = []
    for family, params, build in CASES:
        placement = build()
        n = placement.num_workers
        decodes = []
        for seed in (0, 1, 2):
            for mask in masks_for(n):
                decoder = decoder_for(
                    placement, rng=np.random.default_rng(seed)
                )
                result = decoder.decode(mask)
                decodes.append({
                    "seed": seed,
                    "available": mask,
                    "selected": sorted(result.selected_workers),
                })
        cases.append({
            "family": family,
            "params": params,
            "fingerprint": placement.fingerprint,
            "scheme": placement.scheme,
            "decodes": decodes,
        })
    return {"cases": cases}


def main() -> None:
    payload = record()
    out = HERE / "placement_schemes.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    total = sum(len(c["decodes"]) for c in payload["cases"])
    print(f"wrote {out} ({len(payload['cases'])} cases, {total} decodes)")


if __name__ == "__main__":
    main()
