"""Unit tests for the lightweight undirected graph."""

import pytest

from repro.graphs import Graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert len(g) == 0
        assert g.number_of_edges() == 0

    def test_vertices_only(self):
        g = Graph(vertices=[1, 2, 3])
        assert g.vertices == frozenset({1, 2, 3})
        assert g.number_of_edges() == 0

    def test_edges_create_vertices(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        assert g.vertices == frozenset({0, 1, 2})
        assert g.number_of_edges() == 2

    def test_duplicate_edges_collapse(self):
        g = Graph(edges=[(0, 1), (1, 0), (0, 1)])
        assert g.number_of_edges() == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError, match="self-loop"):
            g.add_edge(3, 3)

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex("a")
        g.add_vertex("a")
        assert len(g) == 1


class TestQueries:
    def test_has_edge_symmetry(self):
        g = Graph(edges=[(0, 1)])
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)

    def test_neighbors(self):
        g = Graph(edges=[(0, 1), (0, 2)])
        assert g.neighbors(0) == frozenset({1, 2})
        assert g.neighbors(1) == frozenset({0})

    def test_degree(self):
        g = Graph(edges=[(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.degree(3) == 1

    def test_contains_and_iter(self):
        g = Graph(vertices=[5, 7])
        assert 5 in g
        assert 6 not in g
        assert sorted(g) == [5, 7]

    def test_equality(self):
        a = Graph(edges=[(0, 1), (2, 3)])
        b = Graph(edges=[(2, 3), (1, 0)])
        assert a == b
        b.add_edge(0, 2)
        assert a != b

    def test_equality_other_type(self):
        assert Graph() != 42


class TestDerived:
    def test_subgraph_keeps_internal_edges(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        sub = g.subgraph([1, 2])
        assert sub.vertices == frozenset({1, 2})
        assert sub.has_edge(1, 2)
        assert sub.number_of_edges() == 1

    def test_subgraph_missing_vertex_raises(self):
        g = Graph(vertices=[0, 1])
        with pytest.raises(KeyError):
            g.subgraph([0, 9])

    def test_subgraph_empty(self):
        g = Graph(edges=[(0, 1)])
        sub = g.subgraph([])
        assert len(sub) == 0

    def test_complement_of_path(self):
        g = Graph(vertices=[0, 1, 2], edges=[(0, 1), (1, 2)])
        comp = g.complement()
        assert comp.edges == frozenset({frozenset({0, 2})})

    def test_complement_involution(self):
        g = Graph(vertices=range(5), edges=[(0, 1), (2, 4), (1, 3)])
        assert g.complement().complement() == g

    def test_is_independent_set(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3)])
        assert g.is_independent_set({0, 2})
        assert g.is_independent_set({0, 3})
        assert not g.is_independent_set({0, 1})
        assert g.is_independent_set(set())

    def test_independent_set_with_duplicates_rejected(self):
        g = Graph(vertices=[0, 1])
        assert not g.is_independent_set([0, 0])

    def test_independent_set_unknown_vertex(self):
        g = Graph(vertices=[0])
        assert not g.is_independent_set({42})

    def test_is_clique(self):
        g = Graph(edges=[(0, 1), (1, 2), (0, 2), (2, 3)])
        assert g.is_clique({0, 1, 2})
        assert not g.is_clique({0, 1, 3})
        assert g.is_clique({3})

    def test_connected_components(self):
        g = Graph(vertices=[9], edges=[(0, 1), (1, 2), (5, 6)])
        comps = {frozenset(c) for c in g.connected_components()}
        assert comps == {
            frozenset({0, 1, 2}),
            frozenset({5, 6}),
            frozenset({9}),
        }
