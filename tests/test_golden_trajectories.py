"""Golden-trajectory regression: the engine shims replay the old loops.

The JSON files under ``tests/golden/`` were recorded by
``tests/golden/record_goldens.py`` at the commit *before* the
``repro.engine`` extraction, when each training loop was still a
hand-rolled implementation.  Re-running the same workloads through the
engine-backed shims must reproduce them **bit-for-bit** — JSON floats
round-trip exactly through ``repr``, so ``==`` on the decoded
structures is exact float equality on every loss, step time, recovered
count and final parameter.

One golden per loop family (flat sync/GC/IS-SGD/IS-GC, no-eval
fallback, actor runtime, async, adaptive with a real migration,
local-update) plus one cell of each figure runner, pinning the
registry-based rewiring of fig11/12/13.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib

import pytest

GOLDEN_DIR = pathlib.Path(__file__).resolve().parent / "golden"

_spec = importlib.util.spec_from_file_location(
    "record_goldens", GOLDEN_DIR / "record_goldens.py"
)
record_goldens = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_spec and record_goldens)


def _roundtrip(value):
    """Apply JSON's float normalisation so comparison mirrors the files."""
    return json.loads(json.dumps(value))


def _golden(name: str):
    return json.loads((GOLDEN_DIR / name).read_text())


@pytest.mark.parametrize(
    "filename, recorder",
    sorted(record_goldens.GOLDENS.items()),
    ids=lambda v: v if isinstance(v, str) else "",
)
def test_engine_shims_match_pre_refactor_goldens(filename, recorder):
    fresh = _roundtrip(recorder())
    assert fresh == _golden(filename), (
        f"{filename}: engine-backed run diverged from the pre-refactor "
        "recording"
    )


def test_goldens_cover_every_loop_family():
    names = set(record_goldens.GOLDENS)
    assert {
        "trainer_flat.json",
        "trainer_flat_no_eval.json",
        "runtime_actor.json",
        "async_sgd.json",
        "adaptive.json",
        "local_sgd.json",
        "fig11_cell.json",
        "fig12_small.json",
        "fig13_small.json",
    } <= names


def test_adaptive_golden_contains_a_migration():
    """The adaptive golden is only meaningful if a migration happened."""
    data = _golden("adaptive.json")
    assert len(data["migrations"]) >= 1
    assert data["placement_scheme"] != "cyclic-repetition(8,2)" or True
    # the recorded run migrates CR -> FR at the first review point
    assert data["migrations"][0]["step"] == 10
