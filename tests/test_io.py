"""Tests for serialisation round-trips."""

import json

import numpy as np
import pytest

from repro import io
from repro.exceptions import ConfigurationError
from repro.straggler import DelayTrace, ExponentialDelay
from repro.types import StepRecord, TrainingSummary


@pytest.fixture
def summary():
    return TrainingSummary(
        scheme="is-gc-cr",
        num_steps=3,
        total_sim_time=4.5,
        final_loss=0.25,
        reached_threshold=True,
        avg_step_time=1.5,
        avg_recovery_fraction=0.875,
        loss_curve=(1.0, 0.5, 0.25),
        time_curve=(1.5, 3.0, 4.5),
    )


@pytest.fixture
def records():
    return [
        StepRecord(
            step=i, sim_time=float(i + 1), wait_time=1.0,
            num_available=2, num_recovered=4, recovery_fraction=1.0,
            loss=1.0 / (i + 1), grad_norm=0.1 * i,
        )
        for i in range(4)
    ]


class TestSummaryRoundTrip:
    def test_dict_round_trip(self, summary):
        clone = io.summary_from_dict(io.summary_to_dict(summary))
        assert clone == summary

    def test_file_round_trip(self, summary, tmp_path):
        path = tmp_path / "summary.json"
        io.save_summary(summary, path)
        assert io.load_summary(path) == summary

    def test_file_is_valid_json(self, summary, tmp_path):
        path = tmp_path / "summary.json"
        io.save_summary(summary, path)
        payload = json.loads(path.read_text())
        assert payload["scheme"] == "is-gc-cr"

    def test_missing_key_rejected(self, summary):
        payload = io.summary_to_dict(summary)
        del payload["scheme"]
        with pytest.raises(ConfigurationError, match="missing"):
            io.summary_from_dict(payload)


class TestRecordsRoundTrip:
    def test_dict_round_trip(self, records):
        clones = io.records_from_dicts(io.records_to_dicts(records))
        assert clones == records

    def test_file_round_trip(self, records, tmp_path):
        path = tmp_path / "records.json"
        io.save_records(records, path)
        assert io.load_records(path) == records

    def test_grad_norm_defaults_to_zero(self):
        payload = [{
            "step": 0, "sim_time": 1.0, "wait_time": 1.0,
            "num_available": 1, "num_recovered": 1,
            "recovery_fraction": 0.25, "loss": 2.0,
        }]
        loaded = io.records_from_dicts(payload)
        assert loaded[0].grad_norm == 0.0


class TestTraceRoundTrip:
    def test_file_round_trip(self, tmp_path):
        trace = DelayTrace.record(
            ExponentialDelay(1.0), 3, 5, np.random.default_rng(0)
        )
        path = tmp_path / "trace.json"
        io.save_trace(trace, path)
        loaded = io.load_trace(path)
        np.testing.assert_allclose(loaded.delays, trace.delays)

    def test_loaded_trace_replays_identically(self, tmp_path):
        trace = DelayTrace.record(
            ExponentialDelay(2.0), 4, 6, np.random.default_rng(1)
        )
        path = tmp_path / "trace.json"
        io.save_trace(trace, path)
        loaded = io.load_trace(path)
        for step in range(6):
            for worker in range(4):
                assert loaded.delay(worker, step) == trace.delay(worker, step)
