"""Tests for NumPy models, including finite-difference gradient checks."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.training import (
    LinearRegressionModel,
    LogisticRegressionModel,
    MLPClassifier,
    SoftmaxRegressionModel,
)


def finite_difference_grad(model, x, y, eps=1e-6):
    """Central finite differences of the batch loss w.r.t. parameters."""
    base = model.get_parameters()
    grad = np.zeros_like(base)
    for i in range(base.size):
        bump = np.zeros_like(base)
        bump[i] = eps
        model.set_parameters(base + bump)
        hi = model.loss(x, y)
        model.set_parameters(base - bump)
        lo = model.loss(x, y)
        grad[i] = (hi - lo) / (2 * eps)
    model.set_parameters(base)
    return grad


def _regression_batch(rng, n=16, d=4):
    x = rng.normal(size=(n, d))
    y = rng.normal(size=n)
    return x, y


def _classification_batch(rng, n=16, d=4, k=3):
    x = rng.normal(size=(n, d))
    y = rng.integers(k, size=n)
    return x, y


class TestParameterInterface:
    @pytest.mark.parametrize("factory,expected", [
        (lambda: LinearRegressionModel(5), 6),
        (lambda: LogisticRegressionModel(5), 6),
        (lambda: SoftmaxRegressionModel(5, 3), 18),
        (lambda: MLPClassifier(4, 8, 3), 4 * 8 + 8 + 8 * 3 + 3),
    ])
    def test_num_parameters(self, factory, expected):
        assert factory().num_parameters == expected

    @pytest.mark.parametrize("factory", [
        lambda: LinearRegressionModel(5),
        lambda: LogisticRegressionModel(5),
        lambda: SoftmaxRegressionModel(5, 3),
        lambda: MLPClassifier(4, 8, 3),
    ])
    def test_get_set_roundtrip(self, factory, rng):
        model = factory()
        params = rng.normal(size=model.num_parameters)
        model.set_parameters(params)
        np.testing.assert_allclose(model.get_parameters(), params)

    def test_set_wrong_size(self):
        model = LinearRegressionModel(3)
        with pytest.raises(TrainingError):
            model.set_parameters(np.zeros(2))

    def test_get_returns_copy(self):
        model = LinearRegressionModel(3)
        params = model.get_parameters()
        params[:] = 99.0
        assert not np.allclose(model.get_parameters(), 99.0)

    @pytest.mark.parametrize("ctor,args", [
        (LinearRegressionModel, (0,)),
        (LogisticRegressionModel, (-1,)),
        (SoftmaxRegressionModel, (4, 1)),
        (MLPClassifier, (4, 0, 3)),
    ])
    def test_invalid_construction(self, ctor, args):
        with pytest.raises(TrainingError):
            ctor(*args)


class TestGradientsMatchFiniteDifferences:
    def test_linear_regression(self, rng):
        model = LinearRegressionModel(4, seed=1)
        x, y = _regression_batch(rng)
        _, grad = model.loss_and_gradient(x, y)
        np.testing.assert_allclose(
            grad, finite_difference_grad(model, x, y), atol=1e-5
        )

    def test_logistic_regression(self, rng):
        model = LogisticRegressionModel(4, seed=1)
        x = rng.normal(size=(16, 4))
        y = rng.integers(2, size=16)
        _, grad = model.loss_and_gradient(x, y)
        np.testing.assert_allclose(
            grad, finite_difference_grad(model, x, y), atol=1e-5
        )

    def test_softmax_regression(self, rng):
        model = SoftmaxRegressionModel(4, 3, seed=1)
        x, y = _classification_batch(rng)
        _, grad = model.loss_and_gradient(x, y)
        np.testing.assert_allclose(
            grad, finite_difference_grad(model, x, y), atol=1e-5
        )

    def test_mlp(self, rng):
        model = MLPClassifier(4, 6, 3, seed=1)
        x, y = _classification_batch(rng)
        _, grad = model.loss_and_gradient(x, y)
        np.testing.assert_allclose(
            grad, finite_difference_grad(model, x, y), atol=1e-4
        )


class TestLearning:
    """Each model must actually fit an easy task with plain SGD."""

    def _sgd_fit(self, model, x, y, lr, steps):
        for _ in range(steps):
            _, grad = model.loss_and_gradient(x, y)
            model.set_parameters(model.get_parameters() - lr * grad)
        return model.loss(x, y)

    def test_linear_regression_fits_exact_line(self, rng):
        x = rng.normal(size=(64, 3))
        beta = np.array([1.0, -2.0, 0.5])
        y = x @ beta + 0.3
        model = LinearRegressionModel(3, seed=0)
        final = self._sgd_fit(model, x, y, lr=0.2, steps=300)
        assert final < 1e-3

    def test_logistic_separates_blobs(self, rng):
        x = np.vstack([
            rng.normal(loc=-2, size=(40, 2)),
            rng.normal(loc=+2, size=(40, 2)),
        ])
        y = np.array([0] * 40 + [1] * 40)
        model = LogisticRegressionModel(2, seed=0)
        self._sgd_fit(model, x, y, lr=0.5, steps=300)
        assert np.mean(model.predict(x) == y) > 0.95

    def test_softmax_fits_three_blobs(self, rng):
        centers = np.array([[-4, 0], [4, 0], [0, 4]])
        labels = rng.integers(3, size=90)
        x = centers[labels] + rng.normal(size=(90, 2))
        model = SoftmaxRegressionModel(2, 3, seed=0)
        self._sgd_fit(model, x, labels, lr=0.5, steps=400)
        assert np.mean(model.predict(x) == labels) > 0.9

    def test_mlp_fits_xor(self, rng):
        """XOR is not linearly separable — only the MLP can solve it."""
        x = rng.normal(size=(400, 2))
        y = ((x[:, 0] > 0) ^ (x[:, 1] > 0)).astype(np.int64)
        model = MLPClassifier(2, 16, 2, seed=0)
        self._sgd_fit(model, x, y, lr=0.5, steps=800)
        assert np.mean(model.predict(x) == y) > 0.9

    def test_loss_decreases_monotone_small_lr(self, rng):
        model = SoftmaxRegressionModel(4, 3, seed=2)
        x, y = _classification_batch(rng, n=64)
        losses = []
        for _ in range(20):
            loss, grad = model.loss_and_gradient(x, y)
            losses.append(loss)
            model.set_parameters(model.get_parameters() - 0.01 * grad)
        assert all(b <= a + 1e-12 for a, b in zip(losses, losses[1:]))
