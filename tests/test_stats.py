"""Tests for multi-trial statistics."""

import numpy as np
import pytest

from repro.analysis import (
    bootstrap_ci,
    paired_comparison,
    summarize_trials,
)
from repro.exceptions import ConfigurationError


class TestSummarizeTrials:
    def test_mean_and_count(self):
        s = summarize_trials([1.0, 2.0, 3.0])
        assert s.count == 3
        assert s.mean == pytest.approx(2.0)
        assert s.std == pytest.approx(1.0)

    def test_ci_contains_mean(self):
        s = summarize_trials([4.0, 5.0, 6.0, 7.0])
        assert s.ci_low <= s.mean <= s.ci_high

    def test_ci_symmetric(self):
        s = summarize_trials([1.0, 3.0, 5.0])
        assert (s.mean - s.ci_low) == pytest.approx(s.ci_high - s.mean)

    def test_single_trial_degenerate(self):
        s = summarize_trials([2.5])
        assert s.ci_low == s.ci_high == s.mean == 2.5

    def test_constant_trials_zero_width(self):
        s = summarize_trials([3.0, 3.0, 3.0])
        assert s.ci_low == pytest.approx(3.0)
        assert s.ci_high == pytest.approx(3.0)

    def test_more_trials_narrower_ci(self):
        rng = np.random.default_rng(0)
        small = summarize_trials(rng.normal(size=5).tolist())
        large = summarize_trials(rng.normal(size=200).tolist())
        assert (large.ci_high - large.ci_low) < (small.ci_high - small.ci_low)

    def test_ci_coverage_empirical(self):
        """~95% of CIs from N(0,1) samples should contain 0."""
        rng = np.random.default_rng(1)
        hits = 0
        trials = 400
        for _ in range(trials):
            s = summarize_trials(rng.normal(size=10).tolist())
            if s.ci_low <= 0.0 <= s.ci_high:
                hits += 1
        assert hits / trials == pytest.approx(0.95, abs=0.04)

    def test_format(self):
        assert "±" in summarize_trials([1.0, 2.0]).format()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            summarize_trials([])
        with pytest.raises(ConfigurationError):
            summarize_trials([1.0], confidence=1.5)


class TestPairedComparison:
    def test_direction(self):
        a = [1.0, 1.1, 0.9, 1.0]
        b = [2.0, 2.1, 1.9, 2.0]
        comp = paired_comparison(a, b)
        assert comp.mean_difference == pytest.approx(1.0)
        assert comp.significant

    def test_no_difference_not_significant(self):
        rng = np.random.default_rng(2)
        base = rng.normal(size=20)
        noise_a = base + 0.01 * rng.normal(size=20)
        noise_b = base + 0.01 * rng.normal(size=20)
        comp = paired_comparison(noise_a.tolist(), noise_b.tolist())
        assert not comp.significant

    def test_pairing_beats_trace_variance(self):
        """The point of pairing: shared trace noise cancels out."""
        rng = np.random.default_rng(3)
        trace_noise = 10.0 * rng.normal(size=12)  # dominates
        a = trace_noise + 1.0 + 0.1 * rng.normal(size=12)
        b = trace_noise + 1.5 + 0.1 * rng.normal(size=12)
        comp = paired_comparison(a.tolist(), b.tolist())
        assert comp.significant
        assert comp.mean_difference == pytest.approx(0.5, abs=0.15)

    def test_p_value_present_with_scipy(self):
        comp = paired_comparison([1.0, 2.0, 3.0], [2.0, 3.0, 4.5])
        assert comp.p_value is not None
        assert 0.0 <= comp.p_value <= 1.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            paired_comparison([1.0], [1.0, 2.0])
        with pytest.raises(ConfigurationError):
            paired_comparison([1.0], [1.0])


class TestBootstrap:
    def test_ci_contains_true_mean(self):
        rng = np.random.default_rng(4)
        values = (5.0 + rng.normal(size=100)).tolist()
        lo, hi = bootstrap_ci(values, seed=1)
        assert lo <= 5.1 and hi >= 4.9

    def test_custom_statistic(self):
        values = [1.0, 2.0, 3.0, 4.0, 100.0]
        lo, hi = bootstrap_ci(values, statistic=np.median, seed=2)
        assert lo >= 1.0 and hi <= 100.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            bootstrap_ci([])
        with pytest.raises(ConfigurationError):
            bootstrap_ci([1.0], resamples=0)
