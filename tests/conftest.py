"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import CyclicRepetition, FractionalRepetition, HybridRepetition


@pytest.fixture
def rng():
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


def all_fr_params(max_n: int = 12):
    """Every valid (n, c) for FR up to max_n."""
    for n in range(1, max_n + 1):
        for c in range(1, n + 1):
            if n % c == 0:
                yield n, c


def all_cr_params(max_n: int = 12):
    """Every valid (n, c) for CR up to max_n."""
    for n in range(1, max_n + 1):
        for c in range(1, n + 1):
            yield n, c


def all_hr_params(ns=(4, 6, 8, 10, 12)):
    """Every constructible (n, c1, c2, g) for HR over the given n."""
    for n in ns:
        for g in (x for x in range(1, n + 1) if n % x == 0):
            n0 = n // g
            for c in range(1, n + 1):
                for c1 in range(0, c + 1):
                    c2 = c - c1
                    try:
                        HybridRepetition(n, c1, c2, g)
                    except Exception:
                        continue
                    yield n, c1, c2, g


def make_placement(kind: str, n: int, c: int, g: int | None = None):
    """Factory used by parametrised cross-scheme tests."""
    if kind == "fr":
        return FractionalRepetition(n, c)
    if kind == "cr":
        return CyclicRepetition(n, c)
    if kind == "hr":
        assert g is not None
        return HybridRepetition(n, c - 1, 1, g)
    raise ValueError(kind)
