"""Tests for the analysis layer: recovery stats, theory checks, reporting."""

import numpy as np
import pytest

from repro.analysis import (
    Series,
    Table,
    check_bounds_sampled,
    expected_alpha,
    fairness_gap,
    monte_carlo_recovery,
    recovery_curve,
    series_table,
)
from repro.core import CyclicRepetition, FractionalRepetition
from repro.exceptions import ConfigurationError


class TestMonteCarloRecovery:
    def test_full_availability_full_recovery(self):
        stats = monte_carlo_recovery(CyclicRepetition(4, 2), 4, trials=50)
        assert stats.mean_recovered == pytest.approx(4.0)
        assert stats.min_recovered == 4

    def test_w1_recovers_c(self):
        stats = monte_carlo_recovery(CyclicRepetition(6, 3), 1, trials=50)
        assert stats.mean_recovered == pytest.approx(3.0)

    def test_fr_beats_cr_at_w2_n4(self):
        """The Fig. 12(a) effect at w=2."""
        fr = monte_carlo_recovery(FractionalRepetition(4, 2), 2, trials=3000)
        cr = monte_carlo_recovery(CyclicRepetition(4, 2), 2, trials=3000)
        assert fr.mean_recovered > cr.mean_recovered

    def test_exact_expected_value_fr(self):
        """FR(4,2), w=2: P(same group) = 2/6 → E[recovered] = 10/3."""
        stats = monte_carlo_recovery(
            FractionalRepetition(4, 2), 2, trials=20_000, seed=3
        )
        assert stats.mean_recovered == pytest.approx(10 / 3, rel=0.02)

    def test_exact_expected_value_cr(self):
        """CR(4,2), w=2: 4 of 6 pairs adjacent → E = (4·2 + 2·4)/6."""
        stats = monte_carlo_recovery(
            CyclicRepetition(4, 2), 2, trials=20_000, seed=4
        )
        assert stats.mean_recovered == pytest.approx(16 / 6, rel=0.02)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            monte_carlo_recovery(CyclicRepetition(4, 2), 0)
        with pytest.raises(ConfigurationError):
            monte_carlo_recovery(CyclicRepetition(4, 2), 2, trials=0)

    def test_describe(self):
        stats = monte_carlo_recovery(CyclicRepetition(4, 2), 2, trials=20)
        assert "w=2" in stats.describe()

    def test_recovery_curve_monotone_in_w(self):
        curve = recovery_curve(CyclicRepetition(6, 2), trials=1500, seed=0)
        means = [curve[w].mean_recovered for w in range(1, 7)]
        assert all(b >= a - 0.1 for a, b in zip(means, means[1:]))

    def test_fairness_gap_zero_for_symmetric_full(self):
        stats = monte_carlo_recovery(CyclicRepetition(4, 2), 4, trials=100)
        assert fairness_gap(stats) == pytest.approx(0.0)


class TestTheoryHelpers:
    def test_sampled_bounds_hold(self):
        pl = CyclicRepetition(10, 3)
        for check in check_bounds_sampled(pl, 5, trials=100, seed=0):
            assert check.holds

    def test_expected_alpha_between_bounds(self):
        from repro.core import alpha_lower_bound, alpha_upper_bound
        pl = CyclicRepetition(8, 2)
        val = expected_alpha(pl, 4, trials=500, seed=1)
        assert alpha_lower_bound(8, 2, 4) <= val <= alpha_upper_bound(8, 2, 4)

    def test_sampled_validation(self):
        with pytest.raises(ConfigurationError):
            list(check_bounds_sampled(CyclicRepetition(4, 2), 9, trials=1))


class TestReporting:
    def test_table_render_contains_cells(self):
        t = Table(title="T", columns=["a", "b"])
        t.add_row(1, "x")
        t.add_row(2.5, "y")
        text = t.render()
        assert "T" in text and "a" in text and "2.5" in text and "y" in text

    def test_table_row_width_mismatch(self):
        t = Table(title="T", columns=["a", "b"])
        with pytest.raises(ConfigurationError):
            t.add_row(1)

    def test_table_render_empty(self):
        t = Table(title="T", columns=["a"])
        assert "T" in t.render()

    def test_table_show_prints(self, capsys):
        t = Table(title="Demo", columns=["x"])
        t.add_row(1)
        t.show()
        assert "Demo" in capsys.readouterr().out

    def test_series_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            Series("s", [1, 2], [1.0])

    def test_series_table(self):
        s1 = Series("one", [1, 2], [0.1, 0.2])
        s2 = Series("two", [1, 2], [0.3, 0.4])
        t = series_table("fig", "w", [s1, s2])
        text = t.render()
        assert "one" in text and "two" in text and "0.4" in text

    def test_series_table_mismatched_axes(self):
        with pytest.raises(ConfigurationError):
            series_table("fig", "w", [
                Series("a", [1, 2], [0.0, 0.0]),
                Series("b", [1, 3], [0.0, 0.0]),
            ])

    def test_series_table_empty(self):
        with pytest.raises(ConfigurationError):
            series_table("fig", "w", [])
