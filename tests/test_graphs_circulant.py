"""Tests for circulant graphs and circular distance."""

import networkx as nx
import pytest
from hypothesis import given, strategies as st

from repro.graphs import (
    Graph,
    circulant_graph,
    circular_distance,
    is_circulant_with_offsets,
)


class TestCircularDistance:
    def test_adjacent(self):
        assert circular_distance(0, 1, 8) == 1

    def test_wraparound(self):
        assert circular_distance(0, 7, 8) == 1

    def test_opposite(self):
        assert circular_distance(0, 4, 8) == 4

    def test_same(self):
        assert circular_distance(3, 3, 8) == 0

    def test_symmetry_examples(self):
        for n in (3, 5, 8, 13):
            for x in range(n):
                for y in range(n):
                    assert circular_distance(x, y, n) == circular_distance(y, x, n)

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            circular_distance(0, 1, 0)

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=-100, max_value=100),
        st.integers(min_value=-100, max_value=100),
    )
    def test_bounded_by_half_n(self, n, x, y):
        d = circular_distance(x, y, n)
        assert 0 <= d <= n // 2

    @given(
        st.integers(min_value=1, max_value=50),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=0, max_value=100),
        st.integers(min_value=-3, max_value=3),
    )
    def test_rotation_invariance(self, n, x, y, shift):
        assert circular_distance(x, y, n) == circular_distance(
            x + shift * n + 1, y + shift * n + 1, n
        )


class TestCirculantGraph:
    def test_cycle(self):
        g = circulant_graph(5, [1])
        assert g.number_of_edges() == 5
        for v in range(5):
            assert g.degree(v) == 2

    def test_complete_when_all_offsets(self):
        n = 6
        g = circulant_graph(n, range(1, n // 2 + 1))
        assert g.number_of_edges() == n * (n - 1) // 2

    def test_offsets_mod_n(self):
        assert circulant_graph(5, [1]) == circulant_graph(5, [6])
        assert circulant_graph(5, [2]) == circulant_graph(5, [-2])

    def test_zero_offset_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            circulant_graph(5, [0])

    def test_offset_multiple_of_n_rejected(self):
        with pytest.raises(ValueError, match="self-loop"):
            circulant_graph(5, [10])

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            circulant_graph(0, [1])

    @pytest.mark.parametrize("n,offsets", [
        (4, [1]), (6, [1, 2]), (8, [1, 3]), (9, [2]), (10, [1, 2, 3]),
    ])
    def test_matches_networkx(self, n, offsets):
        ours = circulant_graph(n, offsets)
        theirs = nx.circulant_graph(n, offsets)
        assert ours.vertices == frozenset(theirs.nodes)
        assert ours.edges == frozenset(
            frozenset(e) for e in theirs.edges
        )

    def test_is_circulant_with_offsets_true(self):
        g = circulant_graph(7, [1, 2])
        assert is_circulant_with_offsets(g, 7, [1, 2])

    def test_is_circulant_with_offsets_false_edges(self):
        g = circulant_graph(7, [1])
        assert not is_circulant_with_offsets(g, 7, [1, 2])

    def test_is_circulant_with_offsets_false_vertices(self):
        g = Graph(vertices=range(6))
        assert not is_circulant_with_offsets(g, 7, [1])
