"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestPlacementCommand:
    def test_cr_placement_described(self, capsys):
        assert main(["placement", "--scheme", "cr", "-n", "4", "-c", "2"]) == 0
        out = capsys.readouterr().out
        assert "CyclicRepetition" in out
        assert "W0" in out
        assert "conflict graph" in out

    def test_fr_placement(self, capsys):
        assert main(["placement", "--scheme", "fr", "-n", "4", "-c", "2"]) == 0
        assert "FractionalRepetition" in capsys.readouterr().out

    def test_hr_placement(self, capsys):
        assert main([
            "placement", "--scheme", "hr", "-n", "8", "-c", "4",
            "--g", "2", "--c1", "2",
        ]) == 0
        assert "HybridRepetition" in capsys.readouterr().out

    def test_hr_without_group_args_errors(self, capsys):
        assert main(["placement", "--scheme", "hr", "-n", "8", "-c", "4"]) == 2
        assert "error" in capsys.readouterr().err

    def test_invalid_params_exit_code(self, capsys):
        # FR needs c | n.
        assert main(["placement", "--scheme", "fr", "-n", "5", "-c", "2"]) == 2


class TestDecodeCommand:
    def test_decode_paper_example(self, capsys):
        assert main([
            "decode", "--scheme", "cr", "-n", "4", "-c", "2",
            "--available", "0,2",
        ]) == 0
        out = capsys.readouterr().out
        assert "recovered" in out
        assert "100.0%" in out

    def test_decode_partial(self, capsys):
        assert main([
            "decode", "--scheme", "cr", "-n", "4", "-c", "2",
            "--available", "0,1",
        ]) == 0
        assert "50.0%" in capsys.readouterr().out


class TestRecoveryCommand:
    def test_recovery_curve(self, capsys):
        assert main([
            "recovery", "--scheme", "fr", "-n", "4", "-c", "2",
            "--trials", "200",
        ]) == 0
        out = capsys.readouterr().out
        assert "Recovery curve" in out
        assert "100.0%" in out  # w = n row


class TestBoundsCommand:
    def test_bounds_table(self, capsys):
        assert main(["bounds", "-n", "8", "-c", "2"]) == 0
        out = capsys.readouterr().out
        assert "Theorem 10/11" in out
        # w = 8 row: lower = upper = 4.
        assert "8 | 4" in out

    def test_bounds_invalid(self, capsys):
        assert main(["bounds", "-n", "4", "-c", "9"]) == 2


class TestParser:
    def test_missing_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["bogus"])


class TestAdviseCommand:
    def test_advise_ranks_placements(self, capsys):
        assert main([
            "advise", "-n", "8", "-c", "4", "-w", "2", "--trials", "100",
        ]) == 0
        out = capsys.readouterr().out
        assert "Placement ranking" in out
        assert "recommended: FractionalRepetition(n=8, c=4)" in out

    def test_advise_invalid_params(self, capsys):
        assert main(["advise", "-n", "4", "-c", "9", "-w", "2"]) == 2


class TestSimulateCommand:
    def test_simulate_isgc(self, capsys):
        assert main([
            "simulate", "--scheme", "cr", "-n", "4", "-c", "2",
            "-w", "2", "--steps", "10",
        ]) == 0
        out = capsys.readouterr().out
        assert "is-gc-cr" in out
        assert "loss:" in out

    def test_simulate_issgd_when_c_is_one(self, capsys):
        assert main([
            "simulate", "--scheme", "cr", "-n", "4", "-c", "1",
            "-w", "2", "--steps", "5",
        ]) == 0
        assert "is-sgd" in capsys.readouterr().out

    def test_simulate_delay_kind(self, capsys):
        assert main([
            "simulate", "--scheme", "cr", "-n", "4", "-c", "2",
            "-w", "2", "--steps", "5",
            "--delay-kind", "pareto",
            "--delay-param", "alpha=2.5", "--delay-param", "scale=0.3",
        ]) == 0
        assert "loss:" in capsys.readouterr().out

    def test_simulate_unknown_delay_kind_did_you_mean(self, capsys):
        assert main([
            "simulate", "--scheme", "cr", "-n", "4", "-c", "2",
            "-w", "2", "--steps", "5", "--delay-kind", "exponentail",
        ]) == 2
        assert "exponential" in capsys.readouterr().err

    def test_simulate_bad_delay_param(self, capsys):
        assert main([
            "simulate", "--scheme", "cr", "-n", "4", "-c", "2",
            "-w", "2", "--steps", "5", "--delay-param", "alpha",
        ]) == 2
        assert "--delay-param" in capsys.readouterr().err


class TestEnvironmentsCommand:
    def test_catalogue_lists_every_layer(self, capsys):
        assert main(["environments"]) == 0
        out = capsys.readouterr().out
        for token in ("delay", "failure", "compute", "network",
                      "contention", "exponential", "transient-dropouts",
                      "fair-share"):
            assert token in out

    def test_single_model_described_with_params(self, capsys):
        assert main([
            "environments", "pareto",
            "--param", "alpha=2.5", "--param", "scale=0.5",
        ]) == 0
        out = capsys.readouterr().out
        assert "pareto" in out
        assert "2.5" in out

    def test_unknown_kind_did_you_mean(self, capsys):
        assert main(["environments", "exponentail"]) == 2
        assert "exponential" in capsys.readouterr().err
