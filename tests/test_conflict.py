"""Tests for conflict-graph construction (Sec. V-A, Theorems 1 and 4)."""

import pytest

from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    conflict_graph,
    cr_conflict_graph,
    edge_subset,
    fr_conflict_graph,
    hr_conflict_graph,
)
from repro.graphs import circulant_graph, is_circulant_with_offsets

from conftest import all_cr_params, all_fr_params, all_hr_params


class TestGroundTruth:
    def test_fig4a_fr_conflict_graph(self):
        """Fig. 4(a): FR n=4, c=2 → two disjoint edges (2-cliques)."""
        g = conflict_graph(FractionalRepetition(4, 2))
        assert g.edges == frozenset({
            frozenset({0, 1}), frozenset({2, 3}),
        })

    def test_fig4b_cr_conflict_graph(self):
        """Fig. 4(b): CR n=4, c=2 → the 4-cycle C_4^1."""
        g = conflict_graph(CyclicRepetition(4, 2))
        assert g.edges == frozenset({
            frozenset({0, 1}), frozenset({1, 2}),
            frozenset({2, 3}), frozenset({3, 0}),
        })

    def test_c_one_no_conflicts(self):
        for pl in (CyclicRepetition(6, 1), FractionalRepetition(6, 1)):
            assert conflict_graph(pl).number_of_edges() == 0

    def test_c_n_complete(self):
        g = conflict_graph(CyclicRepetition(5, 5))
        assert g.number_of_edges() == 10


class TestTheorem1:
    """The CR conflict graph is the circulant C_n^{1..c-1}."""

    @pytest.mark.parametrize("n,c", [(n, c) for n, c in all_cr_params(14) if c >= 2])
    def test_cr_is_circulant(self, n, c):
        gt = conflict_graph(CyclicRepetition(n, c))
        assert is_circulant_with_offsets(gt, n, range(1, c))

    @pytest.mark.parametrize("n,c", list(all_cr_params(12)))
    def test_fast_construction_matches_ground_truth(self, n, c):
        assert cr_conflict_graph(n, c) == conflict_graph(CyclicRepetition(n, c))


class TestFastConstructions:
    @pytest.mark.parametrize("n,c", list(all_fr_params(12)))
    def test_fr_fast_matches_ground_truth(self, n, c):
        assert fr_conflict_graph(n, c) == conflict_graph(FractionalRepetition(n, c))

    @pytest.mark.parametrize("n,c1,c2,g", list(all_hr_params(ns=(4, 6, 8, 12))))
    def test_hr_fast_matches_ground_truth(self, n, c1, c2, g):
        from repro.core import HybridRepetition
        assert hr_conflict_graph(n, c1, c2, g) == conflict_graph(
            HybridRepetition(n, c1, c2, g)
        )

    def test_fr_is_clique_union(self):
        g = fr_conflict_graph(9, 3)
        comps = g.connected_components()
        assert len(comps) == 3
        for comp in comps:
            assert g.is_clique(comp)


class TestTheorem4:
    """E_FR(n,c) ⊂ E_CR(n,c) ⊂ … ⊂ E_CR(n,n)."""

    @pytest.mark.parametrize("n", [4, 6, 8, 12])
    def test_fr_subset_cr(self, n):
        for c in range(2, n + 1):
            if n % c == 0:
                assert edge_subset(fr_conflict_graph(n, c), cr_conflict_graph(n, c))

    @pytest.mark.parametrize("n", [4, 5, 7, 8, 12])
    def test_cr_chain_is_nested(self, n):
        prev = cr_conflict_graph(n, 1)
        for c in range(2, n + 1):
            cur = cr_conflict_graph(n, c)
            assert edge_subset(prev, cur), f"c={c}"
            prev = cur

    def test_fr_strictly_smaller_when_c_between_2_and_n(self):
        """The inclusion is strict for 1 < c < n (paper uses ⊂)."""
        fr = fr_conflict_graph(8, 2)
        cr = cr_conflict_graph(8, 2)
        assert fr.edges < cr.edges

    def test_chain_top_is_complete(self):
        n = 6
        top = cr_conflict_graph(n, n)
        assert top.number_of_edges() == n * (n - 1) // 2


class TestEdgeSubsetHelper:
    def test_reflexive(self):
        g = cr_conflict_graph(6, 3)
        assert edge_subset(g, g)

    def test_not_subset(self):
        assert not edge_subset(cr_conflict_graph(6, 3), cr_conflict_graph(6, 2))
