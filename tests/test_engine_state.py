"""Snapshot / restore determinism of the resumable RoundEngine API.

The contract under test (see ``docs/architecture.md``): for any spec,
``start → step k rounds → snapshot → JSON round-trip → fresh engine →
restore → continue`` produces *bit-for-bit* the trajectory of the
uninterrupted run — summaries, reports and streamed traces alike.
Everything the serve layer's eviction and crash recovery does reduces
to this property.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.report import build_run_report
from repro.engine.spec import ExperimentSpec, build_engine
from repro.engine.state import (
    CHECKPOINT_COVERED,
    CHECKPOINT_TRANSIENT,
    EngineState,
)
from repro.exceptions import TrainingError
from repro.obs import RoundTracer

#: Every backend × update-rule combination the engine supports (the
#: ``async`` rule always runs on the async-arrivals backend).
COMBOS = [
    pytest.param("flat", "sync", id="flat-sync"),
    pytest.param("actor", "sync", id="actor-sync"),
    pytest.param("flat", "local-update", id="flat-local-update"),
    pytest.param("flat", "adaptive", id="flat-adaptive"),
    pytest.param("flat", "async", id="async-arrivals"),
]


def make_spec(backend="flat", rule="sync", **over):
    base = dict(
        name="state-test",
        scheme="is-gc-cr",
        num_workers=4,
        partitions_per_worker=2,
        wait_for=2,
        backend=backend,
        rule=rule,
        max_steps=10,
        seed=7,
    )
    if rule == "adaptive":
        # Review early and accept any gain so a migration actually
        # happens inside the test horizon — the strategy swap is the
        # hardest piece of state to restore.
        base["rule_params"] = {"review_every": 3, "min_recovery_gain": -1.0}
    base.update(over)
    return ExperimentSpec(**base)


def run_uninterrupted(spec, tracer=None):
    engine = build_engine(spec, tracer=tracer)
    if spec.rule == "async":
        engine.start_updates(spec.max_steps)
        while not engine.step_updates(1):
            pass
        return engine.finish_updates()
    engine.start_run(
        spec.max_steps,
        loss_threshold=spec.loss_threshold,
        smoothing_window=spec.smoothing_window,
    )
    while not engine.step_rounds(1):
        pass
    return engine.finish_run()


def run_with_suspension(spec, cut, tracer=None):
    """Run to ``cut`` rounds, snapshot, resume on a fresh engine."""
    first = build_engine(spec)
    if spec.rule == "async":
        first.start_updates(spec.max_steps)
        if cut:
            first.step_updates(cut)
    else:
        first.start_run(
            spec.max_steps,
            loss_threshold=spec.loss_threshold,
            smoothing_window=spec.smoothing_window,
        )
        if cut:
            first.step_rounds(cut)
    state = EngineState.from_json(first.snapshot().to_json())

    second = build_engine(spec, tracer=tracer)
    if spec.rule == "async":
        second.start_updates(spec.max_steps)
        second.restore(state)
        while not second.step_updates(1):
            pass
        return second.finish_updates()
    second.start_run(
        spec.max_steps,
        loss_threshold=spec.loss_threshold,
        smoothing_window=spec.smoothing_window,
    )
    second.restore(state)
    while not second.step_rounds(1):
        pass
    return second.finish_run()


def report_dict(spec, summary):
    return build_run_report(summary, spec=spec).to_dict()


class TestSnapshotResume:
    @pytest.mark.parametrize("backend,rule", COMBOS)
    @pytest.mark.parametrize("cut", [1, 4])
    def test_resume_bit_identical(self, backend, rule, cut):
        spec = make_spec(backend, rule)
        baseline = report_dict(spec, run_uninterrupted(spec))
        resumed = report_dict(spec, run_with_suspension(spec, cut))
        assert resumed == baseline

    @pytest.mark.parametrize("backend,rule", COMBOS)
    def test_snapshot_at_round_zero(self, backend, rule):
        spec = make_spec(backend, rule)
        baseline = report_dict(spec, run_uninterrupted(spec))
        resumed = report_dict(spec, run_with_suspension(spec, 0))
        assert resumed == baseline

    def test_resume_with_loss_threshold_early_stop(self):
        spec = make_spec(
            "flat", "sync", max_steps=60, loss_threshold=0.45,
        )
        baseline = run_uninterrupted(spec)
        resumed = run_with_suspension(spec, 3)
        assert baseline.reached_threshold
        assert report_dict(spec, resumed) == report_dict(spec, baseline)

    def test_repeated_suspension(self):
        # Snapshot/restore at *every* round boundary — the degenerate
        # schedule a capacity-0 worker pool produces.
        spec = make_spec("flat", "sync", max_steps=6)
        baseline = report_dict(spec, run_uninterrupted(spec))
        state = None
        while True:
            engine = build_engine(spec)
            engine.start_run(
                spec.max_steps,
                loss_threshold=spec.loss_threshold,
                smoothing_window=spec.smoothing_window,
            )
            if state is not None:
                engine.restore(state)
            if engine.step_rounds(1):
                resumed = report_dict(spec, engine.finish_run())
                break
            state = EngineState.from_json(engine.snapshot().to_json())
        assert resumed == baseline

    def test_traces_identical_across_resume(self):
        spec = make_spec("flat", "sync", max_steps=8)
        straight = RoundTracer(scheme="t")
        run_uninterrupted(spec, tracer=straight)

        resumed_tracer = RoundTracer(scheme="t")
        run_with_suspension(spec, 3, tracer=resumed_tracer)
        # The resumed engine only traces the rounds it executes; the
        # tail it produces must match the uninterrupted stream's tail
        # line for line (the serve layer rewinds the file to the cut
        # and appends exactly this).
        tail = [t.to_dict() for t in resumed_tracer.traces]
        full = [t.to_dict() for t in straight.traces]
        assert tail == full[len(full) - len(tail):]

    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        cut=st.integers(min_value=0, max_value=9),
        rule=st.sampled_from(["sync", "local-update", "async"]),
    )
    def test_resume_determinism_property(self, seed, cut, rule):
        spec = make_spec("flat", rule, seed=seed, max_steps=10)
        baseline = report_dict(spec, run_uninterrupted(spec))
        resumed = report_dict(spec, run_with_suspension(spec, cut))
        assert resumed == baseline


class TestEngineStateValue:
    def test_json_round_trip_is_lossless(self):
        spec = make_spec()
        engine = build_engine(spec)
        engine.start_run(spec.max_steps)
        engine.step_rounds(3)
        state = engine.snapshot()
        again = EngineState.from_json(state.to_json())
        assert again == state
        # And the serialised text itself is stable.
        assert again.to_json() == state.to_json()

    def test_snapshot_requires_active_run(self):
        engine = build_engine(make_spec())
        with pytest.raises(TrainingError):
            engine.snapshot()

    def test_restore_rejects_unknown_version(self):
        spec = make_spec()
        engine = build_engine(spec)
        engine.start_run(spec.max_steps)
        engine.step_rounds(1)
        payload = engine.snapshot().to_dict()
        payload["version"] = 999
        with pytest.raises(TrainingError, match="version"):
            EngineState.from_dict(payload)

    def test_state_rejects_bad_mode_and_index(self):
        with pytest.raises(TrainingError):
            EngineState(mode="bogus", round_index=0, params=(),
                        max_steps=1, loss_threshold=None,
                        smoothing_window=1)
        with pytest.raises(TrainingError):
            EngineState(mode="rounds", round_index=-1, params=(),
                        max_steps=1, loss_threshold=None,
                        smoothing_window=1)

    def test_round_index_matches_committed_records(self):
        spec = make_spec()
        engine = build_engine(spec)
        engine.start_run(spec.max_steps)
        engine.step_rounds(4)
        state = engine.snapshot()
        assert state.round_index == 4
        assert len(state.records) == 4
        assert len(state.step_records) == 4

    def test_registry_kinds_are_consistent(self):
        assert set(CHECKPOINT_COVERED) == set(CHECKPOINT_TRANSIENT)
        for kind, names in CHECKPOINT_COVERED.items():
            assert not names & CHECKPOINT_TRANSIENT[kind]

    def test_state_is_plain_json(self):
        spec = make_spec("flat", "adaptive", max_steps=6)
        engine = build_engine(spec)
        engine.start_run(spec.max_steps)
        engine.step_rounds(5)
        payload = engine.snapshot().to_dict()
        # No numpy scalars or other non-JSON types anywhere.
        text = json.dumps(payload)
        assert json.loads(text) == payload


class TestSweepSpecInteraction:
    def test_snapshot_invariant_under_spec_replace(self):
        # dataclasses.replace (the sweep cell constructor) must yield
        # specs whose engines are snapshot/restore-compatible with
        # themselves — the property `repro submit --sweep` leans on.
        base = make_spec()
        for wait_for in (1, 2, 3):
            spec = dataclasses.replace(base, wait_for=wait_for)
            baseline = report_dict(spec, run_uninterrupted(spec))
            resumed = report_dict(spec, run_with_suspension(spec, 2))
            assert resumed == baseline
