"""Tests for the ``repro check`` CLI subcommand.

Covers the exit-code contract (0 clean / 1 findings / 2 usage error),
the JSON report schema, ``--list-rules``, ``--select``, and
``# repro: noqa[RULE]`` suppressions end-to-end through ``main``.
"""

import json
import pathlib

from repro.cli import main
from repro.staticcheck import JSON_SCHEMA_VERSION, RULE_REGISTRY

REPO = pathlib.Path(__file__).resolve().parent.parent

DIRTY = (
    "import numpy as np\n"
    "x = np.random.randn(3)\n"
)

CLEAN = (
    "import numpy as np\n"
    "rng = np.random.default_rng(0)\n"
    "x = rng.standard_normal(3)\n"
)


def write(tmp_path, name, text):
    path = tmp_path / name
    path.write_text(text)
    return str(path)


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main(["check", path]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main(["check", path]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "dirty.py:2:" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["check", str(tmp_path / "nope")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main(["check", path, "--select", "NOPE999"]) == 2
        assert "NOPE999" in capsys.readouterr().err


class TestJsonOutput:
    def test_schema(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main(["check", path, "--format", "json"]) == 1
        report = json.loads(capsys.readouterr().out)
        assert report["version"] == JSON_SCHEMA_VERSION
        assert report["checked_files"] == 1
        (finding,) = report["findings"]
        assert finding["rule"] == "DET001"
        assert finding["path"].endswith("dirty.py")
        assert finding["line"] == 2
        assert isinstance(finding["col"], int)
        assert finding["severity"] in {"error", "warning"}
        assert finding["message"]
        assert report["summary"]["total"] == 1
        assert report["summary"]["by_rule"] == {"DET001": 1}
        assert report["summary"]["by_severity"]["error"] == 1

    def test_clean_json(self, tmp_path, capsys):
        path = write(tmp_path, "clean.py", CLEAN)
        assert main(["check", path, "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["findings"] == []
        assert report["summary"]["total"] == 0


class TestSelectAndCatalogue:
    def test_select_filters_rules(self, tmp_path, capsys):
        path = write(tmp_path, "dirty.py", DIRTY)
        assert main(["check", path, "--select", "TIME001"]) == 0
        assert main(["check", path, "--select", "DET001,TIME001"]) == 1

    def test_list_rules(self, capsys):
        assert main(["check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULE_REGISTRY:
            assert rule_id in out


class TestNoqa:
    def test_noqa_rule_suppresses(self, tmp_path, capsys):
        path = write(
            tmp_path, "dirty.py",
            "import numpy as np\n"
            "x = np.random.randn(3)  # repro: noqa[DET001]\n",
        )
        assert main(["check", path]) == 0

    def test_bare_noqa_suppresses_everything(self, tmp_path):
        path = write(
            tmp_path, "dirty.py",
            "import numpy as np\n"
            "x = np.random.randn(3)  # repro: noqa\n",
        )
        assert main(["check", path]) == 0

    def test_wrong_rule_noqa_does_not_suppress(self, tmp_path):
        path = write(
            tmp_path, "dirty.py",
            "import numpy as np\n"
            "x = np.random.randn(3)  # repro: noqa[TIME001]\n",
        )
        assert main(["check", path]) == 1


class TestSpecFiles:
    def test_infeasible_spec_file_rejected(self, tmp_path, capsys):
        # CR with c = n: decode-anything needs c < n (Theorem 1).
        path = write(tmp_path, "bad.json", json.dumps({
            "name": "bad", "scheme": "is-gc-cr", "num_workers": 4,
            "partitions_per_worker": 4, "wait_for": 2,
        }))
        assert main(["check", path]) == 1
        out = capsys.readouterr().out
        assert "SPEC001" in out
        assert "1 <= c < n" in out

    def test_shipped_specs_pass(self, capsys):
        specs = str(REPO / "examples" / "specs")
        assert main(["check", specs]) == 0

    def test_markdown_python_blocks_checked(self, tmp_path):
        path = write(
            tmp_path, "doc.md",
            "# Title\n\n```python\nimport numpy as np\n"
            "x = np.random.randn(2)\n```\n",
        )
        assert main(["check", path]) == 1
