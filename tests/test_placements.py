"""Tests for the placement base class and FR/CR placements."""

import pytest

from repro.core import CyclicRepetition, FractionalRepetition
from repro.exceptions import PlacementError

from conftest import all_cr_params, all_fr_params


class TestPlacementInvariants:
    @pytest.mark.parametrize("n,c", list(all_fr_params()))
    def test_fr_every_worker_has_c_partitions(self, n, c):
        pl = FractionalRepetition(n, c)
        for w in range(n):
            parts = pl.partitions_of(w)
            assert len(parts) == c
            assert len(set(parts)) == c
            assert all(0 <= p < n for p in parts)

    @pytest.mark.parametrize("n,c", list(all_cr_params()))
    def test_cr_every_worker_has_c_partitions(self, n, c):
        pl = CyclicRepetition(n, c)
        for w in range(n):
            parts = pl.partitions_of(w)
            assert len(parts) == c
            assert len(set(parts)) == c

    @pytest.mark.parametrize("n,c", list(all_cr_params(10)))
    def test_cr_every_partition_replicated_c_times(self, n, c):
        pl = CyclicRepetition(n, c)
        for p in range(n):
            assert len(pl.workers_of(p)) == c

    @pytest.mark.parametrize("n,c", list(all_fr_params(10)))
    def test_fr_every_partition_replicated_c_times(self, n, c):
        pl = FractionalRepetition(n, c)
        for p in range(n):
            assert len(pl.workers_of(p)) == c

    def test_replication_factor(self):
        assert CyclicRepetition(8, 3).replication_factor() == pytest.approx(3.0)
        assert FractionalRepetition(8, 4).replication_factor() == pytest.approx(4.0)

    def test_workers_of_inverts_partitions_of(self):
        pl = CyclicRepetition(9, 4)
        for w in range(9):
            for p in pl.partitions_of(w):
                assert w in pl.workers_of(p)


class TestValidation:
    def test_zero_workers(self):
        with pytest.raises(PlacementError):
            CyclicRepetition(0, 1)

    def test_c_zero(self):
        with pytest.raises(PlacementError):
            CyclicRepetition(4, 0)

    def test_c_above_n(self):
        with pytest.raises(PlacementError):
            CyclicRepetition(4, 5)

    def test_fr_requires_divisibility(self):
        with pytest.raises(PlacementError, match="c \\| n"):
            FractionalRepetition(5, 2)

    def test_partitions_of_out_of_range(self):
        pl = CyclicRepetition(4, 2)
        with pytest.raises(PlacementError):
            pl.partitions_of(4)
        with pytest.raises(PlacementError):
            pl.partitions_of(-1)

    def test_workers_of_out_of_range(self):
        pl = CyclicRepetition(4, 2)
        with pytest.raises(PlacementError):
            pl.workers_of(99)


class TestFractional:
    def test_paper_example_fig2a(self):
        """Fig. 2(a): n=4, c=2 — W1,W2 share D1,D2; W3,W4 share D3,D4."""
        pl = FractionalRepetition(4, 2)
        assert set(pl.partitions_of(0)) == {0, 1}
        assert set(pl.partitions_of(1)) == {0, 1}
        assert set(pl.partitions_of(2)) == {2, 3}
        assert set(pl.partitions_of(3)) == {2, 3}

    def test_groups(self):
        pl = FractionalRepetition(6, 2)
        assert pl.num_groups == 3
        assert pl.group_of(0) == 0
        assert pl.group_of(5) == 2
        assert pl.workers_in_group(1) == (2, 3)

    def test_group_bounds(self):
        pl = FractionalRepetition(6, 2)
        with pytest.raises(PlacementError):
            pl.group_of(6)
        with pytest.raises(PlacementError):
            pl.workers_in_group(3)

    def test_same_group_shares_all_partitions(self):
        pl = FractionalRepetition(8, 4)
        for g in range(2):
            members = pl.workers_in_group(g)
            parts = {frozenset(pl.partitions_of(w)) for w in members}
            assert len(parts) == 1

    def test_conflicts_iff_same_group(self):
        pl = FractionalRepetition(8, 2)
        for a in range(8):
            for b in range(8):
                if a != b:
                    expected = pl.group_of(a) == pl.group_of(b)
                    assert pl.conflicts(a, b) == expected


class TestCyclic:
    def test_paper_example_fig2b(self):
        """Fig. 2(b): n=4, c=2 — W_i holds D_i, D_{i+1 mod 4}."""
        pl = CyclicRepetition(4, 2)
        assert set(pl.partitions_of(0)) == {0, 1}
        assert set(pl.partitions_of(1)) == {1, 2}
        assert set(pl.partitions_of(2)) == {2, 3}
        assert set(pl.partitions_of(3)) == {3, 0}

    def test_c_equals_n_every_worker_has_all(self):
        pl = CyclicRepetition(5, 5)
        for w in range(5):
            assert set(pl.partitions_of(w)) == set(range(5))

    def test_c_one_is_identity(self):
        pl = CyclicRepetition(6, 1)
        for w in range(6):
            assert pl.partitions_of(w) == (w,)

    @pytest.mark.parametrize("n,c", list(all_cr_params(10)))
    def test_distance_rule_matches_ground_truth(self, n, c):
        """Theorem 1: conflict iff circular distance < c."""
        pl = CyclicRepetition(n, c)
        for a in range(n):
            for b in range(n):
                assert pl.conflicts(a, b) == pl.conflicts_by_distance(a, b)

    def test_no_divisibility_requirement(self):
        CyclicRepetition(7, 3)  # would be invalid for FR

    def test_self_conflict(self):
        pl = CyclicRepetition(4, 2)
        assert pl.conflicts(1, 1)


class TestDunderMethods:
    def test_equality(self):
        assert CyclicRepetition(4, 2) == CyclicRepetition(4, 2)
        assert CyclicRepetition(4, 2) != CyclicRepetition(4, 3)
        assert CyclicRepetition(4, 2) != FractionalRepetition(4, 2)

    def test_equality_other_type(self):
        assert CyclicRepetition(4, 2) != "cr"

    def test_hash_consistent(self):
        assert hash(CyclicRepetition(4, 2)) == hash(CyclicRepetition(4, 2))

    def test_repr(self):
        assert "CyclicRepetition" in repr(CyclicRepetition(4, 2))

    def test_describe_mentions_workers(self):
        text = FractionalRepetition(4, 2).describe()
        assert "W0" in text and "D3" in text

    def test_assignment_table_is_copy(self):
        pl = CyclicRepetition(4, 2)
        table = pl.assignment_table()
        table[0] = (9, 9)
        assert pl.partitions_of(0) == (0, 1)
