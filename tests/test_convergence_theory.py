"""Tests for the Theorem 12 empirical validation helpers."""

import numpy as np
import pytest

from repro.analysis import (
    estimate_lipschitz,
    estimate_sigma_squared,
    validate_descent_bound,
)
from repro.core import DescentBound
from repro.exceptions import ConfigurationError
from repro.training import (
    LinearRegressionModel,
    LogisticRegressionModel,
    make_classification,
    make_regression,
)


class TestEstimateLipschitz:
    def test_linear_regression_matches_theory(self):
        """For 0.5·mean((Xw+b−y)²) the gradient's Lipschitz constant is
        the top eigenvalue of the (augmented) design Gram matrix / n."""
        ds = make_regression(200, 5, seed=0)
        model = LinearRegressionModel(5, seed=0)
        est = estimate_lipschitz(model, ds, probes=60, seed=1)
        aug = np.hstack([ds.features, np.ones((200, 1))])
        theory = float(np.linalg.eigvalsh(aug.T @ aug / 200).max())
        # Random probe directions under-shoot the top eigenvalue but
        # never exceed it (the map is exactly linear in params).
        assert est <= theory * (1 + 1e-9)
        assert est >= 0.5 * theory

    def test_nonnegative(self):
        ds = make_classification(100, 4, seed=0)
        model = LogisticRegressionModel(4, seed=0)
        assert estimate_lipschitz(model, ds, probes=10) >= 0

    def test_restores_parameters(self):
        ds = make_regression(50, 3, seed=0)
        model = LinearRegressionModel(3, seed=0)
        before = model.get_parameters()
        estimate_lipschitz(model, ds, probes=5)
        np.testing.assert_array_equal(model.get_parameters(), before)

    def test_validation(self):
        ds = make_regression(10, 2)
        model = LinearRegressionModel(2)
        with pytest.raises(ConfigurationError):
            estimate_lipschitz(model, ds, probes=0)


class TestEstimateSigmaSquared:
    def test_upper_bounds_full_gradient(self):
        """max over batches ≥ the norm² of the full-dataset gradient
        once enough probes are drawn (batches average to it)."""
        ds = make_classification(400, 6, seed=0)
        model = LogisticRegressionModel(6, seed=0)
        sigma2 = estimate_sigma_squared(model, ds, batch_size=32, probes=80)
        full = model.gradient(ds.features, ds.labels)
        assert sigma2 >= float(np.dot(full, full)) * 0.5

    def test_bigger_batches_smaller_sigma(self):
        ds = make_classification(400, 6, seed=0)
        model = LogisticRegressionModel(6, seed=0)
        small = estimate_sigma_squared(model, ds, batch_size=4, probes=80, seed=1)
        large = estimate_sigma_squared(model, ds, batch_size=256, probes=80, seed=1)
        assert large <= small * 1.5

    def test_validation(self):
        ds = make_classification(10, 2)
        model = LogisticRegressionModel(2)
        with pytest.raises(ConfigurationError):
            estimate_sigma_squared(model, ds, batch_size=0)


class TestValidateDescentBound:
    def test_gradient_descent_on_quadratic_satisfies_bound(self):
        """Plain GD on a quadratic: with the true L and tiny η the
        Theorem 12 bound must hold at every step."""
        ds = make_regression(200, 4, noise=0.0, seed=0)
        model = LinearRegressionModel(4, seed=0)
        lipschitz = estimate_lipschitz(model, ds, probes=60, seed=1) * 1.05
        sigma2 = estimate_sigma_squared(model, ds, batch_size=200, probes=20)
        bound = DescentBound(lipschitz=lipschitz, sigma_squared=sigma2)

        lr = 0.5 / lipschitz
        losses = [model.loss(ds.features, ds.labels)]
        grads = []
        for _ in range(30):
            grad = model.gradient(ds.features, ds.labels)
            grads.append(float(np.linalg.norm(grad)))
            model.set_parameters(model.get_parameters() - lr * grad)
            losses.append(model.loss(ds.features, ds.labels))

        result = validate_descent_bound(
            losses, grads, [1.0] * len(grads), bound, lr
        )
        assert result.holds
        assert result.steps_checked == 30
        assert result.mean_slack >= 0

    def test_detects_violations_with_wrong_constants(self):
        """An absurdly small L makes the bound claim too much descent —
        violations must be reported, not silently passed."""
        losses = [1.0, 0.999]  # barely any progress
        grads = [1.0]  # but a large gradient was claimed
        bound = DescentBound(lipschitz=1e-9, sigma_squared=0.0)
        result = validate_descent_bound(losses, grads, [1.0], bound, 0.5)
        assert not result.holds
        assert result.violations == 1

    def test_length_validation(self):
        bound = DescentBound(1.0, 1.0)
        with pytest.raises(ConfigurationError):
            validate_descent_bound([1.0], [1.0], [1.0], bound, 0.1)
