"""Tests for explicit placements and shared-link contention."""

import numpy as np
import pytest

from repro.core import (
    CyclicRepetition,
    ExactDecoder,
    ExplicitPlacement,
    SummationCode,
    conflict_graph,
    decoder_for,
)
from repro.exceptions import ConfigurationError, PlacementError
from repro.simulation import ContendedUploadModel, fair_share_finish_times


class TestExplicitPlacement:
    def test_from_rows_matches_cr(self):
        cr = CyclicRepetition(4, 2)
        rows = [cr.partitions_of(w) for w in range(4)]
        explicit = ExplicitPlacement.from_rows(rows)
        for w in range(4):
            assert explicit.partitions_of(w) == cr.partitions_of(w)
        assert conflict_graph(explicit) == conflict_graph(cr)

    def test_exact_decoder_dispatch(self):
        placement = ExplicitPlacement.from_rows([(0, 1), (1, 2), (2, 3), (3, 0)])
        decoder = decoder_for(placement)
        assert isinstance(decoder, ExactDecoder)
        result = decoder.decode([0, 2])
        assert result.num_recovered == 4

    def test_asymmetric_design(self):
        """A hand-built placement no standard family produces: works
        with conflict graphs, decoding, and the summation code."""
        placement = ExplicitPlacement.from_rows(
            [(0, 1), (2, 3), (0, 2), (1, 3)]
        )
        rng = np.random.default_rng(0)
        grads = {p: rng.normal(size=3) for p in range(4)}
        code = SummationCode(placement)
        payloads = code.encode(grads)
        decision = decoder_for(placement, rng=rng).decode([0, 1])
        decoded = code.decode_sum(decision, payloads)
        np.testing.assert_allclose(decoded, sum(grads.values()), atol=1e-9)

    def test_invariants_enforced(self):
        with pytest.raises(PlacementError):
            ExplicitPlacement({})
        with pytest.raises(PlacementError):
            # Mixed partition counts.
            ExplicitPlacement({0: (0,), 1: (0, 1)})
        with pytest.raises(PlacementError):
            # Partition 1 never stored (n=2 workers → 2 partitions).
            ExplicitPlacement({0: (0,), 1: (0,)})
        with pytest.raises(PlacementError):
            # Out-of-range partition index.
            ExplicitPlacement({0: (0, 5), 1: (1, 0)})


class TestFairShare:
    def test_single_flow_full_rate(self):
        assert fair_share_finish_times([0.0], [100.0], 50.0) == [2.0]

    def test_two_simultaneous_flows_halve_rate(self):
        out = fair_share_finish_times([0.0, 0.0], [100.0, 100.0], 100.0)
        assert out == [2.0, 2.0]

    def test_staggered_flows(self):
        # Flow 0 runs alone for 1s (100B done), then shares: remaining
        # 100B at 50B/s → finishes at 3.0; flow 1's 100B at 50B/s then
        # full rate after flow 0 leaves: 100 = 2s shared (100B)? flow 1
        # transfers 50B/s × 2s = 100B → also done at 3.0.
        out = fair_share_finish_times([0.0, 1.0], [200.0, 100.0], 100.0)
        assert out[0] == pytest.approx(3.0)
        assert out[1] == pytest.approx(3.0)

    def test_short_flow_exits_long_flow_speeds_up(self):
        out = fair_share_finish_times([0.0, 0.0], [50.0, 150.0], 100.0)
        # Shared until t=1 (50B each); flow 0 done; flow 1 drains the
        # remaining 100B at full rate → t=2.
        assert out[0] == pytest.approx(1.0)
        assert out[1] == pytest.approx(2.0)

    def test_zero_size_finishes_at_start(self):
        out = fair_share_finish_times([3.0], [0.0], 10.0)
        assert out == [3.0]

    def test_gap_between_flows(self):
        out = fair_share_finish_times([0.0, 10.0], [10.0, 10.0], 10.0)
        assert out == [1.0, 11.0]

    def test_conservation(self):
        """Total bytes served never exceeds capacity × busy time."""
        rng = np.random.default_rng(0)
        starts = rng.uniform(0, 5, size=10).tolist()
        sizes = rng.uniform(10, 100, size=10).tolist()
        cap = 37.0
        finishes = fair_share_finish_times(starts, sizes, cap)
        busy = max(finishes) - min(starts)
        assert sum(sizes) <= cap * busy + 1e-6

    def test_finish_after_start(self):
        rng = np.random.default_rng(1)
        starts = rng.uniform(0, 5, size=8).tolist()
        sizes = rng.uniform(1, 50, size=8).tolist()
        finishes = fair_share_finish_times(starts, sizes, 11.0)
        for s, f in zip(starts, finishes):
            assert f >= s

    def test_no_stall_on_rounding_residual(self):
        """Regression: ``rate * (bytes/rate)`` can round a hair below
        ``bytes``, leaving a residual whose drain time underflows
        ``now + dt`` — the loop must still terminate."""
        out = fair_share_finish_times([0.0, 0.1], [40000.0, 40000.0], 1e9)
        assert out[0] == pytest.approx(4e-05)
        assert out[1] == pytest.approx(0.10004)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fair_share_finish_times([0.0], [1.0, 2.0], 1.0)
        with pytest.raises(ConfigurationError):
            fair_share_finish_times([0.0], [1.0], 0.0)
        with pytest.raises(ConfigurationError):
            fair_share_finish_times([-1.0], [1.0], 1.0)


class TestContendedUploadModel:
    def test_contention_slows_simultaneous_uploads(self):
        model = ContendedUploadModel(capacity_bytes_per_s=400.0)
        simultaneous = model.round_arrivals({0: 0.0, 1: 0.0}, 100)
        alone = model.round_arrivals({0: 0.0}, 100)
        assert simultaneous.arrivals[0] > alone.arrivals[0]

    def test_round_result(self):
        model = ContendedUploadModel(capacity_bytes_per_s=400.0)
        out = model.round_arrivals({0: 0.0, 1: 1.0}, 100)
        assert out.link_busy_until == max(out.arrivals.values())

    def test_contention_changes_step_time_vs_ideal(self):
        """With n workers finishing compute together, the n-th arrival
        is n× the solo transfer — contention matters for wait-all but
        barely for wait-1."""
        model = ContendedUploadModel(capacity_bytes_per_s=4e3)
        starts = {w: 0.0 for w in range(8)}
        out = model.round_arrivals(starts, 1000)  # 4000 B each
        # All drain together: everyone finishes at 8 s (fair share).
        assert max(out.arrivals.values()) == pytest.approx(8.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ContendedUploadModel(0.0)
        model = ContendedUploadModel(10.0)
        from repro.exceptions import SimulationError
        with pytest.raises(SimulationError):
            model.round_arrivals({0: 0.0}, -1)
