"""Tests for time-varying delay models (diurnal and bursty)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.straggler import (
    BurstyDelay,
    DelayTrace,
    DiurnalDelay,
    ExponentialDelay,
    ShiftedExponentialDelay,
)


class TestDiurnalDelay:
    def test_scale_oscillates(self):
        model = DiurnalDelay(ExponentialDelay(1.0), period_steps=20, amplitude=0.5)
        assert model.scale_at(0) == pytest.approx(1.0)
        assert model.scale_at(5) == pytest.approx(1.5)  # peak
        assert model.scale_at(15) == pytest.approx(0.5)  # trough

    def test_periodicity(self):
        model = DiurnalDelay(ExponentialDelay(1.0), period_steps=12)
        for step in range(12):
            assert model.scale_at(step) == pytest.approx(model.scale_at(step + 12))

    def test_scale_never_negative(self):
        model = DiurnalDelay(ExponentialDelay(1.0), period_steps=8, amplitude=3.0)
        assert all(model.scale_at(s) >= 0.0 for s in range(8))

    def test_deterministic_base_scaled(self, rng):
        model = DiurnalDelay(
            ShiftedExponentialDelay(2.0, 0.0), period_steps=4, amplitude=1.0
        )
        assert model.sample(0, 1, rng) == pytest.approx(2.0 * model.scale_at(1))

    def test_peak_delays_larger_on_average(self):
        model = DiurnalDelay(ExponentialDelay(1.0), period_steps=40, amplitude=0.9)
        rng = np.random.default_rng(0)
        peak = np.mean([model.sample(0, 10, rng) for _ in range(4000)])
        trough = np.mean([model.sample(0, 30, rng) for _ in range(4000)])
        assert peak > 3 * trough

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalDelay(ExponentialDelay(1.0), period_steps=0)
        with pytest.raises(ConfigurationError):
            DiurnalDelay(ExponentialDelay(1.0), period_steps=5, amplitude=-1.0)


class TestBurstyDelay:
    def test_starts_calm(self, rng):
        model = BurstyDelay(
            ShiftedExponentialDelay(5.0, 0.0), enter_burst=0.0, exit_burst=1.0
        )
        assert all(model.sample(0, s, rng) == 0.0 for s in range(50))
        assert not model.in_burst(0)

    def test_enters_and_exits_bursts(self):
        model = BurstyDelay(
            ShiftedExponentialDelay(5.0, 0.0), enter_burst=0.3, exit_burst=0.3
        )
        rng = np.random.default_rng(0)
        values = [model.sample(0, s, rng) for s in range(500)]
        assert any(v > 0 for v in values)
        assert any(v == 0 for v in values)

    def test_stationary_burst_fraction(self):
        """Gilbert model: long-run burst fraction ≈ p_in/(p_in + p_out)."""
        enter, exit_ = 0.1, 0.3
        model = BurstyDelay(
            ShiftedExponentialDelay(1.0, 0.0), enter_burst=enter, exit_burst=exit_
        )
        rng = np.random.default_rng(1)
        values = [model.sample(0, s, rng) for s in range(40_000)]
        fraction = np.mean([v > 0 for v in values])
        assert fraction == pytest.approx(enter / (enter + exit_), abs=0.03)

    def test_workers_independent(self):
        model = BurstyDelay(
            ShiftedExponentialDelay(1.0, 0.0), enter_burst=0.5, exit_burst=0.5
        )
        rng = np.random.default_rng(2)
        for step in range(100):
            model.sample(0, step, rng)
            model.sample(1, step, rng)
        # Both workers have visited the burst state independently.
        assert 0 in model._in_burst and 1 in model._in_burst

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyDelay(ExponentialDelay(1.0), enter_burst=1.5)
        with pytest.raises(ConfigurationError):
            BurstyDelay(ExponentialDelay(1.0), exit_burst=-0.1)

    def test_recordable_into_trace(self):
        """Stateful models must still be freezable for replay."""
        model = BurstyDelay(
            ShiftedExponentialDelay(2.0, 0.0), enter_burst=0.4, exit_burst=0.2
        )
        trace = DelayTrace.record(model, 4, 30, np.random.default_rng(3))
        assert trace.num_steps == 30
        assert (trace.delays >= 0).all()
