"""Tests for Theorems 10-12 (Sec. VII)."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import check_bounds_exhaustive, worst_case_alpha, best_case_alpha
from repro.core import (
    CyclicRepetition,
    DescentBound,
    FractionalRepetition,
    HybridRepetition,
    alpha_lower_bound,
    alpha_upper_bound,
    recovered_partitions_bounds,
)


class TestBoundFormulas:
    def test_lower_bound_examples(self):
        assert alpha_lower_bound(4, 2, 2) == 1
        assert alpha_lower_bound(4, 2, 3) == 2
        assert alpha_lower_bound(8, 2, 5) == 3
        assert alpha_lower_bound(8, 4, 8) == 2

    def test_upper_bound_examples(self):
        assert alpha_upper_bound(4, 2, 2) == 2
        assert alpha_upper_bound(4, 2, 1) == 1
        assert alpha_upper_bound(8, 2, 6) == 4

    def test_w_zero(self):
        assert alpha_lower_bound(4, 2, 0) == 0
        assert alpha_upper_bound(4, 2, 0) == 0

    def test_recovered_partitions_capped_at_n(self):
        lo, hi = recovered_partitions_bounds(7, 3, 7)
        assert hi <= 7
        assert lo <= hi

    def test_validation(self):
        with pytest.raises(ValueError):
            alpha_lower_bound(0, 1, 0)
        with pytest.raises(ValueError):
            alpha_lower_bound(4, 5, 2)
        with pytest.raises(ValueError):
            alpha_upper_bound(4, 2, 5)

    @given(
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=1, max_value=40),
        st.integers(min_value=0, max_value=40),
    )
    @settings(max_examples=150, deadline=None)
    def test_lower_never_exceeds_upper(self, n, c, w):
        c = min(c, n)
        w = min(w, n)
        assert alpha_lower_bound(n, c, w) <= alpha_upper_bound(n, c, w)


class TestBoundsHoldEmpirically:
    """Theorems 10/11 against exhaustive enumeration of W'."""

    @pytest.mark.parametrize("placement", [
        FractionalRepetition(6, 2),
        FractionalRepetition(8, 4),
        CyclicRepetition(6, 2),
        CyclicRepetition(7, 3),
        CyclicRepetition(8, 3),
        HybridRepetition(8, 2, 2, 2),
        HybridRepetition(8, 3, 1, 2),
    ])
    def test_all_subsets_within_bounds(self, placement):
        n = placement.num_workers
        for w in range(1, n + 1):
            for check in check_bounds_exhaustive(placement, w):
                assert check.holds, (
                    f"{placement!r} w={w} W'={check.available}: "
                    f"α={check.alpha} ∉ [{check.lower}, {check.upper}]"
                )

    @pytest.mark.parametrize("n,c", [(6, 2), (8, 2), (8, 4), (9, 3)])
    def test_fr_lower_bound_is_tight(self, n, c):
        """Packing W' into few groups achieves the Theorem 10 bound."""
        pl = FractionalRepetition(n, c)
        for w in range(1, n + 1):
            assert worst_case_alpha(pl, w) == alpha_lower_bound(n, c, w)

    @pytest.mark.parametrize("n,c", [(6, 2), (8, 2), (7, 3), (9, 3)])
    def test_cr_lower_bound_is_tight(self, n, c):
        """Consecutive W' achieves the Theorem 10 bound for CR."""
        pl = CyclicRepetition(n, c)
        for w in range(1, n + 1):
            assert worst_case_alpha(pl, w) == alpha_lower_bound(n, c, w)

    @pytest.mark.parametrize("n,c", [(6, 2), (8, 2), (8, 4), (7, 3)])
    def test_upper_bound_is_tight_for_cr(self, n, c):
        """Spread-out W' achieves the Theorem 11 bound."""
        pl = CyclicRepetition(n, c)
        for w in range(1, n + 1):
            assert best_case_alpha(pl, w) == alpha_upper_bound(n, c, w)


class TestFRBeatsCR:
    """Sec. V-C: FR's induced independence number dominates CR's."""

    @pytest.mark.parametrize("n,c", [(4, 2), (6, 2), (8, 2), (8, 4), (9, 3)])
    def test_fr_alpha_geq_cr_alpha_on_every_subset(self, n, c):
        from itertools import combinations

        from repro.core import conflict_graph
        from repro.graphs import independence_number

        fr_graph = conflict_graph(FractionalRepetition(n, c))
        cr_graph = conflict_graph(CyclicRepetition(n, c))
        for w in range(1, n + 1):
            for subset in combinations(range(n), w):
                assert independence_number(
                    fr_graph.subgraph(subset)
                ) >= independence_number(cr_graph.subgraph(subset))


class TestDescentBound:
    def test_decrease_with_zero_noise(self):
        bound = DescentBound(lipschitz=1.0, sigma_squared=0.0)
        nxt = bound.expected_decrease(
            loss=1.0, grad_norm_squared=0.5, learning_rate=0.1,
            decoded_samples=10,
        )
        assert nxt == pytest.approx(1.0 - 0.1 * 10 * 0.5)

    def test_noise_term_grows_quadratically(self):
        bound = DescentBound(lipschitz=2.0, sigma_squared=1.0)
        small = bound.expected_decrease(1.0, 0.0, 0.01, 5)
        large = bound.expected_decrease(1.0, 0.0, 0.01, 10)
        assert (large - 1.0) == pytest.approx(4 * (small - 1.0))

    def test_small_lr_guarantees_descent(self):
        """Theorem 12's point: small η makes the noise term negligible."""
        bound = DescentBound(lipschitz=10.0, sigma_squared=4.0)
        samples, grad_sq = 16, 1.0
        eta = bound.max_stable_learning_rate(samples) * 1e-3
        nxt = bound.expected_decrease(5.0, grad_sq, eta, samples)
        assert nxt < 5.0

    def test_validation(self):
        bound = DescentBound(lipschitz=1.0, sigma_squared=1.0)
        with pytest.raises(ValueError):
            bound.expected_decrease(1.0, 1.0, -0.1, 4)
        with pytest.raises(ValueError):
            bound.expected_decrease(1.0, 1.0, 0.1, -4)
        with pytest.raises(ValueError):
            DescentBound(lipschitz=-1.0, sigma_squared=1.0).expected_decrease(
                1.0, 1.0, 0.1, 4
            )
        with pytest.raises(ValueError):
            bound.max_stable_learning_rate(0)


class TestTheorem10HREdgeCase:
    """The printed Theorem 10 lower bound fails for HR with n0 > c.

    HR(12, 4, 0, g=2) has two conflict-complete groups of n0 = 6
    workers (within-group CR(6, 4) is complete since 6 <= 2·4 − 1), so
    at most g = 2 workers can ever be selected — but the printed bound
    claims min(⌈12/4⌉, ⌊12/4⌋) = 3 at w = 12.  The corrected
    group-aware bounds (``hr_alpha_bounds``) hold instead; this test
    documents the deviation (also noted in README).
    """

    def test_printed_bound_violated(self):
        from repro.core import HybridRepetition, conflict_graph
        from repro.graphs import independence_number

        placement = HybridRepetition(12, 4, 0, 2)
        alpha = independence_number(conflict_graph(placement))
        assert alpha == 2
        assert alpha < alpha_lower_bound(12, 4, 12)  # printed: 3

    def test_corrected_bounds_hold_exhaustively(self):
        from itertools import combinations

        from repro.core import HybridRepetition, conflict_graph, hr_alpha_bounds
        from repro.graphs import independence_number

        for n, c1, c2, g in [
            (12, 4, 0, 2), (12, 3, 1, 2), (8, 3, 0, 2), (10, 4, 1, 2),
        ]:
            placement = HybridRepetition(n, c1, c2, g)
            graph = conflict_graph(placement)
            for w in range(1, n + 1):
                lo, hi = hr_alpha_bounds(n, c1, c2, g, w)
                alphas = [
                    independence_number(graph.subgraph(sub))
                    for sub in combinations(range(n), w)
                ]
                assert lo <= min(alphas), (n, c1, c2, g, w)
                assert max(alphas) <= hi, (n, c1, c2, g, w)

    def test_reduces_to_classical_for_interpolating_hr(self):
        from repro.core import hr_alpha_bounds

        for w in range(1, 9):
            assert hr_alpha_bounds(8, 0, 4, 2, w) == (
                alpha_lower_bound(8, 4, w), alpha_upper_bound(8, 4, w)
            )
            assert hr_alpha_bounds(8, 3, 1, 2, w) == (
                alpha_lower_bound(8, 4, w), alpha_upper_bound(8, 4, w)
            )

    def test_validation(self):
        from repro.core import hr_alpha_bounds

        with pytest.raises(ValueError):
            hr_alpha_bounds(12, 2, 2, 5, 4)  # g does not divide n
