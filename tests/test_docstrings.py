"""Documentation quality gate: every public item carries a docstring.

Walks the whole :mod:`repro` package: every module, every public class,
every public function/method defined in the package must have a
non-trivial docstring.  Keeps deliverable (e) honest as the code grows.
"""

import importlib
import inspect
import pkgutil

import repro

MIN_DOC_LEN = 10


def _repro_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield importlib.import_module(info.name)


def _is_local(obj, module) -> bool:
    return getattr(obj, "__module__", None) == module.__name__


def _doc_ok(obj) -> bool:
    doc = inspect.getdoc(obj)
    return doc is not None and len(doc.strip()) >= MIN_DOC_LEN


def test_every_module_has_docstring():
    missing = [
        m.__name__ for m in _repro_modules() if not _doc_ok(m)
    ]
    assert not missing, f"modules without docstrings: {missing}"


def test_every_public_class_documented():
    missing = []
    for module in _repro_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isclass(obj):
                continue
            if not _is_local(obj, module):
                continue
            if not _doc_ok(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"classes without docstrings: {missing}"


def test_every_public_function_documented():
    missing = []
    for module in _repro_modules():
        for name, obj in vars(module).items():
            if name.startswith("_") or not inspect.isfunction(obj):
                continue
            if not _is_local(obj, module):
                continue
            if not _doc_ok(obj):
                missing.append(f"{module.__name__}.{name}")
    assert not missing, f"functions without docstrings: {missing}"


def test_public_methods_documented():
    """Public methods of public classes — inherited docstrings count
    (``inspect.getdoc`` walks the MRO), dataclass autogen is exempt."""
    exempt = {"__init__"}
    missing = []
    for module in _repro_modules():
        for cls_name, cls in vars(module).items():
            if cls_name.startswith("_") or not inspect.isclass(cls):
                continue
            if not _is_local(cls, module):
                continue
            for meth_name, meth in vars(cls).items():
                if meth_name.startswith("_") or meth_name in exempt:
                    continue
                if not inspect.isfunction(meth):
                    continue
                if not _doc_ok(getattr(cls, meth_name)):
                    missing.append(
                        f"{module.__name__}.{cls_name}.{meth_name}"
                    )
    assert not missing, f"methods without docstrings: {missing}"
