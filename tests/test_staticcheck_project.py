"""Fixture tests for the whole-project rule families (FLOW/XREG/XIMP).

Each rule gets at least one offending fixture (asserted caught) and a
clean twin (asserted clean).  Fixtures are in-memory module sets built
with :meth:`ProjectIndex.from_sources`, so no files are written and the
full-repo cleanliness assertions elsewhere never trip over them.  The
module names start with ``repro.`` so the ``repro/``-scoped rules
apply.
"""

import textwrap

import pytest

from repro.staticcheck import RULE_REGISTRY
from repro.staticcheck.dataflow import analyze_project
from repro.staticcheck.project import ProjectContext, ProjectIndex


def project_findings(sources, rule_ids, aux=None):
    """Run the named project rules over ``{dotted: source}`` fixtures."""
    index = ProjectIndex.from_sources(
        {name: textwrap.dedent(src) for name, src in sources.items()}
    )
    ctx = ProjectContext(index=index, aux=dict(aux or {}))
    ctx.summaries = analyze_project(index)
    findings = []
    for rule_id in rule_ids:
        rule = RULE_REGISTRY[rule_id]
        if rule.granularity == "module":
            for name in sorted(index.modules):
                info = index.modules[name]
                if rule.applies_to(info.scope_path):
                    findings.extend(rule.check(ctx, rule, info))
        else:
            findings.extend(rule.check(ctx, rule))
    return findings


def rules_of(findings):
    return [f.rule for f in findings]


# ----------------------------------------------------------------------
# FLOW001 — Generator into a memoised/batched kernel


class TestFlow001:
    def test_gen_arg_into_memo_call(self):
        findings = project_findings({
            "repro.decode": """
                import numpy as np

                class Decoder:
                    def decode(self, cache, key, rng):
                        return cache.get_or_compute(key, rng)
                """,
        }, ["FLOW001"])
        assert rules_of(findings) == ["FLOW001"]
        assert "rng" in findings[0].message

    def test_gen_draw_inside_memo_lambda(self):
        findings = project_findings({
            "repro.decode": """
                import numpy as np

                class Decoder:
                    def __init__(self):
                        self._rng = np.random.default_rng(0)

                    def decode(self, cache, key):
                        return cache._memo(
                            key, lambda: self._rng.integers(5)
                        )
                """,
        }, ["FLOW001"])
        assert rules_of(findings) == ["FLOW001"]
        assert "compute callback" in findings[0].message

    def test_gen_into_batch_module_kernel(self):
        findings = project_findings({
            "repro.core.batch": """
                def decode_batch(masks, out):
                    return out
                """,
            "repro.core.caller": """
                import numpy as np

                from repro.core.batch import decode_batch

                def drive(masks):
                    rng = np.random.default_rng(0)
                    return decode_batch(masks, rng)
                """,
        }, ["FLOW001"])
        assert rules_of(findings) == ["FLOW001"]
        assert "repro.core.batch.decode_batch()" in findings[0].message

    def test_drawn_values_passed_in_are_clean(self):
        findings = project_findings({
            "repro.decode": """
                import numpy as np

                class Decoder:
                    def decode(self, cache, key, rng):
                        pick = int(rng.integers(5))
                        return cache.get_or_compute(key, pick)
                """,
        }, ["FLOW001"])
        assert findings == []

    def test_memo_lambda_drawing_from_own_param_is_clean(self):
        # the lambda's own parameter shadows any outer Generator.
        findings = project_findings({
            "repro.decode": """
                def decode(cache, key, pick):
                    return cache.get_or_compute(key, lambda rng: rng)
                """,
        }, ["FLOW001"])
        assert findings == []


# ----------------------------------------------------------------------
# FLOW002 — Generator / derived seed across a pool boundary


class TestFlow002:
    def test_gen_through_pool_submit(self):
        findings = project_findings({
            "repro.sweep": """
                import numpy as np

                def run(pool, task):
                    rng = np.random.default_rng(7)
                    return pool.submit(task, rng)
                """,
        }, ["FLOW002"])
        assert rules_of(findings) == ["FLOW002"]
        assert "Generator" in findings[0].message

    def test_gen_assigned_then_shipped(self):
        # assignment-aware: the Generator flows through a rename.
        findings = project_findings({
            "repro.sweep": """
                import numpy as np

                def run(executor, task):
                    source = np.random.default_rng(7)
                    shipped = source
                    return executor.run(task, shipped)
                """,
        }, ["FLOW002"])
        assert rules_of(findings) == ["FLOW002"]

    def test_derived_seed_through_executor_run(self):
        findings = project_findings({
            "repro.sweep": """
                def run(executor, task, seed, i):
                    child = seed * 1000 + i
                    return executor.run(task, child)
                """,
        }, ["FLOW002"])
        assert rules_of(findings) == ["FLOW002"]
        assert "derived seed" in findings[0].message

    def test_spawned_seed_sequences_are_clean(self):
        findings = project_findings({
            "repro.sweep": """
                import numpy as np

                def run(pool, task, seed, n):
                    children = np.random.SeedSequence(seed).spawn(n)
                    return [pool.submit(task, c) for c in children]
                """,
        }, ["FLOW002"])
        assert findings == []

    def test_non_pool_receiver_is_clean(self):
        # .run() on something that is not pool-ish is not a dispatch.
        findings = project_findings({
            "repro.sweep": """
                import numpy as np

                def run(trainer, task):
                    rng = np.random.default_rng(7)
                    return trainer.run(task, rng)
                """,
        }, ["FLOW002"])
        assert findings == []


# ----------------------------------------------------------------------
# FLOW003 — Generator consumed in hash-ordered iteration


class TestFlow003:
    def test_draw_inside_set_loop(self):
        findings = project_findings({
            "repro.assign": """
                import numpy as np

                def jitter(workers):
                    rng = np.random.default_rng(0)
                    out = {}
                    for w in set(workers):
                        out[w] = rng.normal()
                    return out
                """,
        }, ["FLOW003"])
        assert rules_of(findings) == ["FLOW003"]
        assert "hash-dependent" in findings[0].message

    def test_draw_inside_set_comprehension(self):
        findings = project_findings({
            "repro.assign": """
                import numpy as np

                def jitter(workers):
                    rng = np.random.default_rng(0)
                    return [rng.normal() for w in {1, 2} | set(workers)]
                """,
        }, ["FLOW003"])
        assert rules_of(findings) == ["FLOW003"]

    def test_interprocedural_consumption_in_set_loop(self):
        # the draw hides inside a helper that consumes its rng param.
        findings = project_findings({
            "repro.helpers": """
                def delay_for(worker, rng):
                    return rng.exponential()
                """,
            "repro.assign": """
                import numpy as np

                from repro.helpers import delay_for

                def jitter(workers):
                    rng = np.random.default_rng(0)
                    return {w: delay_for(w, rng) for w in set(workers)}
                """,
        }, ["FLOW003"])
        assert rules_of(findings) == ["FLOW003"]
        assert "delay_for" in findings[0].message

    def test_sorted_view_is_clean(self):
        findings = project_findings({
            "repro.assign": """
                import numpy as np

                def jitter(workers):
                    rng = np.random.default_rng(0)
                    return {w: rng.normal() for w in sorted(set(workers))}
                """,
        }, ["FLOW003"])
        assert findings == []

    def test_list_loop_is_clean(self):
        findings = project_findings({
            "repro.assign": """
                import numpy as np

                def jitter(workers):
                    rng = np.random.default_rng(0)
                    return [rng.normal() for w in list(workers)]
                """,
        }, ["FLOW003"])
        assert findings == []


# ----------------------------------------------------------------------
# XREG — registry completeness (evidence injected via ctx.aux)

GOLDEN_OK = '{"cases": [{"family": "mirror"}]}'
DOCS_OK = "# Catalogue\n\n| `mirror` | a scheme |\n"
PLACEMENT_GOLDEN = "tests/golden/placement_schemes.json"
PLACEMENT_DOCS = "docs/placements.md"
ENV_GOLDEN = "tests/golden/environments.json"
ENV_DOCS = "docs/environments.md"


def placement_fixture(body):
    return {
        "repro.schemes": (
            "from repro.core.scheme import register_placement\n\n"
            + textwrap.dedent(body)
        ),
        "repro.core.scheme": """
            def register_placement(name, aliases=()):
                def wrap(cls):
                    return cls
                return wrap
            """,
    }


class TestXreg:
    def test_missing_spec_hook_flagged(self):
        findings = project_findings(
            placement_fixture(
                """
                @register_placement("mirror")
                class Mirror:
                    def place(self):
                        return None
                """
            ),
            ["XREG001"],
        )
        assert rules_of(findings) == ["XREG001"]
        assert "spec_problems" in findings[0].message

    def test_spec_hook_inherited_is_clean(self):
        sources = placement_fixture(
            """
            class Base:
                def spec_problems(self, spec):
                    return []

            @register_placement("mirror")
            class Mirror(Base):
                pass
            """
        )
        assert project_findings(sources, ["XREG001"]) == []

    def test_missing_golden_entry_flagged(self):
        findings = project_findings(
            placement_fixture(
                """
                @register_placement("mirror")
                class Mirror:
                    def spec_problems(self, spec):
                        return []
                """
            ),
            ["XREG002"],
            aux={PLACEMENT_GOLDEN: '{"cases": []}'},
        )
        assert rules_of(findings) == ["XREG002"]
        assert "golden" in findings[0].message

    def test_golden_entry_via_alias_is_clean(self):
        sources = placement_fixture(
            """
            @register_placement("mirror", aliases=("copy",))
            class Mirror:
                def spec_problems(self, spec):
                    return []
            """
        )
        findings = project_findings(
            sources, ["XREG002"],
            aux={PLACEMENT_GOLDEN: '{"cases": [{"family": "copy"}]}'},
        )
        assert findings == []

    def test_golden_file_known_missing_flagged(self):
        findings = project_findings(
            placement_fixture(
                """
                @register_placement("mirror")
                class Mirror:
                    def spec_problems(self, spec):
                        return []
                """
            ),
            ["XREG002"],
            aux={PLACEMENT_GOLDEN: None},
        )
        assert rules_of(findings) == ["XREG002"]
        assert "missing" in findings[0].message

    def test_golden_file_unknowable_is_silent(self):
        # no repo root, nothing injected: absence is not evidence.
        findings = project_findings(
            placement_fixture(
                """
                @register_placement("mirror")
                class Mirror:
                    def spec_problems(self, spec):
                        return []
                """
            ),
            ["XREG002"],
        )
        assert findings == []

    def test_none_returning_factory_exempt_from_golden(self):
        findings = project_findings({
            "repro.env.delays": """
                from repro.env.registry import register_delay

                @register_delay("none")
                def make_none(params):
                    return None
                """,
            "repro.env.registry": """
                def register_delay(name, aliases=()):
                    def wrap(fn):
                        return fn
                    return wrap
                """,
        }, ["XREG002"], aux={ENV_GOLDEN: '{"cases": []}'})
        assert findings == []

    def test_uncatalogued_family_flagged(self):
        findings = project_findings(
            placement_fixture(
                """
                @register_placement("mirror")
                class Mirror:
                    def spec_problems(self, spec):
                        return []
                """
            ),
            ["XREG003"],
            aux={PLACEMENT_DOCS: "# Catalogue\n\nnothing here\n"},
        )
        assert rules_of(findings) == ["XREG003"]
        assert "catalogue" in findings[0].message

    def test_catalogued_family_is_clean(self):
        findings = project_findings(
            placement_fixture(
                """
                @register_placement("mirror")
                class Mirror:
                    def spec_problems(self, spec):
                        return []
                """
            ),
            ["XREG003"],
            aux={PLACEMENT_DOCS: DOCS_OK},
        )
        assert findings == []

    def test_name_collision_flagged(self):
        findings = project_findings({
            "repro.env.a": """
                from repro.env.registry import register_delay

                @register_delay("uniform")
                def make_a(params):
                    return params
                """,
            "repro.env.b": """
                from repro.env.registry import register_delay

                @register_delay("shifted", aliases=("uniform",))
                def make_b(params):
                    return params
                """,
            "repro.env.registry": """
                def register_delay(name, aliases=()):
                    def wrap(fn):
                        return fn
                    return wrap
                """,
        }, ["XREG004"])
        assert rules_of(findings) == ["XREG004"]
        assert "uniform" in findings[0].message

    def test_same_name_different_kind_is_clean(self):
        findings = project_findings({
            "repro.env.models": """
                from repro.env.registry import register_delay
                from repro.env.registry import register_failure

                @register_delay("uniform")
                def make_delay(params):
                    return params

                @register_failure("uniform")
                def make_failure(params):
                    return params
                """,
            "repro.env.registry": """
                def register_delay(name, aliases=()):
                    def wrap(fn):
                        return fn
                    return wrap

                def register_failure(name, aliases=()):
                    def wrap(fn):
                        return fn
                    return wrap
                """,
        }, ["XREG004"])
        assert findings == []


# ----------------------------------------------------------------------
# XIMP — import hygiene


class TestXimp:
    def test_cycle_flagged_once_per_module(self):
        findings = project_findings({
            "repro.a": "import repro.b\n",
            "repro.b": "import repro.a\n",
        }, ["XIMP001"])
        assert rules_of(findings) == ["XIMP001", "XIMP001"]
        assert "cycle" in findings[0].message

    def test_function_level_import_breaks_cycle(self):
        findings = project_findings({
            "repro.a": "import repro.b\n",
            "repro.b": (
                "def late():\n"
                "    import repro.a\n"
                "    return repro.a\n"
            ),
        }, ["XIMP001"])
        assert findings == []

    def test_core_importing_engine_flagged(self):
        findings = project_findings({
            "repro.core.decoder": "from repro.engine.runner import run\n",
            "repro.engine.runner": "def run():\n    return None\n",
        }, ["XIMP002"])
        assert rules_of(findings) == ["XIMP002"]
        assert "repro.engine" in findings[0].message

    def test_engine_importing_core_is_clean(self):
        findings = project_findings({
            "repro.engine.runner": "import repro.core.decoder\n",
            "repro.core.decoder": "def decode():\n    return None\n",
        }, ["XIMP002"])
        assert findings == []

    def test_library_importing_staticcheck_flagged(self):
        findings = project_findings({
            "repro.engine.runner": "from repro.staticcheck import run_check\n",
            "repro.staticcheck": "def run_check():\n    return None\n",
        }, ["XIMP002"])
        assert rules_of(findings) == ["XIMP002"]
        assert "staticcheck" in findings[0].message

    def test_cli_importing_staticcheck_is_clean(self):
        findings = project_findings({
            "repro.cli": "from repro.staticcheck import run_check\n",
            "repro.staticcheck": "def run_check():\n    return None\n",
        }, ["XIMP002"])
        assert findings == []

    def test_stale_all_name_flagged(self):
        findings = project_findings({
            "repro.shim": '__all__ = ["gone"]\n',
        }, ["XIMP003"])
        assert rules_of(findings) == ["XIMP003"]
        assert "gone" in findings[0].message

    def test_stale_from_import_flagged(self):
        findings = project_findings({
            "repro.shim": "from repro.real import vanished\n",
            "repro.real": "def still_here():\n    return None\n",
        }, ["XIMP003"])
        assert rules_of(findings) == ["XIMP003"]
        assert "vanished" in findings[0].message

    def test_live_reexport_is_clean(self):
        findings = project_findings({
            "repro.shim": (
                "from repro.real import still_here\n"
                '__all__ = ["still_here"]\n'
            ),
            "repro.real": "def still_here():\n    return None\n",
        }, ["XIMP003"])
        assert findings == []

    def test_wildcard_module_skipped(self):
        findings = project_findings({
            "repro.shim": (
                "from repro.real import *  # noqa: F401,F403\n"
                '__all__ = ["whatever"]\n'
            ),
            "repro.real": "def still_here():\n    return None\n",
        }, ["XIMP003"])
        assert findings == []

    def test_submodule_import_is_not_stale(self):
        findings = project_findings({
            "repro.pkg": "",
            "repro.pkg.sub": "def f():\n    return None\n",
            "repro.shim": "from repro.pkg import sub\n",
        }, ["XIMP003"])
        assert findings == []


# ----------------------------------------------------------------------
# Acceptance scenario: the planted violation from the issue


class TestPlantedViolation:
    def test_rng_draw_moved_inside_memo_is_caught(self):
        # exact_decoder draws a tie-break *outside* _memo today; moving
        # the draw inside the memoised lambda must be caught statically.
        findings = project_findings({
            "repro.core.exact_decoder": """
                import numpy as np

                class ExactDecoder:
                    def __init__(self):
                        self._rng = np.random.default_rng(0)

                    def decode(self, available):
                        key = tuple(available)
                        return self._memo(
                            key,
                            lambda: list(range(8))[
                                : int(self._rng.integers(1, 5))
                            ],
                        )

                    def _memo(self, key, compute):
                        return compute()
                """,
        }, ["FLOW001"])
        assert rules_of(findings) == ["FLOW001"]
