"""Tests for the placement advisor."""

import pytest

from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    HybridRepetition,
    candidate_placements,
    evaluate_placement,
    rank_placements,
    recommend_placement,
)
from repro.exceptions import ConfigurationError


class TestCandidates:
    def test_cr_always_present(self):
        for n, c in ((5, 2), (7, 3), (8, 4)):
            cands = candidate_placements(n, c)
            assert any(isinstance(p, CyclicRepetition) for p in cands)

    def test_fr_when_divisible(self):
        cands = candidate_placements(8, 4)
        assert any(isinstance(p, FractionalRepetition) for p in cands)

    def test_no_fr_when_not_divisible(self):
        cands = candidate_placements(7, 3)
        assert not any(isinstance(p, FractionalRepetition) for p in cands)

    def test_hr_variants_included(self):
        """HR(8,3,1) and HR(8,0,4) place identically to FR and CR and
        are deduplicated away; the strictly-intermediate c1 remain."""
        cands = candidate_placements(8, 4)
        hr = [p for p in cands if isinstance(p, HybridRepetition)]
        assert {(p.c1, p.c2) for p in hr} == {(1, 3), (2, 2)}

    def test_all_valid(self):
        for p in candidate_placements(12, 4):
            assert p.num_workers == 12
            assert p.partitions_per_worker == 4

    def test_deduplicated(self):
        cands = candidate_placements(8, 4)
        tables = [
            tuple(sorted(
                (w, tuple(sorted(p.partitions_of(w)))) for w in range(8)
            ))
            for p in cands
        ]
        assert len(tables) == len(set(tables))

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            candidate_placements(0, 1)
        with pytest.raises(ConfigurationError):
            candidate_placements(4, 5)


class TestEvaluation:
    def test_exact_for_small_n(self):
        score = evaluate_placement(CyclicRepetition(8, 2), 4)
        assert score.exact

    def test_monte_carlo_for_large_n(self):
        score = evaluate_placement(
            CyclicRepetition(40, 2), 20, trials=200, seed=0
        )
        assert not score.exact
        assert 0 < score.expected_recovered <= 40

    def test_invalid_w(self):
        with pytest.raises(ConfigurationError):
            evaluate_placement(CyclicRepetition(4, 2), 9)

    def test_label(self):
        assert "CyclicRepetition" in evaluate_placement(
            CyclicRepetition(4, 2), 2
        ).label
        assert "c1=2" in evaluate_placement(
            HybridRepetition(8, 2, 2, 2), 2
        ).label


class TestRanking:
    def test_sorted_descending(self):
        ranking = rank_placements(8, 4, 2, trials=200)
        values = [s.expected_recovered for s in ranking]
        assert values == sorted(values, reverse=True)

    def test_fr_tops_ranking_when_available(self):
        """Sec. V-C: FR dominates CR; nothing beats it at its own (n, c)."""
        best = recommend_placement(8, 4, 2, trials=200)
        top = rank_placements(8, 4, 2, trials=200)[0]
        assert best.expected_recovered == top.expected_recovered
        fr_score = evaluate_placement(FractionalRepetition(8, 4), 2)
        assert best.expected_recovered == pytest.approx(
            fr_score.expected_recovered, abs=1e-9
        )

    def test_cr_recommended_when_fr_impossible(self):
        """n=7, c=3: only CR (and trivial HR g=1 duplicates) exist."""
        best = recommend_placement(7, 3, 3, trials=200)
        assert best.placement.num_workers == 7

    def test_hr_c1_ordering_respected(self):
        """Within the HR(8, c1, 4-c1) family the ranking is by c1."""
        ranking = rank_placements(8, 4, 2, trials=200)
        hr_scores = [
            (s.placement.c1, s.expected_recovered)
            for s in ranking
            if isinstance(s.placement, HybridRepetition)
            and s.placement.num_groups == 2
        ]
        by_c1 = sorted(hr_scores)
        values = [v for _, v in by_c1]
        assert values == sorted(values)
