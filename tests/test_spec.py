"""Serialization and validation of the declarative ExperimentSpec."""

from __future__ import annotations

import dataclasses
import json
import textwrap

import pytest

from repro.engine import ExperimentSpec, build_engine, run_spec
from repro.exceptions import ConfigurationError


def _spec(**over):
    base = dict(
        name="spec-test",
        scheme="is-gc-cr",
        num_workers=4,
        partitions_per_worker=2,
        wait_for=2,
        max_steps=5,
        seed=0,
    )
    base.update(over)
    return ExperimentSpec(**base)


class TestValidation:
    def test_defaults_build(self):
        spec = _spec()
        assert spec.backend == "flat"
        assert spec.rule == "sync"
        assert spec.dataset["kind"] == "classification"

    @pytest.mark.parametrize("field, value", [
        ("num_workers", 0),
        ("num_workers", -3),
        ("max_steps", 0),
    ])
    def test_rejects_non_positive(self, field, value):
        with pytest.raises(ConfigurationError, match="positive"):
            _spec(**{field: value})

    def test_rejects_unknown_rule(self):
        with pytest.raises(ConfigurationError, match="unknown rule"):
            _spec(rule="teleport")

    def test_unknown_scheme_fails_at_build(self):
        spec = _spec(scheme="quantum")
        with pytest.raises(ConfigurationError, match="quantum"):
            build_engine(spec)


class TestRoundTrip:
    def test_dict_round_trip(self):
        spec = _spec(scheme_params={"policy": None}, learning_rate=0.1)
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        data = _spec().to_dict()
        data["gpu_count"] = 8
        with pytest.raises(ConfigurationError, match="gpu_count"):
            ExperimentSpec.from_dict(data)

    def test_json_file_round_trip(self, tmp_path):
        spec = _spec(delay={"kind": "exponential", "mean": 0.25})
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ExperimentSpec.load(path) == spec

    def test_json_round_trip_preserves_trajectory(self, tmp_path):
        """Serialisation must not perturb the run: same spec on disk,
        same bits out."""
        spec = _spec()
        path = tmp_path / "spec.json"
        spec.save(path)
        direct = run_spec(spec)
        loaded = run_spec(str(path))
        assert direct.loss_curve == loaded.loss_curve
        assert direct.total_sim_time == loaded.total_sim_time

    def test_toml_load(self, tmp_path):
        path = tmp_path / "spec.toml"
        path.write_text(textwrap.dedent("""\
            name = "toml-spec"
            scheme = "is-gc-fr"
            num_workers = 4
            partitions_per_worker = 2
            wait_for = 2
            max_steps = 3
            seed = 7

            [delay]
            kind = "exponential"
            mean = 0.5
        """))
        spec = ExperimentSpec.load(path)
        assert spec.name == "toml-spec"
        assert spec.scheme == "is-gc-fr"
        assert spec.delay == {"kind": "exponential", "mean": 0.5}

    def test_unknown_suffix_rejected(self, tmp_path):
        path = tmp_path / "spec.yaml"
        path.write_text("name: nope")
        with pytest.raises(ConfigurationError, match=".yaml"):
            ExperimentSpec.load(path)

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            ExperimentSpec.load(tmp_path / "ghost.json")

    def test_non_mapping_file_rejected(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps([1, 2, 3]))
        with pytest.raises(ConfigurationError, match="mapping"):
            ExperimentSpec.load(path)


class TestEnvironmentSections:
    def test_env_sections_round_trip(self, tmp_path):
        spec = _spec(
            delay={"kind": "pareto", "alpha": 2.5, "scale": 0.3},
            failure={"kind": "transient-dropouts", "probability": 0.05},
            compute={"kind": "uniform", "base": 0.05, "per_partition": 0.1},
            network={"kind": "uniform", "latency": 0.002, "bandwidth": 1e9},
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec
        path = tmp_path / "spec.json"
        spec.save(path)
        assert ExperimentSpec.load(path) == spec

    def test_contention_section_round_trip(self):
        spec = _spec(
            contention={"kind": "fair-share", "capacity_bytes_per_s": 1e9},
        )
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_failure_section_changes_trajectory(self):
        healthy = run_spec(_spec(seed=3))
        crashy = run_spec(_spec(
            seed=3,
            failure={"kind": "permanent-crashes", "crashed_workers": [0]},
        ))
        assert healthy.loss_curve != crashy.loss_curve

    def test_unknown_env_kind_fails_at_build(self):
        spec = _spec(failure={"kind": "transiant-dropouts",
                              "probability": 0.1})
        with pytest.raises(ConfigurationError, match="transient-dropouts"):
            build_engine(spec)

    @pytest.mark.parametrize("backend", ["actor", "async-arrival"])
    def test_non_flat_backends_reject_flat_only_sections(self, backend):
        spec = _spec(
            backend=backend,
            failure={"kind": "transient-dropouts", "probability": 0.1},
            **({"rule": "async", "wait_for": None, "scheme": "sync-sgd"}
               if backend == "async-arrival" else {}),
        )
        with pytest.raises(ConfigurationError, match="flat backend"):
            build_engine(spec)

    def test_persistent_legacy_sugar_still_builds(self):
        """The pre-registry shorthand (stragglers + mean) keeps working
        through the spec path."""
        summary = run_spec(_spec(delay={
            "kind": "persistent", "stragglers": [0],
            "mean": 2.0, "background_mean": 0.1,
        }))
        assert summary.num_steps == 5


class TestRules:
    @pytest.mark.parametrize("rule, params", [
        ("sync", {}),
        ("local-update", {"local_steps": 2, "local_lr": 0.05}),
        ("adaptive", {"review_every": 2}),
    ])
    def test_each_sync_rule_runs(self, rule, params):
        summary = run_spec(_spec(rule=rule, rule_params=params))
        assert summary.num_steps == 5

    def test_async_rule_returns_async_summary(self):
        summary = run_spec(_spec(scheme="sync-sgd", wait_for=None,
                                 rule="async"))
        assert summary.num_updates == 5

    def test_seed_controls_trajectory(self):
        a = run_spec(_spec(seed=1))
        b = run_spec(_spec(seed=1))
        c = run_spec(_spec(seed=2))
        assert a.loss_curve == b.loss_curve
        assert a.loss_curve != c.loss_curve

    def test_replace_is_the_sweep_idiom(self):
        spec = _spec()
        widened = dataclasses.replace(spec, wait_for=3)
        assert widened.wait_for == 3
        assert spec.wait_for == 2
