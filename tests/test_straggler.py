"""Tests for straggler delay models and traces."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.straggler import (
    BernoulliStraggler,
    DelayTrace,
    ExponentialDelay,
    MixtureDelay,
    NoDelay,
    ParetoDelay,
    PersistentStragglers,
    ShiftedExponentialDelay,
    TraceReplayModel,
)


class TestNoDelay:
    def test_always_zero(self, rng):
        model = NoDelay()
        assert all(model.sample(w, s, rng) == 0.0 for w in range(4) for s in range(4))


class TestExponentialDelay:
    def test_mean_matches(self, rng):
        model = ExponentialDelay(2.0)
        samples = [model.sample(0, s, rng) for s in range(20_000)]
        assert np.mean(samples) == pytest.approx(2.0, rel=0.05)

    def test_non_negative(self, rng):
        model = ExponentialDelay(1.0)
        assert all(model.sample(0, s, rng) >= 0 for s in range(1000))

    def test_affected_subset_only(self, rng):
        model = ExponentialDelay(5.0, affected=[0, 1])
        assert model.sample(2, 0, rng) == 0.0
        assert model.sample(3, 0, rng) == 0.0
        assert model.sample(0, 0, rng) > 0.0 or model.sample(0, 1, rng) >= 0.0

    def test_zero_mean_is_zero(self, rng):
        assert ExponentialDelay(0.0).sample(0, 0, rng) == 0.0

    def test_negative_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            ExponentialDelay(-1.0)

    def test_sample_all(self, rng):
        delays = ExponentialDelay(1.0).sample_all(range(5), 0, rng)
        assert set(delays) == set(range(5))


class TestShiftedExponential:
    def test_floor_respected(self, rng):
        model = ShiftedExponentialDelay(shift=0.5, mean=1.0)
        assert all(model.sample(0, s, rng) >= 0.5 for s in range(500))

    def test_zero_tail(self, rng):
        model = ShiftedExponentialDelay(shift=0.3, mean=0.0)
        assert model.sample(0, 0, rng) == pytest.approx(0.3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ShiftedExponentialDelay(-0.1, 1.0)
        with pytest.raises(ConfigurationError):
            ShiftedExponentialDelay(0.1, -1.0)


class TestPareto:
    def test_non_negative(self, rng):
        model = ParetoDelay(alpha=2.0, scale=1.0)
        assert all(model.sample(0, s, rng) >= 0 for s in range(500))

    def test_heavier_tail_than_exponential(self, rng):
        pareto = ParetoDelay(alpha=1.2, scale=1.0)
        samples = np.array([pareto.sample(0, s, rng) for s in range(20_000)])
        # α ≤ 2 Pareto has effectively unbounded empirical variance;
        # its p99.9/p50 ratio dwarfs the exponential's (~10).
        p999 = np.percentile(samples, 99.9)
        p50 = np.percentile(samples, 50)
        assert p999 / p50 > 50

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParetoDelay(alpha=0.0, scale=1.0)
        with pytest.raises(ConfigurationError):
            ParetoDelay(alpha=1.0, scale=-1.0)


class TestBernoulli:
    def test_probability_zero_never_delays(self, rng):
        model = BernoulliStraggler(0.0, ExponentialDelay(10.0))
        assert all(model.sample(0, s, rng) == 0.0 for s in range(200))

    def test_probability_one_always_draws(self, rng):
        model = BernoulliStraggler(1.0, ShiftedExponentialDelay(1.0, 0.0))
        assert all(model.sample(0, s, rng) == pytest.approx(1.0) for s in range(50))

    def test_rate_approximates_p(self, rng):
        model = BernoulliStraggler(0.3, ShiftedExponentialDelay(1.0, 0.0))
        hits = sum(model.sample(0, s, rng) > 0 for s in range(10_000))
        assert hits / 10_000 == pytest.approx(0.3, abs=0.03)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BernoulliStraggler(1.5, NoDelay())


class TestPersistent:
    def test_only_chosen_workers_straggle(self, rng):
        model = PersistentStragglers([2], ShiftedExponentialDelay(5.0, 0.0))
        assert model.sample(2, 0, rng) == pytest.approx(5.0)
        assert model.sample(0, 0, rng) == 0.0
        assert model.straggler_workers == frozenset({2})

    def test_background_delay(self, rng):
        model = PersistentStragglers(
            [0], ShiftedExponentialDelay(5.0, 0.0),
            background_delay=ShiftedExponentialDelay(0.1, 0.0),
        )
        assert model.sample(1, 0, rng) == pytest.approx(0.1)


class TestMixture:
    def test_single_component(self, rng):
        model = MixtureDelay([ShiftedExponentialDelay(2.0, 0.0)], [1.0])
        assert model.sample(0, 0, rng) == pytest.approx(2.0)

    def test_weights_normalised(self, rng):
        model = MixtureDelay(
            [ShiftedExponentialDelay(1.0, 0.0), ShiftedExponentialDelay(3.0, 0.0)],
            [2.0, 2.0],
        )
        vals = {round(model.sample(0, s, rng), 6) for s in range(200)}
        assert vals == {1.0, 3.0}

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            MixtureDelay([], [])
        with pytest.raises(ConfigurationError):
            MixtureDelay([NoDelay()], [0.0])
        with pytest.raises(ConfigurationError):
            MixtureDelay([NoDelay(), NoDelay()], [1.0])


class TestDelayTrace:
    def test_record_and_replay(self, rng):
        model = ExponentialDelay(1.0)
        trace = DelayTrace.record(model, num_workers=3, num_steps=5, rng=rng)
        replay = TraceReplayModel(trace)
        for step in range(5):
            for worker in range(3):
                assert replay.sample(worker, step, rng) == trace.delay(worker, step)

    def test_steps_wrap(self, rng):
        trace = DelayTrace.record(ExponentialDelay(1.0), 2, 3, rng)
        assert trace.delay(0, 5) == trace.delay(0, 2)

    def test_worker_out_of_range(self, rng):
        trace = DelayTrace.record(NoDelay(), 2, 2, rng)
        with pytest.raises(SimulationError):
            trace.delay(5, 0)

    def test_roundtrip_dict(self, rng):
        trace = DelayTrace.record(ExponentialDelay(1.0), 3, 4, rng)
        clone = DelayTrace.from_dict(trace.to_dict())
        np.testing.assert_allclose(clone.delays, trace.delays)

    def test_from_dict_missing_key(self):
        with pytest.raises(ConfigurationError):
            DelayTrace.from_dict({})

    def test_negative_delays_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayTrace(np.array([[-1.0]]))

    def test_wrong_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            DelayTrace(np.zeros(3))

    def test_replay_deterministic_across_rngs(self):
        trace = DelayTrace.record(
            ExponentialDelay(1.0), 2, 2, np.random.default_rng(0)
        )
        replay = TraceReplayModel(trace)
        a = replay.sample(0, 0, np.random.default_rng(1))
        b = replay.sample(0, 0, np.random.default_rng(2))
        assert a == b

    def test_dimensions(self, rng):
        trace = DelayTrace.record(NoDelay(), 4, 7, rng)
        assert trace.num_workers == 4
        assert trace.num_steps == 7

    def test_invalid_dimensions(self, rng):
        with pytest.raises(ConfigurationError):
            DelayTrace.record(NoDelay(), 0, 5, rng)
