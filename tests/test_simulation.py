"""Tests for the discrete-event simulation layer."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation import (
    AdaptiveWaitK,
    ClusterSimulator,
    ComputeModel,
    DeadlinePolicy,
    Event,
    EventQueue,
    NetworkModel,
    StepStatistics,
    WaitForAll,
    WaitForK,
    linear_rampup,
    moving_average,
    steps_to_threshold,
)
from repro.straggler import NoDelay, PersistentStragglers, ShiftedExponentialDelay
from repro.types import StepRecord


class TestEventQueue:
    def test_orders_by_time(self):
        q = EventQueue()
        q.push(Event(3.0, "b"))
        q.push(Event(1.0, "a"))
        q.push(Event(2.0, "c"))
        assert [e.kind for e in q.drain()] == ["a", "c", "b"]

    def test_fifo_tie_break(self):
        q = EventQueue()
        q.push(Event(1.0, "first"))
        q.push(Event(1.0, "second"))
        assert [e.kind for e in q.drain()] == ["first", "second"]

    def test_pop_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().pop()

    def test_peek(self):
        q = EventQueue()
        q.push(Event(2.0, "x"))
        assert q.peek().kind == "x"
        assert len(q) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            EventQueue().peek()

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            EventQueue().push(Event(-1.0, "bad"))

    def test_drain_until(self):
        q = EventQueue()
        for t in (1.0, 2.0, 3.0):
            q.push(Event(t, f"t{t}"))
        early = list(q.drain_until(2.0))
        assert [e.time for e in early] == [1.0, 2.0]
        assert len(q) == 1

    def test_bool(self):
        q = EventQueue()
        assert not q
        q.push(Event(0.0, "x"))
        assert q


class TestNetworkModel:
    def test_transfer_time_formula(self):
        net = NetworkModel(latency=0.01, bandwidth=1000.0, bytes_per_element=4)
        assert net.transfer_time(250) == pytest.approx(0.01 + 1.0)

    def test_zero_elements_costs_latency(self):
        net = NetworkModel(latency=0.5, bandwidth=1e9)
        assert net.transfer_time(0) == pytest.approx(0.5)

    def test_ideal_network(self):
        from repro.simulation import IDEAL_NETWORK
        assert IDEAL_NETWORK.transfer_time(10**9) == 0.0

    def test_broadcast_independent_of_worker_count(self):
        net = NetworkModel(latency=0.01, bandwidth=1e6)
        assert net.broadcast_time(1000, 2) == net.broadcast_time(1000, 64)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            NetworkModel(latency=-1)
        with pytest.raises(ConfigurationError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ConfigurationError):
            NetworkModel(bytes_per_element=0)
        with pytest.raises(ConfigurationError):
            NetworkModel().transfer_time(-1)
        with pytest.raises(ConfigurationError):
            NetworkModel().broadcast_time(10, 0)


class TestComputeModel:
    def test_linear_in_partitions(self):
        cm = ComputeModel(base=0.1, per_partition=0.2)
        assert cm.step_time(1) == pytest.approx(0.3)
        assert cm.step_time(3) == pytest.approx(0.7)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ComputeModel(base=-0.1)
        with pytest.raises(ConfigurationError):
            ComputeModel().step_time(0)


class TestWaitPolicies:
    ARRIVALS = {0: 1.0, 1: 3.0, 2: 2.0, 3: 5.0}

    def test_wait_for_k_accepts_fastest(self):
        out = WaitForK(2).wait(self.ARRIVALS, step=0)
        assert out.accepted_workers == frozenset({0, 2})
        assert out.proceed_time == pytest.approx(2.0)

    def test_wait_for_all(self):
        out = WaitForAll(4).wait(self.ARRIVALS, step=0)
        assert out.accepted_workers == frozenset(range(4))
        assert out.proceed_time == pytest.approx(5.0)

    def test_wait_for_k_too_few_arrivals(self):
        with pytest.raises(SimulationError):
            WaitForK(5).wait(self.ARRIVALS, step=0)

    def test_wait_for_k_validation(self):
        with pytest.raises(ConfigurationError):
            WaitForK(0)

    def test_empty_arrivals_raise(self):
        with pytest.raises(SimulationError):
            WaitForK(1).wait({}, step=0)

    def test_deadline_accepts_within(self):
        out = DeadlinePolicy(2.5).wait(self.ARRIVALS, step=0)
        assert out.accepted_workers == frozenset({0, 2})
        assert out.proceed_time == pytest.approx(2.5)

    def test_deadline_nobody_made_it(self):
        out = DeadlinePolicy(0.5).wait(self.ARRIVALS, step=0)
        assert out.accepted_workers == frozenset({0})
        assert out.proceed_time == pytest.approx(1.0)

    def test_deadline_validation(self):
        with pytest.raises(ConfigurationError):
            DeadlinePolicy(-1.0)

    def test_adaptive_schedule(self):
        policy = AdaptiveWaitK(lambda step: 1 if step < 5 else 3)
        early = policy.wait(self.ARRIVALS, step=0)
        late = policy.wait(self.ARRIVALS, step=10)
        assert len(early.accepted_workers) == 1
        assert len(late.accepted_workers) == 3

    def test_adaptive_invalid_k(self):
        policy = AdaptiveWaitK(lambda step: 0)
        with pytest.raises(SimulationError):
            policy.wait(self.ARRIVALS, step=0)

    def test_adaptive_clamps_to_arrivals(self):
        policy = AdaptiveWaitK(lambda step: 99)
        out = policy.wait(self.ARRIVALS, step=0)
        assert len(out.accepted_workers) == 4

    def test_linear_rampup(self):
        sched = linear_rampup(2, 10, over_steps=8)
        assert sched(0) == 2
        assert sched(8) == 10
        assert sched(100) == 10
        assert 2 <= sched(4) <= 10

    def test_linear_rampup_validation(self):
        with pytest.raises(ConfigurationError):
            linear_rampup(0, 5, 10)


class TestClusterSimulator:
    def _sim(self, delay_model=None, **kw):
        return ClusterSimulator(
            num_workers=4,
            partitions_per_worker=2,
            compute=ComputeModel(base=0.1, per_partition=0.1),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=delay_model or NoDelay(),
            rng=np.random.default_rng(0),
            **kw,
        )

    def test_clock_advances(self):
        sim = self._sim()
        assert sim.clock == 0.0
        sim.run_round(0, WaitForK(4))
        assert sim.clock > 0.0

    def test_no_delays_all_arrive_together(self):
        sim = self._sim()
        result = sim.run_round(0, WaitForK(4))
        times = list(result.arrivals.values())
        assert max(times) - min(times) == pytest.approx(0.0)
        # base + 2 partitions × 0.1 = 0.3 s of compute.
        assert result.step_time == pytest.approx(0.3)

    def test_persistent_straggler_excluded_by_wait_k(self):
        slow = PersistentStragglers([3], ShiftedExponentialDelay(10.0, 0.0))
        sim = self._sim(delay_model=slow)
        result = sim.run_round(0, WaitForK(3))
        assert result.outcome.accepted_workers == frozenset({0, 1, 2})
        assert result.step_time == pytest.approx(0.3)

    def test_wait_all_pays_the_straggler(self):
        slow = PersistentStragglers([3], ShiftedExponentialDelay(10.0, 0.0))
        sim = self._sim(delay_model=slow)
        result = sim.run_round(0, WaitForK(4))
        assert result.step_time == pytest.approx(10.3)

    def test_rounds_accumulate(self):
        sim = self._sim()
        for step in range(3):
            sim.run_round(step, WaitForK(4))
        assert sim.clock == pytest.approx(0.9)

    def test_reset(self):
        sim = self._sim()
        sim.run_round(0, WaitForK(4))
        sim.reset()
        assert sim.clock == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ClusterSimulator(num_workers=0, partitions_per_worker=1)
        with pytest.raises(ConfigurationError):
            ClusterSimulator(num_workers=2, partitions_per_worker=0)

    def test_network_time_counted(self):
        sim = ClusterSimulator(
            num_workers=2,
            partitions_per_worker=1,
            compute=ComputeModel(base=0.0, per_partition=0.0),
            network=NetworkModel(latency=0.5, bandwidth=float("inf")),
            delay_model=NoDelay(),
            rng=np.random.default_rng(0),
        )
        result = sim.run_round(0, WaitForK(2))
        # broadcast latency + upload latency
        assert result.step_time == pytest.approx(1.0)


class TestMetrics:
    def _records(self, times, recoveries):
        return [
            StepRecord(
                step=i, sim_time=sum(times[: i + 1]), wait_time=t,
                num_available=2, num_recovered=r, recovery_fraction=r / 4,
                loss=1.0,
            )
            for i, (t, r) in enumerate(zip(times, recoveries))
        ]

    def test_statistics(self):
        stats = StepStatistics.from_records(
            self._records([1.0, 2.0, 3.0], [2, 4, 4])
        )
        assert stats.count == 3
        assert stats.mean_step_time == pytest.approx(2.0)
        assert stats.total_time == pytest.approx(6.0)
        assert stats.mean_recovery_fraction == pytest.approx(10 / 12)

    def test_statistics_empty(self):
        with pytest.raises(ValueError):
            StepStatistics.from_records([])

    def test_steps_to_threshold(self):
        assert steps_to_threshold([3.0, 2.0, 0.9, 0.5], 1.0) == 3
        assert steps_to_threshold([3.0, 2.0], 1.0) is None

    def test_moving_average(self):
        out = moving_average([1.0, 3.0, 5.0, 7.0], window=2)
        np.testing.assert_allclose(out, [1.0, 2.0, 4.0, 6.0])

    def test_moving_average_window_one(self):
        np.testing.assert_allclose(
            moving_average([1.0, 2.0], 1), [1.0, 2.0]
        )

    def test_moving_average_validation(self):
        with pytest.raises(ValueError):
            moving_average([1.0], 0)


class TestUnitConvention:
    """Regression tests for the step-relative time convention.

    Policies see step-relative arrivals; RoundResult must carry the
    policy's outcome verbatim (it used to be rebuilt with absolute
    times, so ``proceed_time`` disagreed with ``arrivals`` after the
    first round)."""

    def _sim(self):
        from repro.straggler import ExponentialDelay
        return ClusterSimulator(
            num_workers=4,
            partitions_per_worker=2,
            compute=ComputeModel(base=0.1, per_partition=0.1),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=ExponentialDelay(1.0),
            rng=np.random.default_rng(11),
        )

    def test_arrivals_relative_on_later_rounds(self):
        sim = self._sim()
        for step in range(50):
            sim.run_round(step, WaitForK(3))
        result = sim.run_round(50, WaitForK(3))
        # After 50 rounds the absolute clock dwarfs any single round;
        # relative arrivals stay bounded by compute + delay and must
        # not carry the clock offset.
        assert result.step_start > 10.0
        assert max(result.arrivals.values()) < result.step_start
        assert min(result.arrivals.values()) >= 0.3  # compute floor

    def test_outcome_is_policy_output_verbatim(self):
        sim = self._sim()
        sim.run_round(0, WaitForK(3))
        result = sim.run_round(1, WaitForK(3))
        # proceed_time is the k-th *relative* arrival, and step_end is
        # step_start + proceed_time — one convention, both rounds.
        kth = sorted(result.arrivals.values())[2]
        assert result.outcome.proceed_time == pytest.approx(kth)
        assert result.step_end == pytest.approx(
            result.step_start + result.outcome.proceed_time
        )
        assert result.step_time == pytest.approx(result.outcome.proceed_time)

    def test_deadline_meaningful_on_every_round(self):
        from repro.straggler import ExponentialDelay
        sim = ClusterSimulator(
            num_workers=4,
            partitions_per_worker=2,
            compute=ComputeModel(base=0.1, per_partition=0.1),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=ExponentialDelay(0.2),
            rng=np.random.default_rng(3),
        )
        policy = DeadlinePolicy(1.0)
        for step in range(5):
            result = sim.run_round(step, policy)
            # A per-step deadline caps every round's duration; under the
            # old absolute-time rebuild this held only for round 0.
            assert result.step_time <= 1.0 + 1e-9


class TestResetDeterminism:
    def _stochastic_sim(self, delay_model):
        from repro.straggler import TransientDropouts
        return ClusterSimulator(
            num_workers=6,
            partitions_per_worker=2,
            compute=ComputeModel(base=0.1, per_partition=0.1),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=delay_model,
            failure_model=TransientDropouts(0.2),
            rng=np.random.default_rng(42),
        )

    def _run(self, sim, rounds=8):
        from repro.simulation import BestEffortWaitForK
        out = []
        for step in range(rounds):
            r = sim.run_round(step, BestEffortWaitForK(3))
            out.append((r.arrivals, r.step_start, r.step_end))
        return out

    def test_reset_replays_stochastic_run_exactly(self):
        from repro.straggler import ExponentialDelay
        sim = self._stochastic_sim(ExponentialDelay(1.0))
        first = self._run(sim)
        sim.reset()
        assert sim.clock == 0.0
        assert self._run(sim) == first

    def test_reset_rewinds_bursty_markov_state(self):
        from repro.straggler import BurstyDelay, ExponentialDelay
        model = BurstyDelay(
            ExponentialDelay(2.0), enter_burst=0.5, exit_burst=0.1
        )
        sim = self._stochastic_sim(model)
        first = self._run(sim)
        sim.reset()
        assert not any(model.in_burst(w) for w in range(6))
        assert self._run(sim) == first

    def test_reset_replays_recorded_trace(self):
        from repro.straggler import (
            DelayTrace, ExponentialDelay, TraceReplayModel,
        )
        trace = DelayTrace.record(
            ExponentialDelay(1.5), 4, 6, np.random.default_rng(0)
        )
        sim = ClusterSimulator(
            num_workers=4,
            partitions_per_worker=2,
            compute=ComputeModel(base=0.1, per_partition=0.1),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=TraceReplayModel(trace),
            rng=np.random.default_rng(0),
        )
        first = [sim.run_round(s, WaitForK(3)).arrivals for s in range(6)]
        sim.reset()
        second = [sim.run_round(s, WaitForK(3)).arrivals for s in range(6)]
        assert first == second


class TestWastedCompute:
    def _sim(self):
        return ClusterSimulator(
            num_workers=4,
            partitions_per_worker=2,
            compute=ComputeModel(base=0.1, per_partition=0.1),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=NoDelay(),
            rng=np.random.default_rng(0),
        )

    def test_wait_all_wastes_nothing(self):
        result = self._sim().run_round(0, WaitForK(4))
        assert result.wasted_compute == pytest.approx(0.0)

    def test_ignored_workers_counted(self):
        result = self._sim().run_round(0, WaitForK(1))
        # 3 ignored workers × (0.1 + 2 × 0.1) compute-seconds each.
        assert result.wasted_compute == pytest.approx(3 * 0.3)

    def test_waste_monotone_in_ignored_count(self):
        sims = [self._sim() for _ in range(3)]
        wastes = [
            sims[i].run_round(0, WaitForK(k)).wasted_compute
            for i, k in enumerate((1, 2, 4))
        ]
        assert wastes[0] > wastes[1] > wastes[2]
