"""Tests for online straggler estimation and the adaptive wait policy."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.straggler import EstimatingWaitPolicy, LatencyEstimator


class TestLatencyEstimator:
    def test_first_observation_is_estimate(self):
        est = LatencyEstimator()
        est.update(0, 2.0)
        assert est.estimate(0) == pytest.approx(2.0)

    def test_ewma_moves_toward_new_values(self):
        est = LatencyEstimator(smoothing=0.5)
        est.update(0, 2.0)
        est.update(0, 4.0)
        assert est.estimate(0) == pytest.approx(3.0)

    def test_unobserved_worker_none(self):
        est = LatencyEstimator()
        assert est.estimate(9) is None
        assert est.straggler_score(9) is None

    def test_observation_counter(self):
        est = LatencyEstimator()
        est.update(0, 1.0)
        est.update(0, 1.0)
        assert est.observations(0) == 2
        assert est.observations(1) == 0

    def test_median(self):
        est = LatencyEstimator()
        for worker, latency in enumerate((1.0, 2.0, 9.0)):
            est.update(worker, latency)
        assert est.median_estimate() == pytest.approx(2.0)

    def test_median_even_count(self):
        est = LatencyEstimator()
        for worker, latency in enumerate((1.0, 3.0)):
            est.update(worker, latency)
        assert est.median_estimate() == pytest.approx(2.0)

    def test_straggler_detection(self):
        est = LatencyEstimator(threshold=2.0)
        for worker in range(4):
            est.update(worker, 1.0)
        est.update(4, 10.0)
        assert est.stragglers() == frozenset({4})

    def test_straggler_recovers_after_speedup(self):
        est = LatencyEstimator(smoothing=1.0, threshold=2.0)
        for worker in range(3):
            est.update(worker, 1.0)
        est.update(3, 10.0)
        assert 3 in est.stragglers()
        est.update(3, 1.0)  # smoothing=1.0 → estimate jumps down
        assert 3 not in est.stragglers()

    def test_update_round(self):
        est = LatencyEstimator()
        est.update_round({0: 1.0, 1: 2.0})
        assert est.estimate(1) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            LatencyEstimator(smoothing=0.0)
        with pytest.raises(ConfigurationError):
            LatencyEstimator(threshold=1.0)
        with pytest.raises(ConfigurationError):
            LatencyEstimator().update(0, -1.0)


class TestEstimatingWaitPolicy:
    def _arrivals(self, slow_worker=3, slow=10.0):
        arrivals = {w: 1.0 + 0.01 * w for w in range(4)}
        arrivals[slow_worker] = slow
        return arrivals

    def test_waits_for_all_during_warmup(self):
        policy = EstimatingWaitPolicy(LatencyEstimator(), warmup_rounds=2)
        out = policy.wait(self._arrivals(), step=0)
        assert len(out.accepted_workers) == 4

    def test_learns_to_drop_persistent_straggler(self):
        policy = EstimatingWaitPolicy(
            LatencyEstimator(smoothing=0.5), warmup_rounds=2, slack=2.0
        )
        for step in range(6):
            out = policy.wait(self._arrivals(), step=step)
        # After warmup the chronic straggler is no longer waited for.
        assert 3 not in out.accepted_workers
        assert out.proceed_time < 2.0

    def test_never_below_min_wait(self):
        policy = EstimatingWaitPolicy(
            LatencyEstimator(smoothing=1.0), min_wait=2, warmup_rounds=0,
            slack=1.01,
        )
        arrivals = {0: 1.0, 1: 50.0, 2: 60.0, 3: 70.0}
        for step in range(4):
            out = policy.wait(arrivals, step=step)
        assert len(out.accepted_workers) >= 2

    def test_keeps_everyone_when_homogeneous(self):
        policy = EstimatingWaitPolicy(
            LatencyEstimator(), warmup_rounds=1, slack=1.5
        )
        arrivals = {w: 1.0 for w in range(4)}
        policy.wait(arrivals, step=0)
        out = policy.wait(arrivals, step=1)
        assert len(out.accepted_workers) == 4

    def test_validation(self):
        est = LatencyEstimator()
        with pytest.raises(ConfigurationError):
            EstimatingWaitPolicy(est, min_wait=0)
        with pytest.raises(ConfigurationError):
            EstimatingWaitPolicy(est, slack=0.5)
        with pytest.raises(ConfigurationError):
            EstimatingWaitPolicy(est, warmup_rounds=-1)

    def test_integration_with_trainer(self):
        """End to end: the adaptive policy trains and sheds the straggler."""
        from repro.core import CyclicRepetition
        from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
        from repro.straggler import PersistentStragglers, ShiftedExponentialDelay
        from repro.training import (
            DistributedTrainer,
            ISGCStrategy,
            LogisticRegressionModel,
            SGD,
            build_batch_streams,
            make_classification,
            partition_dataset,
        )

        n = 4
        ds = make_classification(256, 6, num_classes=2, separation=3.0, seed=0)
        streams = build_batch_streams(
            partition_dataset(ds, n, seed=1), 16, seed=2
        )
        policy = EstimatingWaitPolicy(
            LatencyEstimator(smoothing=0.5), warmup_rounds=3, slack=2.0
        )
        strategy = ISGCStrategy(
            CyclicRepetition(n, 2), wait_for=n,
            rng=np.random.default_rng(0), policy=policy,
        )
        cluster = ClusterSimulator(
            n, 2, compute=ComputeModel(0.05, 0.05),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=PersistentStragglers(
                [0], ShiftedExponentialDelay(5.0, 0.0)
            ),
            rng=np.random.default_rng(1),
        )
        trainer = DistributedTrainer(
            LogisticRegressionModel(6, seed=0), streams, strategy, cluster,
            SGD(0.3), eval_data=ds,
        )
        trainer.run(max_steps=12)
        records = trainer.records
        # Warmup steps pay the straggler; later steps do not.
        assert records[0].wait_time > 5.0
        assert records[-1].wait_time < 1.0
        assert records[-1].num_available == 3
