"""Tests for heterogeneous-cluster modelling."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.simulation import (
    ClusterSimulator,
    ComputeModel,
    HeterogeneousComputeModel,
    HeterogeneousDelayAdapter,
    NetworkModel,
    WaitForK,
    lognormal_speed_profile,
    tiered_speed_profile,
    uniform_speed_profile,
)


class TestProfiles:
    def test_uniform(self):
        profile = uniform_speed_profile(4)
        assert profile == {0: 1.0, 1: 1.0, 2: 1.0, 3: 1.0}

    def test_uniform_validation(self):
        with pytest.raises(ConfigurationError):
            uniform_speed_profile(0)

    def test_tiered(self):
        profile = tiered_speed_profile(4, [1, 3], slow_factor=2.5)
        assert profile[0] == 1.0
        assert profile[1] == 2.5
        assert profile[3] == 2.5

    def test_tiered_validation(self):
        with pytest.raises(ConfigurationError):
            tiered_speed_profile(4, [7])

    def test_lognormal_median_near_one(self):
        profile = lognormal_speed_profile(4000, sigma=0.3, seed=0)
        median = float(np.median(list(profile.values())))
        assert median == pytest.approx(1.0, abs=0.05)

    def test_lognormal_all_positive(self):
        profile = lognormal_speed_profile(100, sigma=1.0, seed=1)
        assert all(f > 0 for f in profile.values())

    def test_lognormal_validation(self):
        with pytest.raises(ConfigurationError):
            lognormal_speed_profile(4, sigma=-1.0)


class TestHeterogeneousComputeModel:
    def test_step_time_scaled(self):
        model = HeterogeneousComputeModel(
            ComputeModel(0.1, 0.2), {0: 1.0, 1: 3.0}
        )
        assert model.step_time_for(0, 2) == pytest.approx(0.5)
        assert model.step_time_for(1, 2) == pytest.approx(1.5)

    def test_unknown_worker_defaults_to_one(self):
        model = HeterogeneousComputeModel(ComputeModel(0.1, 0.2), {})
        assert model.factor(7) == 1.0

    def test_worker_view_matches(self):
        model = HeterogeneousComputeModel(
            ComputeModel(0.1, 0.2), {2: 2.0}
        )
        view = model.worker_view(2)
        assert view.step_time(3) == pytest.approx(model.step_time_for(2, 3))

    def test_non_positive_factor_rejected(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousComputeModel(ComputeModel(), {0: 0.0})

    def test_speed_factors_copy(self):
        model = HeterogeneousComputeModel(ComputeModel(), {0: 2.0})
        factors = model.speed_factors
        factors[0] = 99.0
        assert model.factor(0) == 2.0


class TestDelayAdapter:
    def test_surplus_only(self):
        model = HeterogeneousComputeModel(
            ComputeModel(0.1, 0.1), tiered_speed_profile(4, [0], 3.0)
        )
        adapter = HeterogeneousDelayAdapter(model, partitions_per_worker=2)
        rng = np.random.default_rng(0)
        # Fast worker: no extra delay; slow worker: (3-1)×0.3 = 0.6 s.
        assert adapter.sample(1, 0, rng) == pytest.approx(0.0)
        assert adapter.sample(0, 0, rng) == pytest.approx(0.6)

    def test_validation(self):
        model = HeterogeneousComputeModel(ComputeModel(), {})
        with pytest.raises(ConfigurationError):
            HeterogeneousDelayAdapter(model, partitions_per_worker=0)

    def test_drives_cluster_simulator(self):
        """Heterogeneous cluster end to end: wait-k dodges the slow tier."""
        het = HeterogeneousComputeModel(
            ComputeModel(0.1, 0.1), tiered_speed_profile(4, [3], 10.0)
        )
        sim = ClusterSimulator(
            num_workers=4,
            partitions_per_worker=2,
            compute=ComputeModel(0.1, 0.1),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=HeterogeneousDelayAdapter(het, 2),
            rng=np.random.default_rng(0),
        )
        result = sim.run_round(0, WaitForK(3))
        assert 3 not in result.outcome.accepted_workers
        assert result.step_time == pytest.approx(0.3)
        full = sim.run_round(1, WaitForK(4))
        assert full.step_time == pytest.approx(3.0)
