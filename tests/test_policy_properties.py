"""Property-based tests (hypothesis) for wait policies and schedules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import DecodeError
from repro.simulation import BestEffortWaitForK, WaitForK, linear_rampup


@st.composite
def arrival_maps(draw, max_workers=12):
    n = draw(st.integers(min_value=1, max_value=max_workers))
    times = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n, max_size=n,
        )
    )
    return {w: t for w, t in enumerate(times)}


class TestBestEffortEquivalence:
    """BestEffortWaitForK only differs from WaitForK when fewer than
    ``k`` workers report; with ``>= k`` arrivals the two are the same
    policy."""

    @settings(max_examples=200)
    @given(arrivals=arrival_maps(), k=st.integers(min_value=1, max_value=12))
    def test_identical_when_enough_arrivals(self, arrivals, k):
        if len(arrivals) < k:
            return
        strict = WaitForK(k).wait(arrivals, step=0)
        best = BestEffortWaitForK(k).wait(arrivals, step=0)
        assert best.accepted_workers == strict.accepted_workers
        assert best.proceed_time == strict.proceed_time

    @settings(max_examples=100)
    @given(arrivals=arrival_maps(max_workers=6))
    def test_accepts_everyone_when_short(self, arrivals):
        k = len(arrivals) + 3
        out = BestEffortWaitForK(k).wait(arrivals, step=0)
        assert out.accepted_workers == frozenset(arrivals)
        assert out.proceed_time == max(arrivals.values())


class TestLinearRampupProperties:
    @settings(max_examples=200)
    @given(
        start_k=st.integers(min_value=1, max_value=50),
        end_k=st.integers(min_value=1, max_value=50),
        over_steps=st.integers(min_value=1, max_value=200),
        step=st.integers(min_value=0, max_value=400),
    )
    def test_monotone_and_bounded(self, start_k, end_k, over_steps, step):
        sched = linear_rampup(start_k, end_k, over_steps)
        lo, hi = sorted((start_k, end_k))
        assert lo <= sched(step) <= hi
        # Monotone in the ramp direction, step to step.
        delta = sched(step + 1) - sched(step)
        if end_k >= start_k:
            assert delta >= 0
        else:
            assert delta <= 0

    @settings(max_examples=100)
    @given(
        start_k=st.integers(min_value=1, max_value=50),
        end_k=st.integers(min_value=1, max_value=50),
        over_steps=st.integers(min_value=1, max_value=200),
    )
    def test_exact_endpoints(self, start_k, end_k, over_steps):
        sched = linear_rampup(start_k, end_k, over_steps)
        assert sched(0) == start_k
        assert sched(over_steps) == end_k
        assert sched(over_steps + 1000) == end_k


class TestDecoderForErrors:
    def test_unknown_scheme_falls_back_to_exact(self):
        from repro.core import ExplicitPlacement
        from repro.core.decoders import decoder_for

        placement = ExplicitPlacement.from_rows([[0, 1], [1, 2], [2, 0]])
        decoder = decoder_for(placement)
        assert decoder.scheme == "exact"
        result = decoder.decode([0, 1, 2])
        assert result.num_recovered >= 1

    def test_descriptive_error_when_fallback_unavailable(self, monkeypatch):
        # With "exact" stripped from the registry (and its module
        # already cached, so re-import registers nothing), decoder_for
        # must raise a DecodeError naming the scheme and the registered
        # alternatives — not a bare KeyError.
        from repro.core import ExplicitPlacement
        from repro.core import decoders as decoders_mod
        import repro.core.exact_decoder  # noqa: F401 — ensure registered

        monkeypatch.delitem(decoders_mod._REGISTRY, "exact")
        placement = ExplicitPlacement.from_rows([[0, 1], [1, 0]])
        with pytest.raises(DecodeError) as exc:
            decoders_mod.decoder_for(placement)
        msg = str(exc.value)
        assert "explicit" in msg
        assert "cr" in msg and "fr" in msg
