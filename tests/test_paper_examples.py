"""The paper's worked examples, end to end (Figs. 1-3).

These tests pin the library to the exact scenarios drawn in the paper's
introduction, with n = 4 workers and (for the coded schemes) c = 2.
Paper indices are 1-based; the library is 0-based, so W1..W4 → 0..3 and
D1..D4 → 0..3.
"""

import numpy as np
import pytest

from repro.codes import ClassicGradientCode
from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    SummationCode,
    decoder_for,
)
from repro.exceptions import CodingError
from repro.training import ISSGDStrategy, SyncSGDStrategy


@pytest.fixture
def gradients(rng):
    return {p: rng.normal(size=8) for p in range(4)}


@pytest.fixture
def full_sum(gradients):
    return sum(gradients.values())


class TestFig1aSyncSGD:
    def test_master_needs_all_four(self, gradients, full_sum):
        strat = SyncSGDStrategy(4)
        total, recovered = strat.decode(range(4), strat.encode(gradients))
        np.testing.assert_allclose(total, full_sum)
        assert recovered == frozenset(range(4))


class TestFig1bGradientCoding:
    def test_any_three_workers_recover_g(self, gradients, full_sum):
        """s = 1: the master decodes g from any 3 of the 4 workers."""
        code = ClassicGradientCode(
            CyclicRepetition(4, 2), rng=np.random.default_rng(0)
        )
        payloads = code.encode(gradients)
        for straggler in range(4):
            survivors = [w for w in range(4) if w != straggler]
            np.testing.assert_allclose(
                code.decode(survivors, payloads), full_sum, atol=1e-6
            )

    def test_two_workers_cannot(self, gradients):
        """GC's restriction: nothing recoverable beyond c - 1 stragglers."""
        code = ClassicGradientCode(
            CyclicRepetition(4, 2), rng=np.random.default_rng(0)
        )
        payloads = code.encode(gradients)
        with pytest.raises(CodingError):
            code.decode([0, 2], payloads)


class TestFig1cIgnoreStragglerSGD:
    def test_w1_w3_recover_partial_sum(self, gradients):
        """Fig. 1(c): with W2, W4 straggling the master gets g1 + g3."""
        strat = ISSGDStrategy(4, wait_for=2)
        total, recovered = strat.decode([0, 2], strat.encode(gradients))
        np.testing.assert_allclose(total, gradients[0] + gradients[2])
        assert recovered == frozenset({0, 2})


class TestFig1dISGC:
    def test_two_workers_fully_recover_g(self, gradients, full_sum):
        """Fig. 1(d): IS-GC recovers g1+g2+g3+g4 from just W1 and W3
        (0-indexed 0 and 2) — the paper's headline example."""
        placement = CyclicRepetition(4, 2)
        code = SummationCode(placement)
        payloads = code.encode(gradients)
        decoder = decoder_for(placement, rng=np.random.default_rng(0))
        decision = decoder.decode([0, 2])
        assert decision.recovered_partitions == frozenset(range(4))
        np.testing.assert_allclose(
            code.decode_sum(decision, payloads), full_sum, atol=1e-9
        )

    def test_beats_issgd_on_same_workers(self, gradients):
        placement = CyclicRepetition(4, 2)
        code = SummationCode(placement)
        decoder = decoder_for(placement, rng=np.random.default_rng(0))
        isgc_recovered = decoder.decode([0, 2]).recovered_partitions
        issgd = ISSGDStrategy(4, 2)
        _, issgd_recovered = issgd.decode([0, 2], issgd.encode(gradients))
        assert len(isgc_recovered) > len(issgd_recovered)


class TestFig2Placements:
    def test_fr_worker_payloads(self, gradients):
        """Fig. 2(a): W1/W2 send g1+g2; W3/W4 send g3+g4."""
        payloads = SummationCode(FractionalRepetition(4, 2)).encode(gradients)
        np.testing.assert_allclose(payloads[0], gradients[0] + gradients[1])
        np.testing.assert_allclose(payloads[1], gradients[0] + gradients[1])
        np.testing.assert_allclose(payloads[2], gradients[2] + gradients[3])
        np.testing.assert_allclose(payloads[3], gradients[2] + gradients[3])

    def test_cr_worker_payloads(self, gradients):
        """CR with summation coding: W_i sends g_i + g_{i+1 mod 4}."""
        payloads = SummationCode(CyclicRepetition(4, 2)).encode(gradients)
        for i in range(4):
            np.testing.assert_allclose(
                payloads[i], gradients[i] + gradients[(i + 1) % 4]
            )


class TestFig3DecodingOrder:
    """Sec. V-A: greedy-by-arrival is suboptimal; the conflict-graph
    decoder is not."""

    def test_w1_then_w3_w4_still_optimal(self, gradients, full_sum):
        """Arrivals W1, W3, W4 (0-indexed 0, 2, 3): a sequential greedy
        that commits to W1+W3 cannot add W4; the decoder must instead
        find the pair covering all four partitions."""
        placement = CyclicRepetition(4, 2)
        decoder = decoder_for(placement, rng=np.random.default_rng(0))
        decision = decoder.decode([0, 2, 3])
        assert decision.num_recovered == 4
        code = SummationCode(placement)
        payloads = code.encode(gradients)
        np.testing.assert_allclose(
            code.decode_sum(decision, payloads), full_sum, atol=1e-9
        )
