"""Tests for the classic gradient-coding baseline (Tandon et al.)."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes import (
    ClassicGradientCode,
    cyclic_b_matrix,
    decode_vector,
    fractional_b_matrix,
    supports_full_recovery,
)
from repro.core import CyclicRepetition, FractionalRepetition, HybridRepetition
from repro.exceptions import CodingError


class TestFractionalBMatrix:
    def test_shape_and_support(self):
        b = fractional_b_matrix(6, 2)
        assert b.shape == (6, 6)
        for worker in range(6):
            group = worker // 2
            support = set(np.flatnonzero(b[worker]))
            assert support == {2 * group, 2 * group + 1}

    def test_invalid_params(self):
        with pytest.raises(CodingError):
            fractional_b_matrix(5, 2)
        with pytest.raises(CodingError):
            fractional_b_matrix(4, 0)

    @pytest.mark.parametrize("n,c", [(4, 2), (6, 2), (6, 3), (8, 4)])
    def test_tolerates_c_minus_1_stragglers(self, n, c):
        b = fractional_b_matrix(n, c)
        s = c - 1
        for survivors in combinations(range(n), n - s):
            assert supports_full_recovery(b, list(survivors)), survivors


class TestCyclicBMatrix:
    def test_identity_when_c_one(self):
        np.testing.assert_array_equal(cyclic_b_matrix(5, 1), np.eye(5))

    def test_cyclic_support(self):
        n, c = 7, 3
        b = cyclic_b_matrix(n, c, rng=np.random.default_rng(0))
        for i in range(n):
            support = set(np.flatnonzero(b[i]))
            assert support <= {(i + r) % n for r in range(c)}
            assert b[i, i] == pytest.approx(1.0)

    @pytest.mark.parametrize("n,c", [(4, 2), (5, 2), (6, 3), (7, 3), (8, 4)])
    def test_tolerates_c_minus_1_stragglers(self, n, c):
        b = cyclic_b_matrix(n, c, rng=np.random.default_rng(1))
        s = c - 1
        for survivors in combinations(range(n), n - s):
            assert supports_full_recovery(b, list(survivors)), survivors

    def test_fails_beyond_c_minus_1_stragglers(self):
        """The restriction IS-GC removes: with s = c stragglers the
        all-ones vector escapes the row span almost surely."""
        n, c = 6, 2
        b = cyclic_b_matrix(n, c, rng=np.random.default_rng(2))
        failures = 0
        for survivors in combinations(range(n), n - c):
            if not supports_full_recovery(b, list(survivors)):
                failures += 1
        assert failures > 0

    def test_invalid_params(self):
        with pytest.raises(CodingError):
            cyclic_b_matrix(4, 5)


class TestDecodeVector:
    def test_reconstructs_ones(self):
        b = cyclic_b_matrix(6, 2, rng=np.random.default_rng(3))
        rows = [0, 2, 3, 4, 5]
        a = decode_vector(b, rows)
        np.testing.assert_allclose(b[rows].T @ a, np.ones(6), atol=1e-6)

    def test_empty_survivors(self):
        with pytest.raises(CodingError):
            decode_vector(np.eye(4), [])

    def test_undecodable_raises(self):
        b = np.eye(4)  # c=1: any missing worker is unrecoverable
        with pytest.raises(CodingError, match="cannot tolerate"):
            decode_vector(b, [0, 1, 2])


class TestClassicGradientCode:
    def _grads(self, n, dim=4, seed=0):
        rng = np.random.default_rng(seed)
        return {p: rng.normal(size=dim) for p in range(n)}

    @pytest.mark.parametrize("placement", [
        FractionalRepetition(6, 2),
        CyclicRepetition(6, 2),
        CyclicRepetition(7, 3),
    ])
    def test_exact_recovery_from_any_allowed_survivor_set(self, placement):
        code = ClassicGradientCode(placement, rng=np.random.default_rng(0))
        n = placement.num_workers
        grads = self._grads(n)
        payloads = code.encode(grads)
        expected = sum(grads[p] for p in range(n))
        for survivors in combinations(range(n), code.required_workers):
            decoded = code.decode(list(survivors), payloads)
            np.testing.assert_allclose(decoded, expected, atol=1e-6)

    def test_more_than_required_survivors_also_fine(self):
        placement = CyclicRepetition(6, 3)
        code = ClassicGradientCode(placement, rng=np.random.default_rng(1))
        grads = self._grads(6)
        payloads = code.encode(grads)
        decoded = code.decode(range(6), payloads)
        np.testing.assert_allclose(
            decoded, sum(grads[p] for p in range(6)), atol=1e-6
        )

    def test_too_few_survivors_raises(self):
        placement = CyclicRepetition(6, 2)
        code = ClassicGradientCode(placement, rng=np.random.default_rng(2))
        grads = self._grads(6)
        payloads = code.encode(grads)
        assert not code.can_decode([0, 1])
        with pytest.raises(CodingError):
            code.decode([0, 1], payloads)

    def test_max_stragglers_and_required_workers(self):
        code = ClassicGradientCode(
            CyclicRepetition(8, 3), rng=np.random.default_rng(0)
        )
        assert code.max_stragglers == 2
        assert code.required_workers == 6

    def test_hr_placement_rejected(self):
        with pytest.raises(CodingError, match="FR and CR"):
            ClassicGradientCode(HybridRepetition(8, 2, 2, 2))

    def test_missing_payload_raises(self):
        placement = CyclicRepetition(4, 2)
        code = ClassicGradientCode(placement, rng=np.random.default_rng(0))
        with pytest.raises(CodingError, match="payloads"):
            code.decode([0, 1, 2], {0: np.zeros(2)})

    def test_b_matrix_copy(self):
        code = ClassicGradientCode(
            CyclicRepetition(4, 2), rng=np.random.default_rng(0)
        )
        b = code.b_matrix
        b[:] = 0.0
        assert code.b_matrix.any()

    def test_paper_fig1b_structure(self):
        """Fig. 1(b): n=4, c=2 CR code — master decodes g from any 3."""
        placement = CyclicRepetition(4, 2)
        code = ClassicGradientCode(placement, rng=np.random.default_rng(5))
        grads = self._grads(4)
        payloads = code.encode(grads)
        g = sum(grads[p] for p in range(4))
        for straggler in range(4):
            survivors = [w for w in range(4) if w != straggler]
            np.testing.assert_allclose(
                code.decode(survivors, payloads), g, atol=1e-6
            )
