"""Tests for dataset generation, partitioning, and batch streams."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.training import (
    BatchStream,
    build_batch_streams,
    make_cifar_like,
    make_classification,
    make_regression,
    partition_dataset,
)
from repro.training.datasets import Dataset


class TestGenerators:
    def test_regression_shapes(self):
        ds = make_regression(100, 5)
        assert ds.features.shape == (100, 5)
        assert ds.labels.shape == (100,)
        assert ds.num_samples == 100
        assert ds.num_features == 5

    def test_regression_reproducible(self):
        a = make_regression(50, 3, seed=7)
        b = make_regression(50, 3, seed=7)
        np.testing.assert_array_equal(a.features, b.features)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_regression_noise_controls_residual(self):
        clean = make_regression(500, 4, noise=0.0, seed=0)
        # Noise-free labels are an exact linear function: perfect lstsq fit.
        x = np.hstack([clean.features, np.ones((500, 1))])
        _, residuals, _, _ = np.linalg.lstsq(x, clean.labels, rcond=None)
        assert residuals.size == 0 or residuals[0] < 1e-18

    def test_classification_labels_in_range(self):
        ds = make_classification(200, 6, num_classes=4)
        assert set(np.unique(ds.labels)) <= set(range(4))

    def test_classification_validation(self):
        with pytest.raises(ConfigurationError):
            make_classification(100, 5, num_classes=1)
        with pytest.raises(ConfigurationError):
            make_classification(0, 5)

    def test_classification_separable(self):
        """Highly-separated blobs are nearly linearly classifiable."""
        ds = make_classification(500, 8, num_classes=2, separation=8.0, seed=1)
        centers = [
            ds.features[ds.labels == k].mean(axis=0) for k in (0, 1)
        ]
        direction = centers[1] - centers[0]
        scores = ds.features @ direction
        threshold = (centers[0] @ direction + centers[1] @ direction) / 2
        acc = np.mean((scores > threshold) == ds.labels)
        assert acc > 0.95

    def test_cifar_like_dimensions(self):
        ds = make_cifar_like(128, side=4, num_classes=10)
        assert ds.features.shape == (128, 4 * 4 * 3)
        assert set(np.unique(ds.labels)) <= set(range(10))

    def test_cifar_like_uses_all_classes_eventually(self):
        ds = make_cifar_like(2000, side=4, num_classes=10, seed=0)
        assert len(np.unique(ds.labels)) >= 8


class TestDataset:
    def test_subset(self):
        ds = make_regression(10, 2)
        sub = ds.subset(np.array([0, 3, 5]))
        assert sub.num_samples == 3
        np.testing.assert_array_equal(sub.features[1], ds.features[3])

    def test_mismatched_shapes_rejected(self):
        with pytest.raises(ConfigurationError):
            Dataset(features=np.zeros((4, 2)), labels=np.zeros(3))

    def test_1d_features_rejected(self):
        with pytest.raises(ConfigurationError):
            Dataset(features=np.zeros(4), labels=np.zeros(4))


class TestPartitioning:
    def test_sizes_near_equal(self):
        ds = make_regression(103, 3)
        parts = partition_dataset(ds, 4, seed=0)
        sizes = [p.num_samples for p in parts]
        assert sum(sizes) == 103
        assert max(sizes) - min(sizes) <= 1

    def test_partitions_disjoint_and_cover(self):
        ds = make_regression(60, 2, seed=1)
        parts = partition_dataset(ds, 3, seed=2)
        rows = np.vstack([p.features for p in parts])
        # Same multiset of rows as original (sorted lexicographically).
        assert rows.shape == ds.features.shape
        np.testing.assert_allclose(
            np.sort(rows, axis=0), np.sort(ds.features, axis=0)
        )

    def test_too_many_partitions(self):
        with pytest.raises(ConfigurationError):
            partition_dataset(make_regression(3, 2), 4)

    def test_invalid_count(self):
        with pytest.raises(ConfigurationError):
            partition_dataset(make_regression(10, 2), 0)

    def test_reproducible(self):
        ds = make_regression(40, 2, seed=5)
        a = partition_dataset(ds, 4, seed=9)
        b = partition_dataset(ds, 4, seed=9)
        for pa, pb in zip(a, b):
            np.testing.assert_array_equal(pa.features, pb.features)


class TestBatchStream:
    def _stream(self, pid=0, batch=8, seed=3):
        ds = make_regression(64, 3, seed=1)
        return BatchStream(ds, partition_id=pid, batch_size=batch, seed=seed)

    def test_batch_shapes(self):
        x, y = self._stream().batch(0)
        assert x.shape == (8, 3)
        assert y.shape == (8,)

    def test_same_step_same_batch(self):
        s = self._stream()
        x1, y1 = s.batch(5)
        x2, y2 = s.batch(5)
        np.testing.assert_array_equal(x1, x2)
        np.testing.assert_array_equal(y1, y2)

    def test_stateless_any_order(self):
        """Batches must not depend on the order they are requested in —
        this is what makes cross-scheme comparisons exact."""
        a = self._stream()
        b = self._stream()
        xa, _ = a.batch(3)
        a.batch(0)
        b.batch(7)
        xb, _ = b.batch(3)
        np.testing.assert_array_equal(xa, xb)

    def test_different_steps_differ(self):
        s = self._stream()
        x1, _ = s.batch(0)
        x2, _ = s.batch(1)
        assert not np.array_equal(x1, x2)

    def test_different_partition_ids_differ(self):
        x1, _ = self._stream(pid=0).batch(0)
        x2, _ = self._stream(pid=1).batch(0)
        assert not np.array_equal(x1, x2)

    def test_batch_clamped_to_partition_size(self):
        ds = make_regression(5, 2)
        s = BatchStream(ds, 0, batch_size=100, seed=0)
        x, _ = s.batch(0)
        assert x.shape[0] == 5

    def test_invalid_batch_size(self):
        with pytest.raises(ConfigurationError):
            BatchStream(make_regression(4, 2), 0, batch_size=0)

    def test_build_batch_streams(self):
        ds = make_regression(40, 2)
        parts = partition_dataset(ds, 4, seed=0)
        streams = build_batch_streams(parts, batch_size=4, seed=1)
        assert len(streams) == 4
        for s in streams:
            x, y = s.batch(0)
            assert x.shape == (4, 2)
