"""Engine-level tests: backend equivalence and registry extensibility.

Two properties anchor the refactor:

* **flat == actor, exactly.**  The hypothesis test runs the same
  :class:`~repro.engine.spec.ExperimentSpec` through both execution
  backends and demands the full trajectories — losses, step times,
  recovered counts, accepted sets, final parameters — be equal with
  ``==``, not ``approx``.  The spec pins a zero-latency,
  infinite-bandwidth network because the actor path additionally
  charges parameter-broadcast time; with that cost zeroed the two
  paths must consume identical delay-model draws and produce identical
  arithmetic.

* **A new scheme is one registration.**  The acceptance test registers
  a toy placement scheme with :func:`~repro.engine.spec.register_scheme`
  and drives it end-to-end through ``repro run <spec.json>`` without
  touching any engine code.
"""

from __future__ import annotations

import dataclasses
import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import cli
from repro.engine import (
    ExperimentSpec,
    build_engine,
    make_strategy,
    register_backend,
    register_scheme,
    run_spec,
)
from repro.engine.backends import FlatBackend
from repro.engine.spec import BACKEND_REGISTRY, SCHEME_REGISTRY
from repro.exceptions import ConfigurationError

# Zero network cost: the actor path charges broadcast time, the flat
# path does not, so exact cross-backend equality needs a free network.
FREE_NETWORK = {"latency": 0.0, "bandwidth": float("inf")}


def _spec(scheme, *, wait_for, seed, max_steps=6, **over):
    return ExperimentSpec(
        name="equiv",
        scheme=scheme,
        num_workers=4,
        partitions_per_worker=2,
        wait_for=wait_for,
        max_steps=max_steps,
        seed=seed,
        network=FREE_NETWORK,
        **over,
    )


def _record_key(record):
    return (
        record.step,
        record.num_available,
        record.num_recovered,
        record.recovery_fraction,
        record.loss,
        record.grad_norm,
        record.wait_time,
        record.sim_time,
    )


class TestBackendEquivalence:
    @settings(max_examples=20, deadline=None)
    @given(
        scheme=st.sampled_from(["sync-sgd", "is-sgd", "is-gc-fr", "is-gc-cr"]),
        wait_for=st.integers(min_value=1, max_value=4),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    def test_flat_and_actor_trajectories_identical(
        self, scheme, wait_for, seed
    ):
        spec = _spec(scheme, wait_for=wait_for, seed=seed)
        flat_engine = build_engine(dataclasses.replace(spec, backend="flat"))
        actor_engine = build_engine(dataclasses.replace(spec, backend="actor"))

        flat_summary = flat_engine.run(spec.max_steps)
        actor_summary = actor_engine.run(spec.max_steps)

        assert flat_summary.loss_curve == actor_summary.loss_curve
        assert flat_summary.total_sim_time == actor_summary.total_sim_time
        assert len(flat_engine.records) == len(actor_engine.records)
        for fr, ar in zip(flat_engine.records, actor_engine.records):
            assert _record_key(fr) == _record_key(ar)
        np.testing.assert_array_equal(
            flat_engine.model.get_parameters(),
            actor_engine.model.get_parameters(),
        )

    def test_hr_scheme_matches_across_backends(self):
        spec = ExperimentSpec(
            name="hr-equiv",
            scheme="is-gc-hr",
            num_workers=6,
            wait_for=3,
            max_steps=6,
            seed=5,
            network=FREE_NETWORK,
            scheme_params={"c1": 1, "c2": 2, "num_groups": 2},
        )
        flat = run_spec(dataclasses.replace(spec, backend="flat"))
        actor = run_spec(dataclasses.replace(spec, backend="actor"))
        assert flat.loss_curve == actor.loss_curve
        assert flat.total_sim_time == actor.total_sim_time

    def test_async_rule_forces_arrival_backend(self):
        spec = _spec("sync-sgd", wait_for=None, seed=3, rule="async")
        summary = run_spec(spec)
        assert summary.num_updates == spec.max_steps


class TestRegistries:
    def test_unknown_scheme_lists_known_ones(self):
        with pytest.raises(ConfigurationError, match="is-gc-cr"):
            make_strategy("no-such-scheme", num_workers=4)

    def test_toy_scheme_runs_through_cli(self, tmp_path, capsys):
        """Acceptance criterion: register a scheme, run it via
        ``repro run`` — no engine code modified."""

        @register_scheme("toy-everyone")
        def _toy(*, num_workers, partitions_per_worker=1, wait_for=None,
                 rng=None, **params):
            from repro.training.strategies import SyncSGDStrategy

            return SyncSGDStrategy(num_workers)

        try:
            spec = ExperimentSpec(
                name="toy-via-cli",
                scheme="toy-everyone",
                num_workers=4,
                max_steps=4,
                seed=0,
            )
            path = tmp_path / "toy.json"
            path.write_text(json.dumps(spec.to_dict()))

            assert cli.main(["run", str(path)]) == 0
            out = capsys.readouterr().out
            assert "toy-via-cli" in out
            assert "toy-everyone" in out
        finally:
            SCHEME_REGISTRY.pop("toy-everyone", None)

    def test_toy_backend_is_one_registration(self):
        """Backends are pluggable the same way: a registered factory is
        picked up by ``build_engine`` with no engine edits."""

        @register_backend("toy-flat")
        def _toy_backend(ctx):
            from repro.simulation.cluster import ClusterSimulator

            cluster = ClusterSimulator(
                num_workers=ctx.strategy.placement.num_workers,
                partitions_per_worker=(
                    ctx.strategy.placement.partitions_per_worker
                ),
                compute=ctx.compute,
                network=ctx.network,
                delay_model=ctx.delay_model,
                rng=ctx.rng,
            )
            return FlatBackend(cluster)

        try:
            spec = _spec(
                "is-gc-cr", wait_for=2, seed=9, backend="toy-flat"
            )
            toy = run_spec(spec)
            ref = run_spec(dataclasses.replace(spec, backend="flat"))
            assert toy.loss_curve == ref.loss_curve
        finally:
            BACKEND_REGISTRY.pop("toy-flat", None)

    def test_unknown_backend_raises(self):
        spec = _spec("is-gc-cr", wait_for=2, seed=0, backend="warp-drive")
        with pytest.raises(ConfigurationError, match="warp-drive"):
            build_engine(spec)


class TestSweepOverSpec:
    def test_sweep_varies_spec_fields(self):
        from repro.experiments.sweep import Sweep

        base = _spec("is-gc-cr", wait_for=2, seed=1, max_steps=4)
        sweep = Sweep.over_spec(
            "wait-for sweep", base, {"wait_for": [2, 3], "seed": [1, 2]}
        )
        result = sweep.run(strict=True)
        assert len(result) == 4
        assert result.ok
        assert {p.params["wait_for"] for p in result} == {2, 3}

    def test_sweep_rejects_non_spec_fields(self):
        from repro.experiments.sweep import Sweep

        base = _spec("is-gc-cr", wait_for=2, seed=1)
        with pytest.raises(ConfigurationError, match="not spec fields"):
            Sweep.over_spec("bad", base, {"warp_factor": [9]})
