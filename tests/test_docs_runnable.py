"""Executable documentation: every python code block in the docs runs.

Extracts fenced ```python blocks from README.md and docs/tutorial.md
and executes them in a shared namespace per file (later blocks may use
names defined by earlier ones, as the prose implies).  Keeps the docs
from rotting as the API evolves.

The spec-based examples (``examples/quickstart.py`` and
``examples/async_vs_isgc.py``) are executed the same way, with their
training budgets shrunk, so the ExperimentSpec walk-throughs stay
runnable too.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

#: blocks that would train for a while are shrunk via these rewrites —
#: semantics preserved, budgets reduced.
_SPEEDUPS = [
    ("max_steps=500", "max_steps=30"),
    ("max_steps=300", "max_steps=30"),
    ("make_cifar_like(2048)", "make_cifar_like(256)"),
    ("trials=4000", "trials=300"),
]


def _python_blocks(path: pathlib.Path):
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def _run_blocks(path: pathlib.Path):
    blocks = _python_blocks(path)
    assert blocks, f"{path.name} has no python blocks — wrong path?"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        code = block
        for slow, fast in _SPEEDUPS:
            code = code.replace(slow, fast)
        try:
            exec(compile(code, f"{path.name}[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name} code block {i} failed: {exc}\n---\n{block}"
            )


_EXAMPLE_SPEEDUPS = [
    ("max_steps=200", "max_steps=15"),
    ('"samples": 2048', '"samples": 512'),
    ("UPDATE_BUDGET = 240", "UPDATE_BUDGET = 48"),
]


def _run_example(path: pathlib.Path):
    """Execute an example script as ``__main__``, budgets reduced."""
    code = path.read_text()
    for slow, fast in _EXAMPLE_SPEEDUPS:
        code = code.replace(slow, fast)
    namespace = {"__name__": "__main__", "__file__": str(path)}
    exec(compile(code, str(path), "exec"), namespace)
    return namespace


def test_quickstart_example_runs(capsys):
    ns = _run_example(REPO / "examples" / "quickstart.py")
    assert "spec" not in ns  # locals stay inside main()
    out = capsys.readouterr().out
    assert "is-gc-cr" in out
    assert "decoded == full g : True" in out


def test_async_vs_isgc_example_runs(capsys):
    _run_example(REPO / "examples" / "async_vs_isgc.py")
    out = capsys.readouterr().out
    assert "sync-sgd" in out
    assert "async staleness" in out


def test_serve_quickstart_example_runs(capsys):
    _run_example(REPO / "examples" / "serve_quickstart.py")
    out = capsys.readouterr().out
    assert "four schemes, one coordinator" in out
    assert "job-0002: cancelled" in out
    assert "demo-job: done" in out


def test_serving_doc_blocks_run(tmp_path, monkeypatch, capsys):
    # The serving doc's blocks drop a mailbox directory in the cwd.
    monkeypatch.chdir(tmp_path)
    _run_blocks(REPO / "docs" / "serving.md")


def test_readme_blocks_run(capsys):
    _run_blocks(REPO / "README.md")


def test_tutorial_blocks_run(capsys):
    _run_blocks(REPO / "docs" / "tutorial.md")


def test_observability_blocks_run(tmp_path, monkeypatch, capsys):
    # These blocks write/read run.jsonl relative to the cwd.
    monkeypatch.chdir(tmp_path)
    _run_blocks(REPO / "docs" / "observability.md")


def test_static_analysis_catalogue_is_generated():
    """The rule table in docs/static_analysis.md is the generated one.

    The docs promise the catalogue is produced by ``repro check
    --list-rules --format markdown``; regenerate and compare, so the
    table cannot drift from the registry.
    """
    from repro.staticcheck.report import catalogue_markdown

    text = (REPO / "docs" / "static_analysis.md").read_text()
    match = re.search(
        r"<!-- BEGIN RULE CATALOGUE -->\n(.*?)\n<!-- END RULE CATALOGUE -->",
        text,
        flags=re.DOTALL,
    )
    assert match, "catalogue markers missing from docs/static_analysis.md"
    assert match.group(1).strip() == catalogue_markdown().strip()
