"""Executable documentation: every python code block in the docs runs.

Extracts fenced ```python blocks from README.md and docs/tutorial.md
and executes them in a shared namespace per file (later blocks may use
names defined by earlier ones, as the prose implies).  Keeps the docs
from rotting as the API evolves.
"""

import pathlib
import re

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent

#: blocks that would train for a while are shrunk via these rewrites —
#: semantics preserved, budgets reduced.
_SPEEDUPS = [
    ("max_steps=500", "max_steps=30"),
    ("max_steps=300", "max_steps=30"),
    ("make_cifar_like(2048)", "make_cifar_like(256)"),
    ("trials=4000", "trials=300"),
]


def _python_blocks(path: pathlib.Path):
    text = path.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def _run_blocks(path: pathlib.Path):
    blocks = _python_blocks(path)
    assert blocks, f"{path.name} has no python blocks — wrong path?"
    namespace: dict = {}
    for i, block in enumerate(blocks):
        code = block
        for slow, fast in _SPEEDUPS:
            code = code.replace(slow, fast)
        try:
            exec(compile(code, f"{path.name}[block {i}]", "exec"), namespace)
        except Exception as exc:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{path.name} code block {i} failed: {exc}\n---\n{block}"
            )


def test_readme_blocks_run(capsys):
    _run_blocks(REPO / "README.md")


def test_tutorial_blocks_run(capsys):
    _run_blocks(REPO / "docs" / "tutorial.md")


def test_observability_blocks_run(tmp_path, monkeypatch, capsys):
    # These blocks write/read run.jsonl relative to the cwd.
    monkeypatch.chdir(tmp_path)
    _run_blocks(REPO / "docs" / "observability.md")
