"""Tests for the conv classifier, placement migration, and graph art."""

import numpy as np
import pytest

from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    HybridRepetition,
    conflict_graph,
    migration_cost_seconds,
    migration_plan,
    worth_migrating,
)
from repro.exceptions import ConfigurationError, TrainingError
from repro.graphs import Graph, adjacency_art, degree_histogram, edge_list_art
from repro.simulation import NetworkModel
from repro.training import Conv2DClassifier, make_cifar_like


class TestConv2DClassifier:
    @pytest.fixture
    def model(self):
        return Conv2DClassifier(
            side=6, in_channels=2, num_filters=3, num_classes=3,
            kernel=3, seed=1,
        )

    def test_parameter_roundtrip(self, model, rng):
        params = rng.normal(size=model.num_parameters)
        model.set_parameters(params)
        np.testing.assert_allclose(model.get_parameters(), params)

    def test_gradient_matches_finite_differences(self, model, rng):
        x = rng.normal(size=(4, 6 * 6 * 2))
        y = rng.integers(3, size=4)
        _, grad = model.loss_and_gradient(x, y)
        base = model.get_parameters()
        eps = 1e-6
        numeric = np.zeros_like(base)
        for i in range(base.size):
            bump = np.zeros_like(base)
            bump[i] = eps
            model.set_parameters(base + bump)
            hi = model.loss(x, y)
            model.set_parameters(base - bump)
            lo = model.loss(x, y)
            numeric[i] = (hi - lo) / (2 * eps)
        model.set_parameters(base)
        np.testing.assert_allclose(grad, numeric, atol=1e-5)

    def test_learns_cifar_like(self):
        ds = make_cifar_like(512, side=6, num_classes=4, seed=0)
        model = Conv2DClassifier(6, 3, 8, 4, seed=0)
        initial = model.loss(ds.features, ds.labels)
        rng = np.random.default_rng(1)
        for _ in range(150):
            idx = rng.integers(512, size=64)
            _, grad = model.loss_and_gradient(ds.features[idx], ds.labels[idx])
            model.set_parameters(model.get_parameters() - 0.1 * grad)
        final = model.loss(ds.features, ds.labels)
        assert final < 0.8 * initial

    def test_predict_shape(self, model, rng):
        x = rng.normal(size=(7, 6 * 6 * 2))
        assert model.predict(x).shape == (7,)

    def test_validation(self):
        with pytest.raises(TrainingError):
            Conv2DClassifier(side=3, in_channels=1, num_filters=2,
                             num_classes=2, kernel=3)
        with pytest.raises(TrainingError):
            Conv2DClassifier(side=8, in_channels=0, num_filters=2,
                             num_classes=2)


class TestMigration:
    def test_noop_migration(self):
        pl = CyclicRepetition(6, 2)
        plan = migration_plan(pl, pl)
        assert plan.is_noop
        assert plan.total_partition_copies == 0
        assert migration_cost_seconds(plan, 1e6) == 0.0

    def test_cr_to_fr_copies_counted(self):
        source = CyclicRepetition(8, 2)
        target = FractionalRepetition(8, 2)
        plan = migration_plan(source, target)
        # Odd workers swap their forward partition for the backward one.
        assert plan.total_partition_copies == 4
        assert not plan.is_noop
        # Every copy's donor actually holds the partition at the source.
        for worker, fetches in plan.copies.items():
            for partition, donor in fetches:
                assert partition in source.partitions_of(donor)
                assert partition in target.partitions_of(worker)
                assert partition not in source.partitions_of(worker)

    def test_hr_sweep_step_is_cheap(self):
        """Moving one step along the Fig. 13 spectrum touches few
        partitions — the case for online adaptation."""
        a = HybridRepetition(8, 1, 3, 2)
        b = HybridRepetition(8, 2, 2, 2)
        plan = migration_plan(a, b)
        assert 0 < plan.total_partition_copies <= 8

    def test_donor_load_balancing(self):
        source = FractionalRepetition(8, 2)
        target = CyclicRepetition(8, 2)
        plan = migration_plan(source, target)
        donors = [d for fetches in plan.copies.values() for _, d in fetches]
        # No single donor should serve everything.
        from collections import Counter
        assert max(Counter(donors).values()) <= 2

    def test_cost_scales_with_parallel_fetches(self):
        source = CyclicRepetition(8, 2)
        target = FractionalRepetition(8, 2)
        plan = migration_plan(source, target)
        net = NetworkModel(latency=0.0, bandwidth=1e6)
        cost = migration_cost_seconds(plan, partition_bytes=2e6, network=net)
        # max 1 copy per worker → one 2-second transfer, in parallel.
        assert cost == pytest.approx(2.0 * plan.max_copies_per_worker)

    def test_worth_migrating_amortisation(self):
        source = CyclicRepetition(8, 2)
        target = FractionalRepetition(8, 2)
        plan = migration_plan(source, target)
        net = NetworkModel(latency=0.0, bandwidth=1e6)
        assert worth_migrating(
            plan, partition_bytes=1e6, per_step_saving=0.5,
            remaining_steps=100, network=net,
        )
        assert not worth_migrating(
            plan, partition_bytes=1e6, per_step_saving=0.001,
            remaining_steps=10, network=net,
        )

    def test_size_mismatch(self):
        with pytest.raises(ConfigurationError):
            migration_plan(CyclicRepetition(4, 2), CyclicRepetition(6, 2))

    def test_validation(self):
        plan = migration_plan(CyclicRepetition(4, 2), CyclicRepetition(4, 2))
        with pytest.raises(ConfigurationError):
            migration_cost_seconds(plan, -1.0)
        with pytest.raises(ConfigurationError):
            worth_migrating(plan, 1.0, -0.1, 10)


class TestGraphArt:
    def test_adjacency_art_structure(self):
        g = conflict_graph(CyclicRepetition(4, 2))
        art = adjacency_art(g)
        lines = art.splitlines()
        assert len(lines) == 5  # header + 4 rows
        assert "#" in art and "\\" in art

    def test_adjacency_art_symmetric(self):
        g = conflict_graph(CyclicRepetition(5, 2))
        rows = adjacency_art(g).splitlines()[1:]
        cells = [r.split()[1:] for r in rows]
        for i in range(5):
            for j in range(5):
                assert cells[i][j] == cells[j][i]

    def test_edge_list_art(self):
        g = conflict_graph(FractionalRepetition(4, 2))
        art = edge_list_art(g)
        assert "W0 -- W1" in art
        assert "W2 -- W3" in art

    def test_edge_list_isolated_vertex(self):
        g = Graph(vertices=[0])
        assert "no conflicts" in edge_list_art(g)

    def test_degree_histogram(self):
        g = conflict_graph(CyclicRepetition(6, 2))
        assert degree_histogram(g) == "degree 2: 6 worker(s)"

    def test_empty_graph_rejected(self):
        with pytest.raises(ConfigurationError):
            adjacency_art(Graph())
        with pytest.raises(ConfigurationError):
            edge_list_art(Graph())
        with pytest.raises(ConfigurationError):
            degree_histogram(Graph())


class TestMigrationProperties:
    """Property-based checks on migration planning (hypothesis)."""

    def _placements(self):
        from repro.core import HybridRepetition
        return [
            CyclicRepetition(8, 2),
            FractionalRepetition(8, 2),
            CyclicRepetition(8, 4),
            FractionalRepetition(8, 4),
            HybridRepetition(8, 2, 2, 2),
            HybridRepetition(8, 1, 3, 2),
        ]

    def test_plan_realises_target(self):
        """source ∪ fetched == target for every worker, every pair."""
        for source in self._placements():
            for target in self._placements():
                if source.partitions_per_worker != target.partitions_per_worker:
                    continue
                plan = migration_plan(source, target)
                for worker in range(8):
                    have = set(source.partitions_of(worker))
                    for partition, _donor in plan.copies.get(worker, []):
                        have.add(partition)
                    assert set(target.partitions_of(worker)) <= have

    def test_plan_noop_iff_identical(self):
        for source in self._placements():
            for target in self._placements():
                if source.partitions_per_worker != target.partitions_per_worker:
                    continue
                plan = migration_plan(source, target)
                same = all(
                    set(source.partitions_of(w)) == set(target.partitions_of(w))
                    for w in range(8)
                )
                assert plan.is_noop == same

    def test_total_matches_per_worker_sum(self):
        for source in self._placements():
            for target in self._placements():
                if source.partitions_per_worker != target.partitions_per_worker:
                    continue
                plan = migration_plan(source, target)
                assert plan.total_partition_copies == sum(
                    len(lst) for lst in plan.copies.values()
                )
                assert plan.max_copies_per_worker == max(
                    (len(lst) for lst in plan.copies.values()), default=0
                )
