"""Tests for training strategies (the scheme abstraction)."""

import numpy as np
import pytest

from repro.core import CyclicRepetition, FractionalRepetition, HybridRepetition
from repro.exceptions import CodingError, ConfigurationError
from repro.simulation import DeadlinePolicy, WaitForK
from repro.training import (
    ClassicGCStrategy,
    ISGCStrategy,
    ISSGDStrategy,
    SyncSGDStrategy,
)


def _grads(n, dim=6, seed=0):
    rng = np.random.default_rng(seed)
    return {p: rng.normal(size=dim) for p in range(n)}


class TestSyncSGD:
    def test_requires_all_workers(self):
        strat = SyncSGDStrategy(4)
        grads = _grads(4)
        payloads = strat.encode(grads)
        total, recovered = strat.decode(range(4), payloads)
        np.testing.assert_allclose(total, sum(grads.values()))
        assert recovered == frozenset(range(4))

    def test_partial_workers_rejected(self):
        strat = SyncSGDStrategy(4)
        with pytest.raises(ConfigurationError):
            strat.decode([0, 1, 2], strat.encode(_grads(4)))

    def test_policy_is_wait_all(self):
        strat = SyncSGDStrategy(4)
        assert isinstance(strat.policy, WaitForK)
        assert strat.policy.k == 4

    def test_payloads_are_partition_gradients(self):
        strat = SyncSGDStrategy(3)
        grads = _grads(3)
        payloads = strat.encode(grads)
        for w in range(3):
            np.testing.assert_allclose(payloads[w], grads[w])


class TestISSGD:
    def test_sums_available_only(self):
        strat = ISSGDStrategy(4, wait_for=2)
        grads = _grads(4)
        total, recovered = strat.decode([1, 3], strat.encode(grads))
        np.testing.assert_allclose(total, grads[1] + grads[3])
        assert recovered == frozenset({1, 3})

    def test_invalid_w(self):
        with pytest.raises(ConfigurationError):
            ISSGDStrategy(4, wait_for=0)
        with pytest.raises(ConfigurationError):
            ISSGDStrategy(4, wait_for=5)

    def test_custom_policy_injected(self):
        strat = ISSGDStrategy(4, wait_for=2, policy=DeadlinePolicy(1.0))
        assert isinstance(strat.policy, DeadlinePolicy)

    def test_describe(self):
        assert "is-sgd" in ISSGDStrategy(4, 2).describe()


class TestClassicGC:
    def test_waits_for_n_minus_c_plus_1(self):
        strat = ClassicGCStrategy(
            CyclicRepetition(6, 3), rng=np.random.default_rng(0)
        )
        assert strat.policy.k == 4

    def test_exact_recovery(self):
        strat = ClassicGCStrategy(
            CyclicRepetition(5, 2), rng=np.random.default_rng(1)
        )
        grads = _grads(5)
        payloads = strat.encode(grads)
        total, recovered = strat.decode([0, 2, 3, 4], payloads)
        np.testing.assert_allclose(total, sum(grads.values()), atol=1e-6)
        assert recovered == frozenset(range(5))

    def test_fr_variant(self):
        strat = ClassicGCStrategy(
            FractionalRepetition(6, 2), rng=np.random.default_rng(2)
        )
        grads = _grads(6)
        payloads = strat.encode(grads)
        total, _ = strat.decode([0, 2, 4, 5, 1], payloads)
        np.testing.assert_allclose(total, sum(grads.values()), atol=1e-6)

    def test_too_many_stragglers_fails(self):
        strat = ClassicGCStrategy(
            CyclicRepetition(5, 2), rng=np.random.default_rng(3)
        )
        payloads = strat.encode(_grads(5))
        with pytest.raises(CodingError):
            strat.decode([0, 1, 2], payloads)


class TestISGC:
    @pytest.mark.parametrize("placement", [
        FractionalRepetition(4, 2),
        CyclicRepetition(4, 2),
        HybridRepetition(8, 2, 2, 2),
    ])
    def test_decoded_sum_matches_recovered_set(self, placement):
        n = placement.num_workers
        strat = ISGCStrategy(placement, wait_for=2, rng=np.random.default_rng(0))
        grads = _grads(n)
        payloads = strat.encode(grads)
        total, recovered = strat.decode([0, n - 1], payloads)
        np.testing.assert_allclose(
            total, sum(grads[p] for p in recovered), atol=1e-9
        )

    def test_name_includes_scheme(self):
        assert ISGCStrategy(CyclicRepetition(4, 2), 2).name == "is-gc-cr"
        assert ISGCStrategy(FractionalRepetition(4, 2), 2).name == "is-gc-fr"
        assert ISGCStrategy(HybridRepetition(8, 2, 2, 2), 2).name == "is-gc-hr"

    def test_single_worker_decodes(self):
        strat = ISGCStrategy(
            CyclicRepetition(4, 2), wait_for=1, rng=np.random.default_rng(0)
        )
        grads = _grads(4)
        total, recovered = strat.decode([2], strat.encode(grads))
        assert recovered == frozenset({2, 3})
        np.testing.assert_allclose(total, grads[2] + grads[3])

    def test_invalid_w(self):
        with pytest.raises(ConfigurationError):
            ISGCStrategy(CyclicRepetition(4, 2), wait_for=9)

    def test_full_availability_full_recovery(self):
        strat = ISGCStrategy(
            CyclicRepetition(6, 2), wait_for=6, rng=np.random.default_rng(0)
        )
        grads = _grads(6)
        total, recovered = strat.decode(range(6), strat.encode(grads))
        assert recovered == frozenset(range(6))
        np.testing.assert_allclose(total, sum(grads.values()), atol=1e-9)

    def test_recovers_more_than_issgd_with_same_workers(self):
        """The paper's headline: same available workers, more gradients."""
        n = 4
        grads = _grads(n)
        isgc = ISGCStrategy(
            FractionalRepetition(n, 2), wait_for=2,
            rng=np.random.default_rng(0),
        )
        issgd = ISSGDStrategy(n, wait_for=2)
        available = [0, 2]  # different FR groups
        _, rec_gc = isgc.decode(available, isgc.encode(grads))
        _, rec_sgd = issgd.decode(available, issgd.encode(grads))
        assert len(rec_gc) == 4 > len(rec_sgd) == 2
