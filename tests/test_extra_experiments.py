"""Tests for the beyond-the-paper experiment harnesses."""

import pytest

from repro.experiments import (
    adaptive_policy_study,
    adaptive_policy_table,
    enduring_straggler_study,
    enduring_straggler_table,
    run,
)


class TestEnduringStraggler:
    @pytest.fixture(scope="class")
    def points(self):
        return enduring_straggler_study(trials=800, seed=1)

    def test_covers_both_placements(self, points):
        assert {p.placement for p in points} == {"fr", "cr"}

    def test_persistent_brackets_iid(self, points):
        for p in points:
            assert (
                p.persistent_worst_pct - 1e-9
                <= p.iid_recovery_pct
                <= p.persistent_best_pct + 1e-9
            )

    def test_paper_effect_at_w2(self, points):
        """A well-placed enduring straggler pushes w=2 recovery to 100%
        (the Sec. VIII-C '99.6%' observation)."""
        for p in points:
            if p.wait_for == 2:
                assert p.persistent_best_pct == pytest.approx(100.0)
                assert p.iid_recovery_pct < 100.0

    def test_table_renders(self):
        table = enduring_straggler_table(trials=200)
        assert "persistent best" in table.render()


class TestAdaptivePolicyStudy:
    @pytest.fixture(scope="class")
    def points(self):
        return adaptive_policy_study(max_steps=60, loss_threshold=0.0, seed=2)

    def test_all_policies_present(self, points):
        names = {p.policy for p in points}
        assert "wait-4" in names
        assert "latency-estimating" in names
        assert any("deadline" in n for n in names)
        assert any("ramp" in n for n in names)

    def test_waiting_for_all_is_slowest(self, points):
        by_name = {p.policy: p for p in points}
        assert by_name["wait-7"].total_time > by_name["wait-4"].total_time

    def test_estimating_policy_avoids_persistent_stragglers(self, points):
        """After warmup the estimator stops waiting for the two chronic
        stragglers, so its total time lands near the small-w policies
        and far below wait-7."""
        by_name = {p.policy: p for p in points}
        est = by_name["latency-estimating"]
        assert est.total_time < 0.5 * by_name["wait-7"].total_time

    def test_table_renders(self):
        table = adaptive_policy_table(max_steps=25, loss_threshold=0.0)
        assert "wait-policy" in table.render()


class TestRunnerIntegration:
    def test_extra_registered(self):
        from repro.experiments.runner import EXPERIMENTS
        assert "extra" in EXPERIMENTS
