"""Tests for shared value types and the exception hierarchy."""

import pytest

from repro.exceptions import (
    CodingError,
    ConfigurationError,
    DecodeError,
    PlacementError,
    ReproError,
    SimulationError,
    TrainingError,
)
from repro.types import DecodeResult, StepRecord, TrainingSummary


class TestExceptionHierarchy:
    @pytest.mark.parametrize("exc_cls", [
        ConfigurationError, PlacementError, DecodeError,
        CodingError, SimulationError, TrainingError,
    ])
    def test_all_derive_from_repro_error(self, exc_cls):
        assert issubclass(exc_cls, ReproError)

    def test_placement_error_is_configuration_error(self):
        """Placement problems are configuration problems: one except
        clause for 'bad setup' catches both."""
        assert issubclass(PlacementError, ConfigurationError)

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise DecodeError("nothing arrived")

    def test_library_errors_not_builtin_value_error(self):
        """Library failures are distinguishable from programming bugs."""
        assert not issubclass(DecodeError, ValueError)


class TestDecodeResult:
    def _result(self):
        return DecodeResult(
            selected_workers=frozenset({0, 2}),
            recovered_partitions=frozenset({0, 1, 2, 3}),
            available_workers=frozenset({0, 1, 2}),
            num_searches=2,
        )

    def test_num_recovered(self):
        assert self._result().num_recovered == 4

    def test_frozen(self):
        result = self._result()
        with pytest.raises(AttributeError):
            result.num_searches = 9

    def test_recovery_fraction_guides_caller(self):
        """The property intentionally raises — fraction needs n."""
        with pytest.raises(AttributeError, match="placement"):
            _ = self._result().recovery_fraction

    def test_equality(self):
        assert self._result() == self._result()


class TestStepRecord:
    def test_defaults(self):
        record = StepRecord(
            step=0, sim_time=1.0, wait_time=1.0, num_available=2,
            num_recovered=4, recovery_fraction=1.0, loss=0.5,
        )
        assert record.grad_norm == 0.0
        assert record.extras == {}

    def test_extras_mapping(self):
        record = StepRecord(
            step=0, sim_time=1.0, wait_time=1.0, num_available=2,
            num_recovered=4, recovery_fraction=1.0, loss=0.5,
            extras={"lr": 0.1},
        )
        assert record.extras["lr"] == 0.1


class TestTrainingSummary:
    def _summary(self, reached=True):
        return TrainingSummary(
            scheme="is-gc-fr",
            num_steps=10,
            total_sim_time=12.5,
            final_loss=0.25,
            reached_threshold=reached,
            avg_step_time=1.25,
            avg_recovery_fraction=0.9,
            loss_curve=(1.0, 0.25),
            time_curve=(6.0, 12.5),
        )

    def test_describe_converged(self):
        text = self._summary(True).describe()
        assert "converged" in text
        assert "is-gc-fr" in text
        assert "90.0%" in text

    def test_describe_budget_exhausted(self):
        assert "budget exhausted" in self._summary(False).describe()

    def test_immutability(self):
        summary = self._summary()
        with pytest.raises(AttributeError):
            summary.num_steps = 99
