"""Tests for closed-form / exact recovery distributions."""

import numpy as np
import pytest

from repro.analysis import (
    alpha_distribution_exact,
    alpha_distribution_fr,
    expected_alpha_exact,
    expected_alpha_fr,
    expected_recovered_exact,
    monte_carlo_recovery,
)
from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    HybridRepetition,
    alpha_lower_bound,
    alpha_upper_bound,
)
from repro.exceptions import ConfigurationError

from conftest import all_fr_params


class TestExpectedAlphaFR:
    @pytest.mark.parametrize("n,c", [(4, 2), (6, 2), (6, 3), (8, 2), (8, 4)])
    def test_matches_exact_enumeration(self, n, c):
        placement = FractionalRepetition(n, c)
        for w in range(1, n + 1):
            analytic = expected_alpha_fr(n, c, w)
            exact = expected_alpha_exact(placement, w)
            assert analytic == pytest.approx(exact, abs=1e-12), (n, c, w)

    def test_full_availability(self):
        assert expected_alpha_fr(8, 2, 8) == pytest.approx(4.0)

    def test_single_worker(self):
        assert expected_alpha_fr(8, 2, 1) == pytest.approx(1.0)

    def test_matches_monte_carlo(self):
        stats = monte_carlo_recovery(
            FractionalRepetition(8, 2), 4, trials=20_000, seed=0
        )
        analytic = expected_alpha_fr(8, 2, 4) * 2
        assert stats.mean_recovered == pytest.approx(analytic, rel=0.02)

    def test_requires_divisibility(self):
        with pytest.raises(ConfigurationError):
            expected_alpha_fr(5, 2, 2)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            expected_alpha_fr(4, 2, 0)
        with pytest.raises(ConfigurationError):
            expected_alpha_fr(4, 5, 2)


class TestAlphaDistributionFR:
    @pytest.mark.parametrize("n,c", [(4, 2), (6, 2), (6, 3), (8, 4)])
    def test_is_probability_distribution(self, n, c):
        for w in range(1, n + 1):
            pmf = alpha_distribution_fr(n, c, w)
            assert sum(pmf.values()) == pytest.approx(1.0)
            assert all(p > 0 for p in pmf.values())

    @pytest.mark.parametrize("n,c", [(4, 2), (6, 2), (8, 4)])
    def test_matches_exact_enumeration(self, n, c):
        placement = FractionalRepetition(n, c)
        for w in range(1, n + 1):
            analytic = alpha_distribution_fr(n, c, w)
            exact = alpha_distribution_exact(placement, w)
            assert set(analytic) == set(exact)
            for k in analytic:
                assert analytic[k] == pytest.approx(exact[k], abs=1e-12)

    def test_mean_consistent_with_expected(self):
        pmf = alpha_distribution_fr(8, 2, 5)
        mean = sum(k * p for k, p in pmf.items())
        assert mean == pytest.approx(expected_alpha_fr(8, 2, 5))

    def test_support_within_bounds(self):
        for w in range(1, 9):
            pmf = alpha_distribution_fr(8, 2, w)
            for k in pmf:
                assert alpha_lower_bound(8, 2, w) <= k <= alpha_upper_bound(8, 2, w)


class TestAlphaDistributionExact:
    def test_cr_support_within_bounds(self):
        placement = CyclicRepetition(8, 3)
        for w in (2, 4, 6):
            pmf = alpha_distribution_exact(placement, w)
            for k in pmf:
                assert alpha_lower_bound(8, 3, w) <= k <= alpha_upper_bound(8, 3, w)

    def test_hr_distribution_sums_to_one(self):
        placement = HybridRepetition(8, 2, 2, 2)
        pmf = alpha_distribution_exact(placement, 3)
        assert sum(pmf.values()) == pytest.approx(1.0)

    def test_matches_monte_carlo_cr(self):
        placement = CyclicRepetition(6, 2)
        exact = expected_recovered_exact(placement, 3)
        stats = monte_carlo_recovery(placement, 3, trials=20_000, seed=1)
        assert stats.mean_recovered == pytest.approx(exact, rel=0.02)

    def test_too_large_rejected(self):
        placement = CyclicRepetition(40, 2)
        with pytest.raises(ConfigurationError, match="too many"):
            alpha_distribution_exact(placement, 20)

    def test_fr_beats_cr_in_expectation_everywhere(self):
        """Sec. V-C in exact form: E[α_FR] ≥ E[α_CR] for every w."""
        fr = FractionalRepetition(8, 2)
        cr = CyclicRepetition(8, 2)
        for w in range(1, 9):
            assert expected_alpha_exact(fr, w) >= expected_alpha_exact(cr, w) - 1e-12

    def test_hr_interpolates_between_cr_and_fr(self):
        """Fig. 13(a) in exact form: E[recovered] monotone in c1."""
        exact = [
            expected_recovered_exact(HybridRepetition(8, c1, 4 - c1, 2), 2)
            for c1 in (0, 1, 2, 3)
        ]
        assert exact == sorted(exact)
