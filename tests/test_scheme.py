"""Tests for :mod:`repro.core.scheme` — the unified placement layer.

Three layers of pinning:

* **Golden equivalence** — ``tests/golden/placement_schemes.json`` was
  recorded from the pre-registry direct constructors (see
  ``tests/golden/record_placement_goldens.py``); every family built by
  registry name must reproduce its fingerprints and per-seed decode
  selections bit for bit, proving the refactor is behaviour-neutral.
* **Protocol/registry unit tests** — lookup, aliases, did-you-mean
  errors, coercion, scheme recovery, per-family parameter validation,
  and spec-engine integration (every family constructible from an
  ``ExperimentSpec`` via the generic ``is-gc`` scheme).
* **Hypothesis properties** — each family's ``recovery_bounds(w)``
  brackets the exact-MIS recovered-partition count (Theorems 10/11),
  and CR's fast-path conflict graph equals the Theorem 1 circulant
  ``C_n^{1..c-1}`` across randomized ``(n, c)``.
"""

import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import conflict_graph
from repro.core.cyclic import CyclicRepetition
from repro.core.decoders import decoder_for
from repro.core.exact_decoder import ExactDecoder
from repro.core.fractional import FractionalRepetition
from repro.core.hybrid import HybridRepetition
from repro.core.migration import migration_plan
from repro.core.placement import Placement
from repro.core.scheme import (
    PLACEMENT_REGISTRY,
    CommEfficientScheme,
    CRScheme,
    FRScheme,
    HRScheme,
    PlacementScheme,
    as_placement,
    make_placement,
    placement_scheme,
    registered_placements,
    scheme_for,
)
from repro.engine.spec import make_strategy
from repro.exceptions import ConfigurationError, PlacementError
from repro.graphs.circulant import circulant_graph

GOLDEN_PATH = (
    pathlib.Path(__file__).parent / "golden" / "placement_schemes.json"
)
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def golden_id(case):
    return f"{case['family']}-{case['fingerprint'][:8]}"


# ----------------------------------------------------------------------
# Golden equivalence: registry construction == pre-port constructors.


@pytest.mark.parametrize("case", GOLDEN["cases"], ids=golden_id)
class TestGoldenEquivalence:
    def test_fingerprint_and_scheme_name_match(self, case):
        placement = make_placement(case["family"], **case["params"])
        assert placement.fingerprint == case["fingerprint"]
        assert placement.scheme == case["scheme"]

    def test_scheme_level_fingerprint_matches(self, case):
        scheme = placement_scheme(case["family"], **case["params"])
        assert scheme.fingerprint() == case["fingerprint"]

    def test_decode_selections_match(self, case):
        placement = make_placement(case["family"], **case["params"])
        for d in case["decodes"]:
            decoder = decoder_for(
                placement, rng=np.random.default_rng(d["seed"])
            )
            result = decoder.decode(d["available"])
            assert sorted(result.selected_workers) == d["selected"], (
                f"{case['family']} seed={d['seed']} "
                f"available={d['available']}"
            )

    def test_fast_path_conflict_graph_matches_ground_truth(self, case):
        scheme = placement_scheme(case["family"], **case["params"])
        assert scheme.conflict_graph() == conflict_graph(scheme.construct())


def test_golden_covers_every_registered_family():
    covered = {case["family"] for case in GOLDEN["cases"]}
    assert covered == set(registered_placements())


# ----------------------------------------------------------------------
# Registry mechanics.


class TestRegistry:
    def test_canonical_families(self):
        assert registered_placements() == [
            "comm-efficient", "cr", "explicit", "fr", "hetero", "hr",
            "multimessage",
        ]

    def test_aliases_resolve_to_same_class(self):
        from repro.core.scheme import resolve_placement

        for alias, canonical in (
            ("fractional", "fr"), ("cyclic", "cr"), ("hybrid", "hr"),
            ("table", "explicit"), ("heterogeneous", "hetero"),
            ("comm_efficient", "comm-efficient"),
            ("ye-abbe", "comm-efficient"),
            ("multi-message", "multimessage"),
        ):
            assert resolve_placement(alias) is PLACEMENT_REGISTRY[canonical]

    def test_alias_lookup_matches_canonical(self):
        via_alias = make_placement(
            "cyclic", num_workers=6, partitions_per_worker=2
        )
        via_name = make_placement(
            "cr", num_workers=6, partitions_per_worker=2
        )
        assert via_alias.fingerprint == via_name.fingerprint

    def test_unknown_family_did_you_mean(self):
        with pytest.raises(ConfigurationError) as err:
            make_placement("cyclc", num_workers=8)
        msg = str(err.value)
        assert "did you mean 'cyclic'" in msg
        assert "registered families" in msg

    def test_unknown_family_without_close_match(self):
        with pytest.raises(ConfigurationError) as err:
            make_placement("zzzzzz", num_workers=8)
        assert "registered families" in str(err.value)

    def test_non_string_family_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a string"):
            make_placement(42, num_workers=8)

    def test_bad_params_name_the_family_and_accepted(self):
        with pytest.raises(ConfigurationError) as err:
            placement_scheme("fr", num_workers=6, bogus=3)
        msg = str(err.value)
        assert "'fr'" in msg
        assert "accepted:" in msg
        assert "partitions_per_worker" in msg

    def test_constraint_violations_stay_placement_errors(self):
        # Same type and message as the direct constructor raised.
        with pytest.raises(PlacementError) as via_registry:
            make_placement("fr", num_workers=8, partitions_per_worker=3)
        with pytest.raises(PlacementError) as direct:
            FractionalRepetition(8, 3)
        assert str(via_registry.value) == str(direct.value)

    def test_duplicate_registration_rejected(self):
        from repro.core.scheme import register_placement

        with pytest.raises(ConfigurationError, match="already registered"):
            @register_placement("fr")
            class Dup(PlacementScheme):  # pragma: no cover - rejected
                def _construct(self):
                    raise AssertionError


# ----------------------------------------------------------------------
# Protocol behaviour.


class TestProtocol:
    def test_construct_is_cached(self):
        scheme = placement_scheme(
            "cr", num_workers=6, partitions_per_worker=2
        )
        assert scheme.construct() is scheme.construct()

    def test_as_placement_coerces_both_levels(self):
        scheme = placement_scheme(
            "cr", num_workers=6, partitions_per_worker=2
        )
        assert as_placement(scheme) is scheme.construct()
        placement = scheme.construct()
        assert as_placement(placement) is placement
        with pytest.raises(ConfigurationError, match="PlacementScheme"):
            as_placement("not a placement")

    def test_decoder_for_accepts_a_scheme(self):
        scheme = placement_scheme(
            "cr", num_workers=6, partitions_per_worker=2
        )
        direct = decoder_for(
            scheme.construct(), rng=np.random.default_rng(0)
        )
        via_scheme = decoder_for(scheme, rng=np.random.default_rng(0))
        assert (
            sorted(via_scheme.decode(range(6)).selected_workers)
            == sorted(direct.decode(range(6)).selected_workers)
        )

    def test_migration_plan_accepts_schemes(self):
        source = placement_scheme(
            "cr", num_workers=6, partitions_per_worker=2
        )
        target = placement_scheme(
            "fr", num_workers=6, partitions_per_worker=2
        )
        via_schemes = migration_plan(source, target)
        via_placements = migration_plan(
            source.construct(), target.construct()
        )
        assert via_schemes == via_placements

    def test_scheme_for_recovers_families(self):
        for placement, family in (
            (FractionalRepetition(6, 2), "fr"),
            (CyclicRepetition(6, 2), "cr"),
            (HybridRepetition(12, 2, 1, 3), "hr"),
        ):
            scheme = scheme_for(placement)
            assert scheme.family == family
            # The wrapper reuses the placement: cache keys unchanged.
            assert scheme.construct() is placement

    def test_scheme_for_unknown_type_falls_back_to_explicit(self):
        class OddPlacement(Placement):
            scheme = "odd"

            def __init__(self):
                super().__init__(2, 1)
                self._finalize({0: (0,), 1: (1,)})

        odd = OddPlacement()
        scheme = scheme_for(odd)
        assert scheme.family == "explicit"
        assert scheme.construct() is odd

    def test_describe_names_family_and_paper(self):
        text = placement_scheme(
            "cr", num_workers=6, partitions_per_worker=2
        ).describe()
        assert text.startswith("[cr]")
        assert "paper:" in text
        assert "CyclicRepetition(n=6, c=2)" in text

    def test_default_bounds_validate_w(self):
        scheme = placement_scheme(
            "explicit", rows=[[0, 1], [1, 2], [2, 0]]
        )
        assert scheme.recovery_bounds(0) == (0, 0)
        with pytest.raises(ValueError, match="0 <= w <= n"):
            scheme.recovery_bounds(4)

    def test_hr_partitions_per_worker_cross_check(self):
        # Agreement accepted, disagreement rejected.
        placement_scheme(
            "hr", num_workers=12, c1=2, c2=1, num_groups=3,
            partitions_per_worker=3,
        )
        with pytest.raises(ConfigurationError, match="make them agree"):
            placement_scheme(
                "hr", num_workers=12, c1=2, c2=1, num_groups=3,
                partitions_per_worker=2,
            )

    def test_explicit_needs_exactly_one_table_form(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            placement_scheme("explicit")
        with pytest.raises(ConfigurationError, match="exactly one"):
            placement_scheme(
                "explicit", rows=[[0]], assignments={0: (0,)}
            )
        with pytest.raises(ConfigurationError, match="make them agree"):
            placement_scheme(
                "explicit", rows=[[0], [1]], num_workers=3
            )

    def test_hetero_assignment_must_be_permutation(self):
        with pytest.raises(ConfigurationError, match="permutation"):
            placement_scheme(
                "hetero", num_workers=4, assignment=[0, 0, 1, 2],
                partitions_per_worker=2,
            )

    def test_hetero_conflict_graph_is_relabelled_base(self):
        scheme = placement_scheme(
            "hetero", num_workers=6, partitions_per_worker=2,
            base="cr", assignment=[1, 0, 3, 2, 5, 4],
        )
        assert scheme.conflict_graph() == conflict_graph(scheme.construct())

    def test_comm_efficient_coder(self):
        from repro.codes.comm_efficient import CommEfficientGC

        scheme = placement_scheme(
            "comm-efficient", num_workers=8, partitions_per_worker=4,
            blocks=2,
        )
        coder = scheme.coder()
        assert isinstance(coder, CommEfficientGC)
        assert coder.blocks == 2
        assert coder.placement.fingerprint == scheme.fingerprint()

    def test_comm_efficient_coder_accepts_scheme_directly(self):
        from repro.codes.comm_efficient import CommEfficientGC

        scheme = placement_scheme(
            "fr", num_workers=8, partitions_per_worker=4
        )
        coder = CommEfficientGC(scheme, 2)
        assert coder.placement is scheme.construct()

    def test_multimessage_round(self):
        from repro.partial.multimessage import MultiMessageRound

        scheme = placement_scheme(
            "multimessage", num_workers=8, partitions_per_worker=3,
            base="cr",
        )
        round_ = scheme.round(rng=np.random.default_rng(0))
        assert isinstance(round_, MultiMessageRound)
        assert round_.placement.fingerprint == scheme.fingerprint()

    def test_multimessage_round_accepts_scheme_directly(self):
        from repro.partial.multimessage import MultiMessageRound

        scheme = placement_scheme(
            "cr", num_workers=8, partitions_per_worker=3
        )
        round_ = MultiMessageRound(scheme, rng=np.random.default_rng(0))
        assert round_.placement is scheme.construct()


# ----------------------------------------------------------------------
# Spec-engine integration: every family by name from an ExperimentSpec.


class TestSpecIntegration:
    SPEC_CASES = [
        ("fr", {"num_workers": 6, "partitions_per_worker": 2}, {}),
        ("cr", {"num_workers": 6, "partitions_per_worker": 2}, {}),
        ("hr", {"num_workers": 12},
         {"c1": 2, "c2": 1, "num_groups": 3}),
        ("explicit", {"num_workers": 5},
         {"rows": [[0, 1], [1, 2], [2, 3], [3, 4], [4, 0]]}),
        ("hetero", {"num_workers": 6, "partitions_per_worker": 2},
         {"base": "cr", "assignment": [1, 0, 3, 2, 5, 4]}),
        ("comm-efficient",
         {"num_workers": 8, "partitions_per_worker": 4}, {"blocks": 2}),
        ("multimessage",
         {"num_workers": 8, "partitions_per_worker": 3}, {"base": "cr"}),
    ]

    @pytest.mark.parametrize(
        "family,base,extra", SPEC_CASES, ids=[c[0] for c in SPEC_CASES]
    )
    def test_generic_isgc_scheme_builds_every_family(
        self, family, base, extra
    ):
        strategy = make_strategy(
            "is-gc",
            wait_for=2,
            rng=np.random.default_rng(0),
            placement=family,
            **base,
            **extra,
        )
        from repro.core.scheme import spec_placement_scheme

        expected = spec_placement_scheme(family, **base, **extra)
        assert strategy.placement.fingerprint == expected.fingerprint()

    def test_generic_isgc_defaults_to_cr(self):
        strategy = make_strategy(
            "is-gc", num_workers=6, partitions_per_worker=2, wait_for=3,
            rng=np.random.default_rng(0),
        )
        assert strategy.placement.fingerprint == make_placement(
            "cr", num_workers=6, partitions_per_worker=2
        ).fingerprint

    def test_generic_isgc_matches_dedicated_schemes(self):
        for dedicated, family in (
            ("is-gc-cr", "cr"), ("is-gc-fr", "fr"),
        ):
            a = make_strategy(
                dedicated, num_workers=6, partitions_per_worker=2,
                wait_for=3, rng=np.random.default_rng(0),
            )
            b = make_strategy(
                "is-gc", num_workers=6, partitions_per_worker=2,
                wait_for=3, rng=np.random.default_rng(0),
                placement=family,
            )
            assert a.placement.fingerprint == b.placement.fingerprint

    def test_unknown_placement_family_via_spec(self):
        with pytest.raises(ConfigurationError) as err:
            make_strategy(
                "is-gc", num_workers=6, partitions_per_worker=2,
                wait_for=3, placement="cyclc",
            )
        assert "did you mean 'cyclic'" in str(err.value)

    def test_unknown_scheme_did_you_mean(self):
        with pytest.raises(ConfigurationError) as err:
            make_strategy("is-gc-cx", num_workers=6, wait_for=3)
        msg = str(err.value)
        assert "did you mean" in msg
        assert "registered schemes" in msg


# ----------------------------------------------------------------------
# Hypothesis properties.


def exact_recovered(scheme: PlacementScheme, available) -> int:
    """Recovered partitions of an exact-MIS decode on ``available``."""
    decoder = ExactDecoder(
        scheme.construct(), rng=np.random.default_rng(0), fair=False
    )
    return decoder.decode(sorted(available)).num_recovered


@st.composite
def cr_schemes(draw):
    n = draw(st.integers(min_value=2, max_value=12))
    c = draw(st.integers(min_value=1, max_value=n - 1))
    return placement_scheme(
        "cr", num_workers=n, partitions_per_worker=c
    )


@st.composite
def fr_schemes(draw):
    c = draw(st.integers(min_value=1, max_value=4))
    groups = draw(st.integers(min_value=1, max_value=4))
    return placement_scheme(
        "fr", num_workers=c * groups, partitions_per_worker=c
    )


_VALID_HR = [
    params
    for params in (
        {"num_workers": n, "c1": c1, "c2": c2, "num_groups": g}
        for n in (4, 6, 8, 12)
        for g in (1, 2, 3, 4)
        for c1 in (0, 1, 2)
        for c2 in (0, 1, 2)
    )
    if HRScheme.spec_problems(
        num_workers=params["num_workers"],
        params=params,
    ) == []
    and params["c1"] + params["c2"] >= 1
    and params["num_workers"] % params["num_groups"] == 0
]


@st.composite
def hr_schemes(draw):
    params = draw(st.sampled_from(_VALID_HR))
    try:
        scheme = placement_scheme("hr", **params)
        scheme.construct()
    except PlacementError:
        # The arithmetic pre-filter is necessary, not sufficient.
        from hypothesis import assume

        assume(False)
    return scheme


@st.composite
def family_schemes(draw):
    """A scheme from any registered family (delegating families
    wrap a base drawn from the concrete ones)."""
    kind = draw(st.sampled_from(
        ["fr", "cr", "hr", "explicit", "hetero", "comm-efficient",
         "multimessage"]
    ))
    if kind == "fr":
        return draw(fr_schemes())
    if kind == "cr":
        return draw(cr_schemes())
    if kind == "hr":
        return draw(hr_schemes())
    if kind == "explicit":
        base = draw(cr_schemes()).construct()
        return placement_scheme(
            "explicit", assignments=base.assignment_table()
        )
    if kind == "hetero":
        base = draw(cr_schemes())
        placement = base.construct()
        n = placement.num_workers
        perm = draw(st.permutations(list(range(n))))
        return placement_scheme(
            "hetero", num_workers=n,
            partitions_per_worker=placement.partitions_per_worker,
            base="cr", assignment=list(perm),
        )
    if kind == "comm-efficient":
        fr = draw(fr_schemes()).construct()
        c = fr.partitions_per_worker
        k = draw(st.integers(min_value=1, max_value=c))
        return placement_scheme(
            "comm-efficient", num_workers=fr.num_workers,
            partitions_per_worker=c, blocks=k,
        )
    base = draw(cr_schemes()).construct()
    return placement_scheme(
        "multimessage", num_workers=base.num_workers,
        partitions_per_worker=base.partitions_per_worker, base="cr",
    )


@settings(max_examples=60, deadline=None)
@given(scheme=family_schemes(), data=st.data())
def test_recovery_bounds_bracket_exact_mis(scheme, data):
    """Theorems 10/11 (and the generic bracket): for every family and
    every available-set size ``w``, the exact-MIS recovered-partition
    count lies in ``recovery_bounds(w)``."""
    n = scheme.construct().num_workers
    w = data.draw(st.integers(min_value=1, max_value=n), label="w")
    available = data.draw(
        st.permutations(list(range(n))).map(lambda p: sorted(p[:w])),
        label="available",
    )
    lo, hi = scheme.recovery_bounds(w)
    recovered = exact_recovered(scheme, available)
    assert lo <= recovered <= hi, (
        f"{scheme.family}: |I|={recovered} outside [{lo}, {hi}] "
        f"at w={w}, available={available}"
    )


@settings(max_examples=60, deadline=None)
@given(scheme=cr_schemes())
def test_cr_conflict_graph_is_theorem1_circulant(scheme):
    """Theorem 1: CR's conflict graph is the circulant C_n^{1..c-1}."""
    placement = scheme.construct()
    n = placement.num_workers
    c = placement.partitions_per_worker
    assert scheme.conflict_graph() == circulant_graph(n, range(1, c))
    # And the fast path agrees with the partition-intersection ground
    # truth (the protocol's verification contract).
    assert scheme.conflict_graph() == conflict_graph(placement)


@settings(max_examples=40, deadline=None)
@given(scheme=family_schemes())
def test_fast_conflict_paths_match_ground_truth(scheme):
    """Every family's conflict_graph() override is verified against the
    partition-intersection ground truth."""
    assert scheme.conflict_graph() == conflict_graph(scheme.construct())


@settings(max_examples=40, deadline=None)
@given(scheme=family_schemes())
def test_fingerprint_matches_constructed_placement(scheme):
    assert scheme.fingerprint() == scheme.construct().fingerprint
