"""Tests for greedy and exact maximum-independent-set solvers."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graphs import (
    Graph,
    all_maximum_independent_sets,
    greedy_independent_set,
    independence_number,
    maximum_independent_set,
)


def random_graph(n: int, p: float, seed: int) -> Graph:
    rng = np.random.default_rng(seed)
    g = Graph(vertices=range(n))
    for a in range(n):
        for b in range(a + 1, n):
            if rng.random() < p:
                g.add_edge(a, b)
    return g


class TestGreedy:
    def test_empty_graph_returns_all(self):
        g = Graph(vertices=range(5))
        assert greedy_independent_set(g) == frozenset(range(5))

    def test_complete_graph_returns_one(self):
        g = Graph(vertices=range(4))
        for a in range(4):
            for b in range(a + 1, 4):
                g.add_edge(a, b)
        assert len(greedy_independent_set(g)) == 1

    def test_result_is_independent(self):
        g = random_graph(12, 0.4, seed=1)
        result = greedy_independent_set(g)
        assert g.is_independent_set(result)

    def test_result_is_maximal(self):
        g = random_graph(12, 0.3, seed=2)
        chosen = greedy_independent_set(g)
        for v in g.vertices - chosen:
            assert not g.is_independent_set(chosen | {v}), (
                f"greedy set extendable by {v}"
            )

    def test_custom_order_respected(self):
        g = Graph(edges=[(0, 1)])
        assert 0 in greedy_independent_set(g, order=[0, 1])
        assert 1 in greedy_independent_set(g, order=[1, 0])


class TestExact:
    def test_empty(self):
        assert maximum_independent_set(Graph()) == frozenset()

    def test_single_vertex(self):
        assert maximum_independent_set(Graph(vertices=[0])) == frozenset({0})

    def test_path_graph(self):
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 4)])
        assert maximum_independent_set(g) == frozenset({0, 2, 4})

    def test_cycle_graph_alpha(self):
        for n in range(3, 12):
            g = Graph(edges=[(i, (i + 1) % n) for i in range(n)])
            assert independence_number(g) == n // 2

    def test_star_graph(self):
        g = Graph(edges=[(0, i) for i in range(1, 6)])
        assert maximum_independent_set(g) == frozenset(range(1, 6))

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_networkx_complement_clique(self, seed):
        """α(G) equals the max clique of the complement — cross-check."""
        g = random_graph(11, 0.45, seed=seed)
        nxg = nx.Graph()
        nxg.add_nodes_from(g.vertices)
        nxg.add_edges_from(tuple(e) for e in g.edges)
        expected = max(
            (len(c) for c in nx.find_cliques(nx.complement(nxg))), default=0
        )
        assert independence_number(g) == expected

    def test_result_is_independent(self):
        g = random_graph(14, 0.35, seed=3)
        assert g.is_independent_set(maximum_independent_set(g))

    @given(st.integers(min_value=0, max_value=1_000_000))
    @settings(max_examples=40, deadline=None)
    def test_exact_at_least_greedy(self, seed):
        g = random_graph(10, 0.4, seed=seed)
        assert len(maximum_independent_set(g)) >= len(greedy_independent_set(g))


class TestEnumeration:
    def test_all_optima_on_square(self):
        # 4-cycle has exactly two maximum independent sets.
        g = Graph(edges=[(0, 1), (1, 2), (2, 3), (3, 0)])
        optima = set(all_maximum_independent_sets(g))
        assert optima == {frozenset({0, 2}), frozenset({1, 3})}

    def test_all_optima_sizes_match_alpha(self):
        g = random_graph(10, 0.4, seed=7)
        alpha = independence_number(g)
        optima = all_maximum_independent_sets(g)
        assert optima
        assert all(len(s) == alpha for s in optima)
        assert all(g.is_independent_set(s) for s in optima)

    def test_all_optima_distinct(self):
        g = random_graph(9, 0.3, seed=8)
        optima = all_maximum_independent_sets(g)
        assert len(optima) == len(set(optima))

    def test_edgeless_graph_single_optimum(self):
        g = Graph(vertices=range(4))
        assert all_maximum_independent_sets(g) == [frozenset(range(4))]
