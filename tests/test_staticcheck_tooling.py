"""Tests for the production tooling around the rule engine.

Covers the hardened markdown extractor, noqa edge cases (and their
interplay with baselines), the SARIF emitter + its structural
validator, baseline freezing, autofix idempotency, and incremental
cache correctness (warm runs bit-identical, edits invalidated
transitively through the import graph, ruleset changes clearing).
"""

import json
import pathlib

import pytest

from repro.cli import main
from repro.staticcheck import (
    AnalysisCache,
    iter_markdown_blocks,
    noqa_map,
    run_check,
)
from repro.staticcheck.autofix import apply_fixes
from repro.staticcheck.baseline import (
    BASELINE_SCHEMA_VERSION,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.findings import Finding, Severity
from repro.staticcheck.sarif import (
    SARIF_VERSION,
    render_sarif,
    to_sarif_dict,
    validate_sarif,
)

REPO = pathlib.Path(__file__).resolve().parent.parent

DIRTY = (
    "import numpy as np\n"
    "x = np.random.randn(3)\n"
)

CLEAN = (
    "import numpy as np\n"
    "rng = np.random.default_rng(0)\n"
    "x = rng.standard_normal(3)\n"
)


def write(tmp_path, name, text):
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return str(path)


def finding(path="a.py", line=1, rule="DET001", message="m", col=1):
    return Finding(
        path=path, line=line, col=col, rule=rule,
        severity=Severity.ERROR, message=message,
    )


# ----------------------------------------------------------------------
# Markdown extraction


class TestMarkdownBlocks:
    def test_plain_block_at_true_offset(self):
        text = "# Title\n\n```python\nx = 1\n```\n"
        assert iter_markdown_blocks(text) == [(3, "x = 1")]

    def test_crlf_endings(self):
        text = "# T\r\n```python\r\nx = 1\r\n```\r\n"
        assert iter_markdown_blocks(text) == [(2, "x = 1")]

    def test_info_string_attributes(self):
        text = '```python title="demo" linenums\nx = 1\n```\n'
        assert iter_markdown_blocks(text) == [(1, "x = 1")]

    def test_pandoc_brace_language(self):
        text = "```{.python}\nx = 1\n```\n"
        assert iter_markdown_blocks(text) == [(1, "x = 1")]

    def test_python3_language_tag(self):
        text = "```python3\nx = 1\n```\n"
        assert iter_markdown_blocks(text) == [(1, "x = 1")]

    def test_unterminated_fence_runs_to_eof(self):
        text = "```python\nx = 1\ny = 2\n"
        assert iter_markdown_blocks(text) == [(1, "x = 1\ny = 2\n")]

    def test_tilde_fence(self):
        text = "~~~python\nx = 1\n~~~\n"
        assert iter_markdown_blocks(text) == [(1, "x = 1")]

    def test_longer_fence_not_closed_by_shorter(self):
        text = "````python\nx = 1\n```\ny = 2\n````\n"
        assert iter_markdown_blocks(text) == [(1, "x = 1\n```\ny = 2")]

    def test_indented_fence_body_dedented(self):
        text = "- item\n\n  ```python\n  x = 1\n  ```\n"
        # fences indented ≤3 spaces open blocks; indent is stripped.
        assert iter_markdown_blocks(text) == [(3, "x = 1")]

    def test_non_python_blocks_skipped(self):
        text = "```bash\nls\n```\n\n```json\n{}\n```\n"
        assert iter_markdown_blocks(text) == []

    def test_findings_carry_true_line_numbers(self, tmp_path):
        md = write(
            tmp_path, "doc.md",
            "# Doc\n\nProse.\n\n```python\n" + DIRTY + "```\n",
        )
        result = run_check([md], project=False)
        assert result.findings
        # DIRTY's offending line is its second line: 5 fence lines + 2.
        assert {f.line for f in result.findings} == {7}


# ----------------------------------------------------------------------
# noqa edge cases


class TestNoqaEdgeCases:
    def test_bare_noqa_maps_to_none(self):
        assert noqa_map("x = 1  # repro: noqa\n") == {1: None}

    def test_multi_rule_list_with_whitespace(self):
        suppressions = noqa_map(
            "x = 1  # repro: noqa[ DET001 , det002 ,PAR001]\n"
        )
        assert suppressions == {1: {"DET001", "DET002", "PAR001"}}

    def test_empty_items_dropped(self):
        assert noqa_map("x = 1  # repro: noqa[DET001,,]\n") == {
            1: {"DET001"}
        }

    def test_noqa_in_markdown_at_true_line(self, tmp_path):
        dirty = DIRTY.replace(
            "np.random.randn(3)",
            "np.random.randn(3)  # repro: noqa[DET001]",
        )
        md = write(
            tmp_path, "doc.md", "# Doc\n\n```python\n" + dirty + "```\n"
        )
        assert run_check([md], project=False).findings == []

    def test_wrong_line_markdown_noqa_does_not_suppress(self, tmp_path):
        md = write(
            tmp_path, "doc.md",
            "# repro: noqa[DET001]\n\n```python\n" + DIRTY + "```\n",
        )
        assert run_check([md], project=False).findings


# ----------------------------------------------------------------------
# Baseline


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline(path, [finding(), finding(rule="DET004")])
        frozen = load_baseline(path)
        assert ("a.py", "DET001", "m") in frozen
        assert ("a.py", "DET004", "m") in frozen

    def test_line_insensitive_match(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline(path, [finding(line=3)])
        split = apply_baseline([finding(line=99)], load_baseline(path))
        assert split.new == [] and len(split.suppressed) == 1

    def test_multiplicity_second_occurrence_is_new(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline(path, [finding()])
        split = apply_baseline(
            [finding(line=1), finding(line=2)], load_baseline(path)
        )
        assert len(split.new) == 1 and len(split.suppressed) == 1

    def test_stale_entries_reported(self, tmp_path):
        path = tmp_path / "base.json"
        write_baseline(path, [finding(rule="GONE1")])
        split = apply_baseline([], load_baseline(path))
        assert split.stale == [("a.py", "GONE1", "m")]

    def test_missing_and_bad_files_are_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.json") == []
        bad = tmp_path / "bad.json"
        bad.write_text("not json{")
        assert load_baseline(bad) == []

    def test_version_mismatch_ignored(self, tmp_path):
        path = tmp_path / "base.json"
        path.write_text(json.dumps({
            "version": BASELINE_SCHEMA_VERSION + 1,
            "findings": [{"path": "a.py", "rule": "X", "message": "m"}],
        }))
        assert load_baseline(path) == []

    def test_cli_write_then_gate(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        dirty = write(tmp_path, "mod.py", DIRTY)
        base = str(tmp_path / "base.json")
        assert main(["check", dirty, "--write-baseline", base]) == 0
        capsys.readouterr()
        # frozen findings no longer fail the gate…
        assert main(["check", dirty, "--baseline", base]) == 0
        out = capsys.readouterr().out
        assert "baseline:" in out and "frozen" in out
        # …but a new violation still does.
        dirtier = write(
            tmp_path, "mod.py", DIRTY + "y = np.random.rand(2)\n"
        )
        assert main(["check", dirtier, "--baseline", base]) == 1

    def test_noqa_beats_baseline_and_goes_stale(self, tmp_path, capsys):
        # a finding first frozen, then noqa'd: the suppression wins at
        # check time and its baseline entry is reported stale.
        dirty = write(tmp_path, "mod.py", DIRTY)
        base = str(tmp_path / "base.json")
        assert main(["check", dirty, "--write-baseline", base]) == 0
        capsys.readouterr()
        write(
            tmp_path, "mod.py",
            DIRTY.replace(
                "np.random.randn(3)",
                "np.random.randn(3)  # repro: noqa[DET001]",
            ),
        )
        assert main(["check", dirty, "--baseline", base]) == 0
        assert "stale" in capsys.readouterr().out


# ----------------------------------------------------------------------
# SARIF


class TestSarif:
    def test_real_output_validates(self, tmp_path):
        write(tmp_path, "mod.py", DIRTY)
        write(tmp_path, "doc.md", "```python\n" + DIRTY + "```\n")
        result = run_check([str(tmp_path)], project=False)
        doc = to_sarif_dict(result)
        assert validate_sarif(doc) == []
        assert doc["version"] == SARIF_VERSION

    def test_result_shape(self, tmp_path):
        mod = write(tmp_path, "mod.py", DIRTY)
        doc = to_sarif_dict(run_check([mod], project=False))
        run = doc["runs"][0]
        rules = run["tool"]["driver"]["rules"]
        declared = [r["id"] for r in rules]
        assert declared == sorted(declared)
        for res in run["results"]:
            assert res["ruleId"] == rules[res["ruleIndex"]]["id"]
            location = res["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uriBaseId"] == "%SRCROOT%"
            assert location["region"]["startLine"] >= 1

    def test_render_is_json(self, tmp_path):
        mod = write(tmp_path, "mod.py", CLEAN)
        doc = json.loads(render_sarif(run_check([mod], project=False)))
        assert doc["runs"][0]["results"] == []

    def test_validator_rejects_malformed(self):
        assert validate_sarif([]) != []
        assert validate_sarif({"version": "2.1.0", "runs": []}) != []
        bad_result = {
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {"name": "x", "rules": []}},
                "results": [{
                    "ruleId": "NOPE", "ruleIndex": 0,
                    "level": "bogus", "message": {},
                }],
            }],
        }
        errors = validate_sarif(bad_result)
        assert any("level" in e for e in errors)
        assert any("message.text" in e for e in errors)

    def test_cli_sarif_format(self, tmp_path, capsys):
        mod = write(tmp_path, "mod.py", DIRTY)
        assert main(["check", mod, "--format", "sarif"]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"]


# ----------------------------------------------------------------------
# Autofix


class TestAutofix:
    def test_det003_fixed_in_docs_only(self):
        sources = {
            "docs/demo.md": "rng = np.random.default_rng()\n",
            "src/repro/core/mod.py": "rng = np.random.default_rng()\n",
        }
        findings = [
            finding(path="docs/demo.md", rule="DET003"),
            finding(path="src/repro/core/mod.py", rule="DET003"),
        ]
        result = apply_fixes(findings, sources)
        assert sources["docs/demo.md"] == "rng = np.random.default_rng(0)\n"
        assert "default_rng()" in sources["src/repro/core/mod.py"]
        assert result.fixed["DET003"] == 1
        assert len(result.remaining) == 1

    def test_det004_sorted_rewrite(self):
        sources = {"a.py": "out = list(set(xs))\n"}
        apply_fixes([finding(rule="DET004", col=7)], sources)
        assert sources["a.py"] == "out = sorted(set(xs))\n"

    def test_reg005_requires_factory_in_scope(self):
        body = "from repro.env import make_delay_model\nd = NoDelay()\n"
        sources = {"a.py": body}
        apply_fixes([finding(rule="REG005", line=2)], sources)
        assert 'make_delay_model("none")' in sources["a.py"]
        # without the factory import, the rewrite is refused.
        sources = {"a.py": "d = NoDelay()\n"}
        result = apply_fixes([finding(rule="REG005")], sources)
        assert sources["a.py"] == "d = NoDelay()\n"
        assert result.remaining

    def test_suppress_inserts_and_merges_noqa(self):
        sources = {"a.py": "x = 1\ny = 2  # repro: noqa[DET004]\n"}
        apply_fixes(
            [
                finding(rule="PAR001", line=1),
                finding(rule="PAR001", line=2),
            ],
            sources, suppress={"PAR001"},
        )
        lines = sources["a.py"].splitlines()
        assert "# repro: noqa[PAR001]" in lines[0]
        assert "TODO" in lines[0]
        assert "# repro: noqa[DET004,PAR001]" in lines[1]

    def test_fix_is_idempotent(self, tmp_path, capsys):
        path = write(
            tmp_path, "docs/demo.py",
            "import numpy as np\nrng = np.random.default_rng()\n",
        )
        assert main(["check", path, "--fix"]) == 0
        fixed_once = pathlib.Path(path).read_text()
        assert "default_rng(0)" in fixed_once
        capsys.readouterr()
        assert main(["check", path, "--fix"]) == 0
        assert pathlib.Path(path).read_text() == fixed_once
        # second run fixed nothing (stderr carries the fix report).
        assert "fixed" not in capsys.readouterr().err


# ----------------------------------------------------------------------
# Incremental cache


class TestCache:
    def test_warm_run_bit_identical(self, tmp_path):
        write(tmp_path, "repro/mod.py", DIRTY)
        write(tmp_path, "repro/other.py", CLEAN)
        # the default dotfile name is skipped by discovery even though
        # it lives inside the checked tree.
        cache_path = tmp_path / ".repro-check-cache.json"
        cache = AnalysisCache(cache_path)
        cold = run_check([str(tmp_path)], cache=cache)
        cache.save()
        warm = run_check(
            [str(tmp_path)], cache=AnalysisCache(cache_path)
        )
        assert [f.to_dict() for f in sorted(warm.findings)] == [
            f.to_dict() for f in sorted(cold.findings)
        ]
        assert warm.cache_misses == 0
        assert warm.cache_hits > 0

    def test_edit_invalidates_only_changed_file(self, tmp_path):
        a = write(tmp_path, "repro/a.py", CLEAN)
        write(tmp_path, "repro/b.py", CLEAN)
        cache_path = tmp_path / "cache.json"
        cache = AnalysisCache(cache_path)
        run_check([str(tmp_path)], cache=cache)
        cache.save()
        pathlib.Path(a).write_text(DIRTY)
        warm = run_check(
            [str(tmp_path)], cache=AnalysisCache(cache_path)
        )
        assert any(f.rule == "DET001" for f in warm.findings)
        assert warm.cache_misses >= 1
        assert warm.cache_hits >= 1

    def test_edit_invalidates_importers_transitively(self, tmp_path):
        # dep draws from its rng param; user passes a Generator in a
        # set-loop, but only after dep is *edited* to consume it.
        write(tmp_path, "repro/__init__.py", "")
        write(
            tmp_path, "repro/dep.py",
            "def delay_for(w, rng):\n    return 1.0\n",
        )
        write(
            tmp_path, "repro/user.py",
            "import numpy as np\n"
            "from repro.dep import delay_for\n"
            "def jitter(ws):\n"
            "    rng = np.random.default_rng(0)\n"
            "    return {w: delay_for(w, rng) for w in set(ws)}\n",
        )
        cache_path = tmp_path / "cache.json"
        cache = AnalysisCache(cache_path)
        cold = run_check([str(tmp_path)], cache=cache)
        assert not any(f.rule == "FLOW003" for f in cold.findings)
        cache.save()
        write(
            tmp_path, "repro/dep.py",
            "def delay_for(w, rng):\n    return rng.exponential()\n",
        )
        warm = run_check(
            [str(tmp_path)], cache=AnalysisCache(cache_path)
        )
        flagged = [f for f in warm.findings if f.rule == "FLOW003"]
        # user.py itself is unchanged: only the closure digest pulled
        # the new dep summary through the import graph.
        assert len(flagged) == 1
        assert flagged[0].path.endswith("user.py")

    def test_ruleset_change_clears_cache(self, tmp_path):
        write(tmp_path, "repro/mod.py", CLEAN)
        cache_path = tmp_path / "cache.json"
        cache = AnalysisCache(cache_path)
        run_check([str(tmp_path)], cache=cache)
        cache.save()
        narrowed = AnalysisCache(cache_path)
        narrow = run_check(
            [str(tmp_path)], select=["DET"], cache=narrowed
        )
        assert narrow.cache_hits == 0

    def test_json_report_carries_timing_and_cache(self, tmp_path, capsys):
        mod = write(tmp_path, "mod.py", CLEAN)
        cache_path = str(tmp_path / "cc.json")
        main([
            "check", mod, "--format", "json",
            "--cache", "--cache-path", cache_path,
        ])
        data = json.loads(capsys.readouterr().out)
        assert "timing" in data and "files" in data["timing"]
        assert data["timing"]["total_seconds"] >= 0
        assert data["cache"]["misses"] >= 1
        capsys.readouterr()
        main([
            "check", mod, "--format", "json",
            "--cache", "--cache-path", cache_path,
        ])
        data = json.loads(capsys.readouterr().out)
        assert data["cache"]["misses"] == 0
        assert data["cache"]["hits"] >= 1

    def test_stats_flag_prints_to_stderr(self, tmp_path, capsys):
        mod = write(tmp_path, "mod.py", CLEAN)
        main(["check", mod, "--stats"])
        err = capsys.readouterr().err
        assert "slowest" in err.lower()


# ----------------------------------------------------------------------
# Discovery skips


class TestDiscoverySkips:
    @pytest.mark.parametrize("where", [
        ".venv/lib/mod.py",
        "__pycache__/mod.py",
        "benchmarks/results/mod.py",
        ".hypothesis/mod.py",
    ])
    def test_vendored_and_derived_trees_skipped(self, tmp_path, where):
        write(tmp_path, where, DIRTY)
        assert run_check([str(tmp_path)], project=False).num_files == 0

    def test_benchmarks_sources_still_checked(self, tmp_path):
        write(tmp_path, "benchmarks/bench_mod.py", CLEAN)
        assert run_check([str(tmp_path)], project=False).num_files == 1
