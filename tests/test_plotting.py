"""Tests for ASCII plotting utilities."""

import pytest

from repro.analysis import Series, ascii_plot, downsample, loss_curve_panel, sparkline
from repro.exceptions import ConfigurationError


class TestSparkline:
    def test_length_preserved(self):
        assert len(sparkline([1.0, 2.0, 3.0])) == 3

    def test_min_max_levels(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[1] == "█"

    def test_constant_series(self):
        assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"

    def test_monotone_series_monotone_glyphs(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert list(line) == sorted(line, key="▁▂▃▄▅▆▇█".index)

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            sparkline([])


class TestDownsample:
    def test_no_op_when_small(self):
        assert downsample([1.0, 2.0], 10) == [1.0, 2.0]

    def test_target_width(self):
        out = downsample(list(range(100)), 10)
        assert len(out) == 10

    def test_averages_chunks(self):
        out = downsample([0.0, 2.0, 4.0, 6.0], 2)
        assert out == [1.0, 5.0]

    def test_preserves_mean_approximately(self):
        vals = [float(i) for i in range(97)]
        out = downsample(vals, 10)
        assert sum(out) / len(out) == pytest.approx(sum(vals) / len(vals), rel=0.05)

    def test_invalid_width(self):
        with pytest.raises(ConfigurationError):
            downsample([1.0], 0)


class TestAsciiPlot:
    def test_contains_markers_and_legend(self):
        s1 = Series("loss-a", list(range(20)), [float(i) for i in range(20)])
        s2 = Series("loss-b", list(range(20)), [float(20 - i) for i in range(20)])
        art = ascii_plot([s1, s2], width=30, height=8)
        assert "*" in art and "o" in art
        assert "loss-a" in art and "loss-b" in art

    def test_dimensions(self):
        s = Series("x", [0, 1, 2], [1.0, 2.0, 3.0])
        art = ascii_plot([s], width=20, height=6)
        # height rows + axis + legend
        assert len(art.splitlines()) == 8

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ascii_plot([], width=10, height=5)
        s = Series("x", [0], [1.0])
        with pytest.raises(ConfigurationError):
            ascii_plot([s], width=0, height=5)


class TestLossCurvePanel:
    def test_one_row_per_curve(self):
        panel = loss_curve_panel({
            "sync": [3.0, 2.0, 1.0],
            "is-gc": [3.0, 1.5, 0.7],
        })
        lines = panel.splitlines()
        assert len(lines) == 2
        assert "sync" in lines[0] and "final 1" in lines[0]

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            loss_curve_panel({})
