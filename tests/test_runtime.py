"""Tests for the actor runtime — including trajectory equivalence with
the flat trainer, the property that makes the runtime trustworthy."""

import numpy as np
import pytest

from repro.core import CyclicRepetition, FractionalRepetition
from repro.exceptions import SimulationError, TrainingError
from repro.runtime import (
    GradientUpload,
    MasterActor,
    ParameterBroadcast,
    SimulatedRuntime,
    WorkerActor,
)
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
from repro.straggler import DelayTrace, ExponentialDelay, TraceReplayModel
from repro.training import (
    DistributedTrainer,
    ISGCStrategy,
    ISSGDStrategy,
    LogisticRegressionModel,
    SGD,
    SyncSGDStrategy,
    build_batch_streams,
    make_classification,
    partition_dataset,
)


N = 4


@pytest.fixture
def workload():
    ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
    parts = partition_dataset(ds, N, seed=2)
    streams = build_batch_streams(parts, batch_size=32, seed=3)
    return ds, streams


def _strategy(kind, seed=0):
    if kind == "sync":
        return SyncSGDStrategy(N)
    if kind == "issgd":
        return ISSGDStrategy(N, 2)
    if kind == "isgc-fr":
        return ISGCStrategy(
            FractionalRepetition(N, 2), wait_for=2,
            rng=np.random.default_rng(seed),
        )
    if kind == "isgc-cr":
        return ISGCStrategy(
            CyclicRepetition(N, 2), wait_for=2,
            rng=np.random.default_rng(seed),
        )
    raise ValueError(kind)


def _runtime(strategy, streams, ds, trace):
    return SimulatedRuntime(
        strategy=strategy,
        model=LogisticRegressionModel(8, seed=0),
        streams=streams,
        optimizer=SGD(0.3),
        compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=TraceReplayModel(trace),
        eval_data=ds,
        rng=np.random.default_rng(0),
    )


@pytest.fixture
def trace():
    return DelayTrace.record(
        ExponentialDelay(0.5), N, 100, np.random.default_rng(4)
    )


class TestActors:
    def test_worker_partitions_match_placement(self, workload):
        ds, streams = workload
        strategy = _strategy("isgc-cr")
        worker = WorkerActor(1, strategy, LogisticRegressionModel(8), streams)
        assert worker.partitions == strategy.placement.partitions_of(1)

    def test_worker_payload_is_strategy_encoding(self, workload):
        ds, streams = workload
        strategy = _strategy("isgc-cr")
        model = LogisticRegressionModel(8, seed=0)
        worker = WorkerActor(0, strategy, model, streams)
        broadcast = ParameterBroadcast(
            sender="master", send_time=0.0, step=0,
            parameters=model.get_parameters(),
        )
        upload = worker.handle_broadcast(broadcast, 0.0)
        assert upload.worker == 0
        assert upload.payload.shape == (model.num_parameters,)

    def test_worker_rejects_empty_broadcast(self, workload):
        _, streams = workload
        strategy = _strategy("isgc-cr")
        worker = WorkerActor(0, strategy, LogisticRegressionModel(8), streams)
        msg = ParameterBroadcast(sender="master", send_time=0.0, step=0)
        with pytest.raises(TrainingError):
            worker.handle_broadcast(msg, 0.0)

    def test_master_rejects_stale_upload(self, workload):
        ds, _ = workload
        strategy = _strategy("issgd")
        master = MasterActor(
            strategy, LogisticRegressionModel(8), SGD(0.1),
            eval_features=ds.features, eval_labels=ds.labels,
        )
        master.broadcast(0.0)
        stale = GradientUpload(
            sender="worker-0", send_time=0.0, step=7, worker=0,
            payload=np.zeros(9),
        )
        with pytest.raises(TrainingError, match="step"):
            master.receive(stale)

    def test_master_records_steps(self, workload, trace):
        ds, streams = workload
        runtime = _runtime(_strategy("issgd"), streams, ds, trace)
        runtime.run(max_steps=5)
        assert len(runtime.master.records) == 5
        assert runtime.master.step == 5


class TestRuntimeRuns:
    @pytest.mark.parametrize("kind", ["sync", "issgd", "isgc-fr", "isgc-cr"])
    def test_loss_decreases(self, workload, trace, kind):
        ds, streams = workload
        runtime = _runtime(_strategy(kind), streams, ds, trace)
        summary = runtime.run(max_steps=40)
        assert summary.loss_curve[-1] < summary.loss_curve[0]

    def test_clock_advances_monotonically(self, workload, trace):
        ds, streams = workload
        runtime = _runtime(_strategy("issgd"), streams, ds, trace)
        times = []
        for _ in range(5):
            runtime.run_step(runtime._strategy.policy)
            times.append(runtime.clock)
        assert times == sorted(times)
        assert times[0] > 0

    def test_message_log(self, workload, trace):
        ds, streams = workload
        runtime = SimulatedRuntime(
            strategy=_strategy("issgd"),
            model=LogisticRegressionModel(8, seed=0),
            streams=streams,
            optimizer=SGD(0.3),
            delay_model=TraceReplayModel(trace),
            eval_data=ds,
            rng=np.random.default_rng(0),
            keep_message_log=True,
        )
        runtime.run(max_steps=3)
        broadcasts = [
            m for m in runtime.message_log if isinstance(m, ParameterBroadcast)
        ]
        uploads = [
            m for m in runtime.message_log if isinstance(m, GradientUpload)
        ]
        assert len(broadcasts) == 3
        assert len(uploads) == 3 * 2  # w = 2 accepted per step

    def test_stream_count_mismatch(self, workload, trace):
        ds, streams = workload
        with pytest.raises(SimulationError):
            SimulatedRuntime(
                strategy=SyncSGDStrategy(N + 1),
                model=LogisticRegressionModel(8),
                streams=streams,
                optimizer=SGD(0.1),
            )

    def test_invalid_max_steps(self, workload, trace):
        ds, streams = workload
        runtime = _runtime(_strategy("issgd"), streams, ds, trace)
        with pytest.raises(SimulationError):
            runtime.run(max_steps=0)


class TestEquivalenceWithFlatTrainer:
    """The actor path and the flat trainer must produce identical
    trajectories on the same trace — the runtime's core guarantee."""

    @pytest.mark.parametrize("kind", ["sync", "issgd", "isgc-fr", "isgc-cr"])
    def test_loss_curves_match(self, workload, trace, kind):
        ds, streams = workload

        runtime = _runtime(_strategy(kind, seed=7), streams, ds, trace)
        runtime_summary = runtime.run(max_steps=25)

        strategy = _strategy(kind, seed=7)
        cluster = ClusterSimulator(
            num_workers=N,
            partitions_per_worker=strategy.placement.partitions_per_worker,
            compute=ComputeModel(0.02, 0.02),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=TraceReplayModel(trace),
            rng=np.random.default_rng(0),
        )
        flat = DistributedTrainer(
            LogisticRegressionModel(8, seed=0), streams, strategy,
            cluster, SGD(0.3), eval_data=ds,
        )
        flat_summary = flat.run(max_steps=25)

        np.testing.assert_allclose(
            np.array(runtime_summary.loss_curve),
            np.array(flat_summary.loss_curve),
            atol=1e-10,
        )

    def test_recovery_fractions_match(self, workload, trace):
        ds, streams = workload
        runtime = _runtime(_strategy("isgc-cr", seed=3), streams, ds, trace)
        runtime.run(max_steps=20)

        strategy = _strategy("isgc-cr", seed=3)
        cluster = ClusterSimulator(
            num_workers=N, partitions_per_worker=2,
            compute=ComputeModel(0.02, 0.02),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=TraceReplayModel(trace),
            rng=np.random.default_rng(0),
        )
        flat = DistributedTrainer(
            LogisticRegressionModel(8, seed=0), streams, strategy,
            cluster, SGD(0.3), eval_data=ds,
        )
        flat.run(max_steps=20)
        for a, b in zip(runtime.master.records, flat.records):
            assert a.num_recovered == b.num_recovered
            assert a.num_available == b.num_available
