"""Tests for multi-message partial-gradient uploads."""

import numpy as np
import pytest

from repro.core import CyclicRepetition, FractionalRepetition
from repro.exceptions import ConfigurationError, SimulationError
from repro.partial import (
    MessageArrival,
    MultiMessageRound,
    collect_by_deadline,
    collect_first_k_messages,
    recovery_vs_deadline,
)
from repro.simulation import ComputeModel, NetworkModel
from repro.straggler import NoDelay, PersistentStragglers, ShiftedExponentialDelay

IDEAL = NetworkModel(latency=0.0, bandwidth=float("inf"))


def _round(placement, delay=None):
    return MultiMessageRound(
        placement,
        compute=ComputeModel(base=0.1, per_partition=0.2),
        network=IDEAL,
        delay_model=delay or NoDelay(),
        rng=np.random.default_rng(0),
    )


class TestSimulation:
    def test_message_count(self):
        r = _round(CyclicRepetition(4, 2))
        arrivals = r.simulate(0)
        assert len(arrivals) == 8
        assert r.messages_per_round() == 8
        assert r.bytes_multiplier() == 2

    def test_arrivals_sorted(self):
        r = _round(CyclicRepetition(6, 3))
        times = [m.time for m in r.simulate(0)]
        assert times == sorted(times)

    def test_later_partitions_arrive_later_per_worker(self):
        r = _round(CyclicRepetition(4, 3))
        arrivals = r.simulate(0)
        for worker in range(4):
            mine = [m for m in arrivals if m.worker == worker]
            assert [m.time for m in mine] == sorted(m.time for m in mine)
            # Partitions appear in the placement's stored order.
            placement_order = list(CyclicRepetition(4, 3).partitions_of(worker))
            assert [m.partition for m in mine] == placement_order

    def test_first_message_beats_isgc_payload(self):
        """A worker's first partition lands before its full IS-GC
        payload would (that needs all c computations first)."""
        c = 3
        compute = ComputeModel(base=0.1, per_partition=0.2)
        r = _round(CyclicRepetition(4, c))
        first = min(m.time for m in r.simulate(0))
        isgc_time = compute.base + c * compute.per_partition
        assert first < isgc_time

    def test_straggler_shifts_whole_worker(self):
        slow = PersistentStragglers([0], ShiftedExponentialDelay(5.0, 0.0))
        r = _round(CyclicRepetition(4, 2), delay=slow)
        arrivals = r.simulate(0)
        slow_first = min(m.time for m in arrivals if m.worker == 0)
        fast_last = max(m.time for m in arrivals if m.worker != 0)
        assert slow_first > fast_last


class TestCollectors:
    ARRIVALS = [
        MessageArrival(0, 0, 0.3),
        MessageArrival(1, 1, 0.4),
        MessageArrival(0, 1, 0.6),
        MessageArrival(2, 2, 0.9),
    ]

    def test_deadline_distinct_union(self):
        recovered, t = collect_by_deadline(self.ARRIVALS, 0.7)
        assert recovered == frozenset({0, 1})
        assert t == pytest.approx(0.7)

    def test_deadline_nobody_waits_for_first(self):
        recovered, t = collect_by_deadline(self.ARRIVALS, 0.1)
        assert recovered == frozenset({0})
        assert t == pytest.approx(0.3)

    def test_deadline_validation(self):
        with pytest.raises(SimulationError):
            collect_by_deadline([], 1.0)
        with pytest.raises(ConfigurationError):
            collect_by_deadline(self.ARRIVALS, -1.0)

    def test_first_k_messages(self):
        recovered, t = collect_first_k_messages(self.ARRIVALS, 3)
        assert recovered == frozenset({0, 1})  # duplicate partition 1
        assert t == pytest.approx(0.6)

    def test_first_k_validation(self):
        with pytest.raises(ConfigurationError):
            collect_first_k_messages(self.ARRIVALS, 0)
        with pytest.raises(ConfigurationError):
            collect_first_k_messages(self.ARRIVALS, 9)


class TestRecoveryVsDeadline:
    def test_monotone_in_deadline(self):
        placement = CyclicRepetition(6, 2)
        comparisons = recovery_vs_deadline(
            placement, deadlines=(0.2, 0.5, 1.0, 3.0), trials=100,
            compute=ComputeModel(0.05, 0.1), network=IDEAL,
            delay_model=ShiftedExponentialDelay(0.0, 0.5),
        )
        mm = [c.multimessage_recovered for c in comparisons]
        gc = [c.isgc_recovered for c in comparisons]
        assert mm == sorted(mm)
        assert gc == sorted(gc)

    def test_multimessage_leads_at_tight_deadlines(self):
        """Partial work counts: before any worker finishes all c
        partitions, only multi-message has recovered anything."""
        placement = FractionalRepetition(4, 2)
        compute = ComputeModel(base=0.1, per_partition=0.4)
        # Deadline after first partitions (0.5) but before full
        # payloads (0.9).
        comparisons = recovery_vs_deadline(
            placement, deadlines=(0.6,), trials=50,
            compute=compute, network=IDEAL, delay_model=NoDelay(),
        )
        point = comparisons[0]
        assert point.multimessage_recovered > point.isgc_recovered

    def test_both_reach_full_recovery_eventually(self):
        placement = CyclicRepetition(4, 2)
        comparisons = recovery_vs_deadline(
            placement, deadlines=(100.0,), trials=20,
            compute=ComputeModel(0.05, 0.1), network=IDEAL,
            delay_model=ShiftedExponentialDelay(0.0, 0.3),
        )
        point = comparisons[0]
        assert point.multimessage_recovered == pytest.approx(4.0)
        assert point.isgc_recovered == pytest.approx(4.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            recovery_vs_deadline(CyclicRepetition(4, 2), deadlines=())
