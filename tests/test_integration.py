"""Cross-module integration tests.

These exercise whole pipelines (placement → code → simulator → decoder →
optimizer) and the equivalences the paper asserts between schemes.
"""

import numpy as np
import pytest

from repro.codes import ClassicGradientCode
from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    HybridRepetition,
    SummationCode,
    decoder_for,
)
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel, WaitForK
from repro.straggler import (
    DelayTrace,
    ExponentialDelay,
    PersistentStragglers,
    ShiftedExponentialDelay,
    TraceReplayModel,
)
from repro.training import (
    DistributedTrainer,
    ISGCStrategy,
    ISSGDStrategy,
    SGD,
    SoftmaxRegressionModel,
    SyncSGDStrategy,
    build_batch_streams,
    make_classification,
    partition_dataset,
)


def _training_setup(strategy, trace, lr=0.3, n=4, seed=0):
    ds = make_classification(600, 10, num_classes=3, separation=3.0, seed=5)
    parts = partition_dataset(ds, n, seed=6)
    streams = build_batch_streams(parts, batch_size=32, seed=7)
    model = SoftmaxRegressionModel(10, 3, seed=0)
    cluster = ClusterSimulator(
        num_workers=n,
        partitions_per_worker=strategy.placement.partitions_per_worker,
        compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=TraceReplayModel(trace),
        rng=np.random.default_rng(seed),
    )
    return DistributedTrainer(model, streams, strategy, cluster, SGD(lr), eval_data=ds)


@pytest.fixture
def trace():
    return DelayTrace.record(
        ExponentialDelay(1.0), num_workers=4, num_steps=200,
        rng=np.random.default_rng(11),
    )


class TestSchemeEquivalences:
    def test_classic_gc_equals_sync_sgd_updates(self, trace):
        """Both recover the exact full gradient; with identical batches
        the loss curves must match to numerical precision."""
        gc = _training_setup(
            ClassicGCStrategyFactory(), trace
        )
        sync = _training_setup(SyncSGDStrategy(4), trace)
        s_gc = gc.run(max_steps=25)
        s_sync = sync.run(max_steps=25)
        np.testing.assert_allclose(
            np.array(s_gc.loss_curve), np.array(s_sync.loss_curve), atol=1e-6
        )

    def test_isgc_w_equals_n_matches_sync(self, trace):
        isgc = _training_setup(
            ISGCStrategy(FractionalRepetition(4, 2), wait_for=4,
                         rng=np.random.default_rng(2)),
            trace,
        )
        sync = _training_setup(SyncSGDStrategy(4), trace)
        np.testing.assert_allclose(
            np.array(isgc.run(max_steps=25).loss_curve),
            np.array(sync.run(max_steps=25).loss_curve),
            atol=1e-8,
        )

    def test_isgc_c1_equals_issgd(self, trace):
        """With c = 1 IS-GC degenerates to IS-SGD exactly."""
        isgc = _training_setup(
            ISGCStrategy(CyclicRepetition(4, 1), wait_for=2,
                         rng=np.random.default_rng(3)),
            trace,
        )
        issgd = _training_setup(ISSGDStrategy(4, 2), trace)
        np.testing.assert_allclose(
            np.array(isgc.run(max_steps=25).loss_curve),
            np.array(issgd.run(max_steps=25).loss_curve),
            atol=1e-8,
        )


def ClassicGCStrategyFactory():
    from repro.training import ClassicGCStrategy
    return ClassicGCStrategy(CyclicRepetition(4, 2), rng=np.random.default_rng(1))


class TestStepTimeOrdering:
    def test_wait_less_is_never_slower(self, trace):
        """Per-step time is monotone in w on identical delay traces."""
        times = {}
        for w in (1, 2, 3, 4):
            strat = ISGCStrategy(
                CyclicRepetition(4, 2), wait_for=w,
                rng=np.random.default_rng(4),
            )
            trainer = _training_setup(strat, trace)
            summary = trainer.run(max_steps=30)
            times[w] = summary.avg_step_time
        assert times[1] <= times[2] <= times[3] <= times[4]


class TestEnduringStraggler:
    def test_recovery_exceeds_iid_expectation(self):
        """Sec. VIII-C: a persistent straggler is always the ignored one,
        so IS-GC at w = n-1 recovers ~100% instead of the uniform-subset
        expectation."""
        n = 4
        placement = CyclicRepetition(n, 2)
        slow = PersistentStragglers([1], ShiftedExponentialDelay(50.0, 0.0))
        trace = DelayTrace.record(slow, n, 50, np.random.default_rng(0))
        strat = ISGCStrategy(placement, wait_for=3, rng=np.random.default_rng(5))
        trainer = _training_setup(strat, trace)
        summary = trainer.run(max_steps=40)
        # W' is always {0, 2, 3}: workers 2,3 are non-conflicting →
        # all 4 partitions recovered every step.
        assert summary.avg_recovery_fraction == pytest.approx(1.0)


class TestEndToEndPipelineConsistency:
    @pytest.mark.parametrize("placement", [
        FractionalRepetition(6, 2),
        CyclicRepetition(6, 2),
        CyclicRepetition(7, 3),
        HybridRepetition(8, 2, 2, 2),
    ])
    def test_simulated_round_decodes_cleanly(self, placement):
        """Random rounds: whatever workers the policy accepts, decode
        succeeds and the decoded vector equals the recovered-set sum."""
        n = placement.num_workers
        rng = np.random.default_rng(9)
        code = SummationCode(placement)
        decoder = decoder_for(placement, rng=rng)
        sim = ClusterSimulator(
            num_workers=n,
            partitions_per_worker=placement.partitions_per_worker,
            delay_model=ExponentialDelay(1.0),
            rng=rng,
        )
        grads = {p: rng.normal(size=5) for p in range(n)}
        payloads = code.encode(grads)
        for step in range(20):
            w = int(rng.integers(1, n + 1))
            result = sim.run_round(step, WaitForK(w))
            decision = decoder.decode(result.outcome.accepted_workers)
            decoded = code.decode_sum(decision, payloads)
            expected = sum(grads[p] for p in decision.recovered_partitions)
            np.testing.assert_allclose(decoded, expected, atol=1e-9)

    def test_gc_and_isgc_share_placement_semantics(self):
        """Classic GC and IS-GC on the same CR placement agree on the
        full-recovery sum when all workers report.  (n must be a multiple
        of c: with n = 5, c = 2 even a maximum independent set covers
        only 4 partitions — full recovery is impossible for IS-GC.)"""
        placement = CyclicRepetition(6, 2)
        rng = np.random.default_rng(3)
        grads = {p: rng.normal(size=4) for p in range(6)}
        gc = ClassicGradientCode(placement, rng=rng)
        summation = SummationCode(placement)
        decoder = decoder_for(placement, rng=rng)
        gc_total = gc.decode(range(6), gc.encode(grads))
        decision = decoder.decode(range(6))
        is_total = summation.decode_sum(decision, summation.encode(grads))
        np.testing.assert_allclose(gc_total, is_total, atol=1e-6)
