"""Property-based tests: decoder optimality, validity, and fairness.

The headline correctness claims of the paper (Theorems 2, 3, 8, 9) say
the linear-time decoders find *maximum* independent sets.  These tests
check every scheme decoder against the exact branch-and-bound MIS over
randomized placements and availability sets.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import fairness_gap, monte_carlo_recovery
from repro.core import (
    CyclicRepetition,
    ExactDecoder,
    FractionalRepetition,
    HybridRepetition,
    conflict_graph,
    decoder_for,
)
from repro.graphs import independence_number


def _random_subset(n, rng):
    w = int(rng.integers(1, n + 1))
    return sorted(rng.choice(n, size=w, replace=False).tolist())


def _assert_optimal(placement, avail, seed=0):
    dec = decoder_for(placement, rng=np.random.default_rng(seed))
    result = dec.decode(avail)
    graph = conflict_graph(placement)
    induced = graph.subgraph(avail)
    # Validity: selected workers form an independent set.
    assert induced.is_independent_set(result.selected_workers)
    # Optimality: it is a *maximum* independent set.
    assert len(result.selected_workers) == independence_number(induced), (
        f"{placement!r} avail={avail}: got {sorted(result.selected_workers)}"
    )


class TestOptimalityFR:
    @given(
        st.sampled_from([(4, 2), (6, 2), (6, 3), (8, 2), (8, 4), (12, 3), (12, 4)]),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=120, deadline=None)
    def test_fr_decoder_is_optimal(self, params, seed):
        n, c = params
        rng = np.random.default_rng(seed)
        _assert_optimal(FractionalRepetition(n, c), _random_subset(n, rng), seed)


class TestOptimalityCR:
    @given(
        st.integers(min_value=2, max_value=16),
        st.integers(min_value=1, max_value=16),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=250, deadline=None)
    def test_cr_decoder_is_optimal(self, n, c, seed):
        c = min(c, n)
        rng = np.random.default_rng(seed)
        _assert_optimal(CyclicRepetition(n, c), _random_subset(n, rng), seed)


class TestOptimalityHR:
    @given(
        st.sampled_from([
            (8, 3, 1, 2), (8, 2, 2, 2), (8, 1, 3, 2), (8, 0, 4, 2),
            (8, 4, 0, 2), (12, 3, 1, 3), (12, 2, 2, 3), (16, 3, 1, 4),
            (16, 2, 2, 4), (12, 4, 0, 2), (12, 2, 0, 2), (10, 4, 1, 2),
        ]),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=250, deadline=None)
    def test_hr_decoder_is_optimal(self, params, seed):
        n, c1, c2, g = params
        rng = np.random.default_rng(seed)
        _assert_optimal(
            HybridRepetition(n, c1, c2, g), _random_subset(n, rng), seed
        )


class TestDisjointness:
    @given(
        st.integers(min_value=2, max_value=14),
        st.integers(min_value=1, max_value=14),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=100, deadline=None)
    def test_selected_partitions_are_disjoint(self, n, c, seed):
        """The summed payloads must never double-count a partition."""
        c = min(c, n)
        placement = CyclicRepetition(n, c)
        rng = np.random.default_rng(seed)
        avail = _random_subset(n, rng)
        result = decoder_for(placement, rng=rng).decode(avail)
        total = sum(
            len(placement.partitions_of(w)) for w in result.selected_workers
        )
        assert total == result.num_recovered


class TestFairness:
    """Assumption 2: every partition equally likely to be recovered."""

    @pytest.mark.parametrize("placement,w", [
        (FractionalRepetition(4, 2), 2),
        (CyclicRepetition(4, 2), 2),
        (CyclicRepetition(6, 2), 3),
        (HybridRepetition(8, 2, 2, 2), 2),
    ])
    def test_partition_inclusion_is_uniform(self, placement, w):
        stats = monte_carlo_recovery(placement, w, trials=6000, seed=9)
        # Uniformity up to Monte-Carlo noise: gap ≪ mean frequency.
        assert fairness_gap(stats) < 0.05

    def test_exact_decoder_fair_mode_uniform(self):
        placement = CyclicRepetition(4, 2)
        dec = ExactDecoder(placement, rng=np.random.default_rng(1), fair=True)
        stats = monte_carlo_recovery(
            placement, 4, trials=4000, seed=2, decoder=dec
        )
        assert fairness_gap(stats) < 0.05


class TestRandomizedStartsCoverAllOptima:
    def test_cr_decoder_varies_selection(self):
        """With full availability on C_6^1 the decoder should not always
        return the same optimum (fairness requires randomization)."""
        placement = CyclicRepetition(6, 2)
        seen = set()
        for seed in range(50):
            dec = decoder_for(placement, rng=np.random.default_rng(seed))
            seen.add(dec.decode(range(6)).selected_workers)
        assert len(seen) >= 2
