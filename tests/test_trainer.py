"""Tests for the distributed-training driver and convergence tracking."""

import numpy as np
import pytest

from repro.core import CyclicRepetition, FractionalRepetition
from repro.exceptions import ConfigurationError, TrainingError
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
from repro.straggler import ExponentialDelay, NoDelay
from repro.training import (
    DistributedTrainer,
    ISGCStrategy,
    ISSGDStrategy,
    LogisticRegressionModel,
    LossTracker,
    SGD,
    SyncSGDStrategy,
    build_batch_streams,
    make_classification,
    partition_dataset,
)


def _setup(strategy, n=4, delay=None, seed=0, lr=0.5):
    ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
    parts = partition_dataset(ds, n, seed=2)
    streams = build_batch_streams(parts, batch_size=32, seed=3)
    model = LogisticRegressionModel(8, seed=0)
    cluster = ClusterSimulator(
        num_workers=n,
        partitions_per_worker=strategy.placement.partitions_per_worker,
        compute=ComputeModel(0.01, 0.01),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=delay or NoDelay(),
        rng=np.random.default_rng(seed),
    )
    trainer = DistributedTrainer(model, streams, strategy, cluster, SGD(lr), eval_data=ds)
    return trainer, ds


class TestLossTracker:
    def test_threshold_reached(self):
        t = LossTracker(threshold=1.0)
        t.record(2.0)
        assert not t.reached_threshold()
        t.record(0.9)
        assert t.reached_threshold()

    def test_no_threshold_never_done(self):
        t = LossTracker()
        t.record(0.0)
        assert not t.reached_threshold()

    def test_smoothing_window(self):
        t = LossTracker(threshold=1.0, smoothing_window=2)
        t.record(0.5)
        assert t.reached_threshold()  # single sample window
        t2 = LossTracker(threshold=1.0, smoothing_window=2)
        t2.record(2.0)
        t2.record(0.5)  # mean(2.0, 0.5) = 1.25 > 1.0
        assert not t2.reached_threshold()

    def test_steps_to_threshold(self):
        t = LossTracker(threshold=1.0)
        for loss in (3.0, 2.0, 0.8, 0.5):
            t.record(loss)
        assert t.steps_to_threshold() == 3

    def test_non_finite_loss_raises(self):
        t = LossTracker()
        with pytest.raises(ConfigurationError, match="diverged"):
            t.record(float("nan"))

    def test_best_loss(self):
        t = LossTracker()
        for loss in (3.0, 1.0, 2.0):
            t.record(loss)
        assert t.best_loss() == 1.0

    def test_empty_queries_raise(self):
        t = LossTracker()
        with pytest.raises(ConfigurationError):
            t.smoothed_loss()
        with pytest.raises(ConfigurationError):
            t.best_loss()

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            LossTracker(smoothing_window=0)


class TestDistributedTrainer:
    def test_loss_decreases(self):
        trainer, _ = _setup(SyncSGDStrategy(4))
        summary = trainer.run(max_steps=60)
        assert summary.loss_curve[-1] < summary.loss_curve[0]

    def test_stops_at_threshold(self):
        trainer, _ = _setup(SyncSGDStrategy(4))
        summary = trainer.run(max_steps=500, loss_threshold=0.3)
        assert summary.reached_threshold
        assert summary.num_steps < 500

    def test_max_steps_respected(self):
        trainer, _ = _setup(SyncSGDStrategy(4))
        summary = trainer.run(max_steps=5)
        assert summary.num_steps == 5
        assert not summary.reached_threshold

    def test_records_populated(self):
        trainer, _ = _setup(ISSGDStrategy(4, 2), delay=ExponentialDelay(0.5))
        trainer.run(max_steps=10)
        records = trainer.records
        assert len(records) == 10
        assert all(r.num_available == 2 for r in records)
        assert all(r.num_recovered == 2 for r in records)
        assert all(r.recovery_fraction == pytest.approx(0.5) for r in records)

    def test_sim_time_monotone(self):
        trainer, _ = _setup(ISSGDStrategy(4, 3), delay=ExponentialDelay(0.5))
        trainer.run(max_steps=10)
        times = [r.sim_time for r in trainer.records]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_isgc_recovery_exceeds_issgd(self):
        """With the same w, IS-GC recovers 2× the partitions of IS-SGD."""
        isgc, _ = _setup(
            ISGCStrategy(FractionalRepetition(4, 2), wait_for=2,
                         rng=np.random.default_rng(1)),
            delay=ExponentialDelay(0.5),
        )
        issgd, _ = _setup(ISSGDStrategy(4, 2), delay=ExponentialDelay(0.5))
        s_gc = isgc.run(max_steps=20)
        s_sgd = issgd.run(max_steps=20)
        assert s_gc.avg_recovery_fraction > s_sgd.avg_recovery_fraction

    def test_stream_count_mismatch(self):
        ds = make_classification(100, 8, seed=1)
        parts = partition_dataset(ds, 3, seed=2)
        streams = build_batch_streams(parts, 16, seed=3)
        strategy = SyncSGDStrategy(4)
        cluster = ClusterSimulator(4, 1, rng=np.random.default_rng(0))
        with pytest.raises(TrainingError, match="partitions"):
            DistributedTrainer(
                LogisticRegressionModel(8), streams, strategy, cluster, SGD(0.1)
            )

    def test_cluster_size_mismatch(self):
        ds = make_classification(100, 8, seed=1)
        parts = partition_dataset(ds, 4, seed=2)
        streams = build_batch_streams(parts, 16, seed=3)
        cluster = ClusterSimulator(5, 1, rng=np.random.default_rng(0))
        with pytest.raises(TrainingError, match="workers"):
            DistributedTrainer(
                LogisticRegressionModel(8), streams, SyncSGDStrategy(4),
                cluster, SGD(0.1),
            )

    def test_invalid_max_steps(self):
        trainer, _ = _setup(SyncSGDStrategy(4))
        with pytest.raises(TrainingError):
            trainer.run(max_steps=0)

    def test_batch_loss_fallback_without_eval_data(self):
        ds = make_classification(512, 8, num_classes=2, seed=1)
        parts = partition_dataset(ds, 4, seed=2)
        streams = build_batch_streams(parts, 32, seed=3)
        cluster = ClusterSimulator(4, 1, rng=np.random.default_rng(0))
        trainer = DistributedTrainer(
            LogisticRegressionModel(8, seed=0), streams, SyncSGDStrategy(4),
            cluster, SGD(0.5),
        )
        summary = trainer.run(max_steps=20)
        assert np.isfinite(summary.final_loss)

    def test_summary_describe(self):
        trainer, _ = _setup(SyncSGDStrategy(4))
        text = trainer.run(max_steps=3).describe()
        assert "sync-sgd" in text
        assert "steps" in text


class TestSeedDiscipline:
    def test_same_trace_same_model_updates_when_full_recovery(self):
        """Sync SGD and IS-GC at w=n both fully recover: with identical
        batches their parameter trajectories must coincide."""
        sync, _ = _setup(SyncSGDStrategy(4))
        isgc, _ = _setup(
            ISGCStrategy(CyclicRepetition(4, 2), wait_for=4,
                         rng=np.random.default_rng(0))
        )
        s1 = sync.run(max_steps=15)
        s2 = isgc.run(max_steps=15)
        np.testing.assert_allclose(
            np.array(s1.loss_curve), np.array(s2.loss_curve), atol=1e-8
        )


class TestRecoveryScaledLR:
    def test_scaling_shrinks_low_recovery_steps(self):
        """With recovery-scaled LR, a w=1 run (25% recovery) moves the
        parameters 4x less per step than the unscaled run."""
        import numpy as np

        def build(scaled):
            strat = ISSGDStrategy(4, 1)
            ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
            parts = partition_dataset(ds, 4, seed=2)
            streams = build_batch_streams(parts, batch_size=32, seed=3)
            model = LogisticRegressionModel(8, seed=0)
            cluster = ClusterSimulator(
                4, 1, compute=ComputeModel(0.01, 0.01),
                network=NetworkModel(latency=0.0, bandwidth=float("inf")),
                delay_model=NoDelay(), rng=np.random.default_rng(0),
            )
            return model, DistributedTrainer(
                model, streams, strat, cluster, SGD(0.5), eval_data=ds,
                recovery_scaled_lr=scaled,
            )

        model_plain, plain = build(False)
        start = model_plain.get_parameters()
        plain.run(max_steps=1)
        step_plain = np.linalg.norm(model_plain.get_parameters() - start)

        model_scaled, scaled = build(True)
        scaled.run(max_steps=1)
        step_scaled = np.linalg.norm(model_scaled.get_parameters() - start)
        assert step_scaled == pytest.approx(step_plain / 4, rel=1e-9)

    def test_full_recovery_unchanged(self):
        """At 100% recovery the scaling multiplier is exactly 1."""
        import numpy as np

        def run(scaled):
            ds = make_classification(256, 8, num_classes=2, seed=1)
            parts = partition_dataset(ds, 4, seed=2)
            streams = build_batch_streams(parts, batch_size=32, seed=3)
            model = LogisticRegressionModel(8, seed=0)
            cluster = ClusterSimulator(
                4, 1, delay_model=NoDelay(), rng=np.random.default_rng(0),
            )
            trainer = DistributedTrainer(
                model, streams, SyncSGDStrategy(4), cluster, SGD(0.5),
                eval_data=ds, recovery_scaled_lr=scaled,
            )
            return trainer.run(max_steps=10).loss_curve

        np.testing.assert_allclose(run(False), run(True), atol=1e-12)
