"""Tests for :mod:`repro.parallel` — executors, seeding, decode cache.

The correctness bar of the parallel layer is *bit-for-bit equivalence*:
``ProcessExecutor`` results must be indistinguishable from
``SerialExecutor`` results (property-tested on a fig11-shaped grid),
and cached decodes must be indistinguishable from uncached ones —
including the decoder's RNG stream position afterwards.
"""

import functools
import warnings

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cyclic import CyclicRepetition
from repro.core.decoders import Decoder, Selection, decoder_for
from repro.core.fractional import FractionalRepetition
from repro.core.hybrid import HybridRepetition
from repro.exceptions import ConfigurationError
from repro.experiments.config import Fig11Config
from repro.experiments.fig11 import run_condition, run_fig11
from repro.experiments.sweep import Sweep, SweepResult
from repro.obs.registry import MetricsRegistry
from repro.parallel import (
    DecodeCache,
    ExecutionError,
    PointTask,
    ProcessExecutor,
    SerialExecutor,
    SweepExecutor,
    evaluate_point,
    spawn_point_seeds,
)


# ----------------------------------------------------------------------
# Module-level cell functions (picklable across the pool boundary).


def square(x):
    return x * x


def fragile(x):
    if x == 2:
        raise ValueError("boom at 2")
    return -x


def draw(a, rng):
    """A cell that consumes its injected spawned-seed generator."""
    return (a, float(rng.standard_normal()), int(rng.integers(1000)))


def tasks_for(values, seeds=None, key="x"):
    seeds = seeds if seeds is not None else [None] * len(values)
    return [
        PointTask(index=i, params={key: v}, seed=s)
        for i, (v, s) in enumerate(zip(values, seeds))
    ]


# ----------------------------------------------------------------------
# Executors


class TestSerialExecutor:
    def test_outcomes_in_index_order_with_values(self):
        outcomes = SerialExecutor().run(square, tasks_for([3, 4, 5]))
        assert [o.index for o in outcomes] == [0, 1, 2]
        assert [o.value for o in outcomes] == [9, 16, 25]
        assert all(o.ok and o.elapsed >= 0.0 for o in outcomes)

    def test_failure_isolated_with_full_traceback(self):
        outcomes = SerialExecutor().run(fragile, tasks_for([1, 2, 3]))
        assert [o.ok for o in outcomes] == [True, False, True]
        assert "ValueError: boom at 2" in outcomes[1].error
        assert "Traceback" in outcomes[1].error
        assert outcomes[2].value == -3

    def test_strict_reraises_original_exception_type(self):
        with pytest.raises(ValueError, match="boom at 2"):
            SerialExecutor().run(fragile, tasks_for([2]), reraise=True)

    def test_metrics_and_events(self):
        registry = MetricsRegistry()
        events = []
        executor = SerialExecutor(metrics=registry, on_event=events.append)
        executor.run(fragile, tasks_for([1, 2]))
        assert registry.counter("sweep.points.ok").value == 1
        assert registry.counter("sweep.points.failed").value == 1
        assert registry.histogram("sweep.point_seconds").count == 2
        kinds = [e.kind for e in events]
        assert kinds == ["start", "point", "point", "finish"]
        assert events[-1].completed == events[-1].total == 2


class TestProcessExecutor:
    def test_matches_serial_bit_for_bit(self):
        values = list(range(7))
        serial = SerialExecutor().run(square, tasks_for(values))
        parallel = ProcessExecutor(3).run(square, tasks_for(values))
        assert [(o.index, o.value, o.error) for o in serial] == [
            (o.index, o.value, o.error) for o in parallel
        ]

    def test_spawned_seeds_make_rng_location_independent(self):
        for jobs in (1, 2, 4):
            seeds = spawn_point_seeds(1234, 5)
            outcomes = ProcessExecutor(jobs).run(
                draw, tasks_for([10, 11, 12, 13, 14], seeds, key="a")
            )
            values = [o.value for o in outcomes]
            reference = [
                draw(10 + i, np.random.default_rng(spawn_point_seeds(1234, 5)[i]))
                for i in range(5)
            ]
            assert values == reference, f"jobs={jobs} diverged"

    def test_failure_isolated_across_pool(self):
        outcomes = ProcessExecutor(2).run(fragile, tasks_for([1, 2, 3, 4]))
        assert [o.ok for o in outcomes] == [True, False, True, True]
        assert "ValueError: boom at 2" in outcomes[1].error

    def test_strict_raises_execution_error_with_traceback(self):
        with pytest.raises(ExecutionError, match="boom at 2"):
            ProcessExecutor(2).run(
                fragile, tasks_for([1, 2, 3, 4]), reraise=True
            )

    def test_unpicklable_fn_becomes_point_errors(self):
        outcomes = ProcessExecutor(2).run(
            lambda x: x, tasks_for([1, 2, 3])
        )
        assert all(not o.ok for o in outcomes)
        assert all(o.error for o in outcomes)

    def test_jobs_one_falls_back_to_serial(self):
        outcomes = ProcessExecutor(1).run(square, tasks_for([2, 3]))
        assert [o.value for o in outcomes] == [4, 9]

    def test_chunking_covers_every_task(self):
        executor = ProcessExecutor(2, chunk_size=2)
        outcomes = executor.run(square, tasks_for(list(range(9))))
        assert [o.value for o in outcomes] == [i * i for i in range(9)]

    def test_invalid_construction_rejected(self):
        with pytest.raises(ConfigurationError):
            ProcessExecutor(0)
        with pytest.raises(ConfigurationError):
            ProcessExecutor(2, chunk_size=0)

    def test_empty_task_list(self):
        assert ProcessExecutor(2).run(square, []) == []


class TestSeeding:
    def test_spawn_is_deterministic(self):
        a = spawn_point_seeds(99, 4)
        b = spawn_point_seeds(99, 4)
        assert [s.entropy for s in a] == [s.entropy for s in b]
        assert [s.spawn_key for s in a] == [s.spawn_key for s in b]

    def test_accepts_seed_sequence_root(self):
        root = np.random.SeedSequence(5)
        assert len(spawn_point_seeds(root, 3)) == 3

    def test_evaluate_point_injects_rng_only_when_seeded(self):
        seeded = evaluate_point(
            draw, PointTask(0, {"a": 1}, np.random.SeedSequence(0))
        )
        assert seeded.ok
        unseeded = evaluate_point(square, PointTask(0, {"x": 3}))
        assert unseeded.value == 9


# ----------------------------------------------------------------------
# The tentpole property: parallel == serial on a fig11-shaped grid.


@st.composite
def fig11_grids(draw_):
    delays = draw_(
        st.lists(
            st.sampled_from([0.5, 1.0, 1.5, 2.0]),
            min_size=1, max_size=2, unique=True,
        )
    )
    num_workers = draw_(st.sampled_from([4, 6]))
    delayed = draw_(
        st.lists(
            st.integers(min_value=1, max_value=num_workers),
            min_size=1, max_size=2, unique=True,
        )
    )
    seed = draw_(st.integers(min_value=0, max_value=2**16))
    return Fig11Config(
        num_workers=num_workers,
        num_steps=8,
        expected_delays=tuple(delays),
        num_delayed_options=tuple(delayed),
        wait_values=(2, num_workers - 1),
        seed=seed,
    )


class TestParallelEqualsSerial:
    @settings(max_examples=4, deadline=None)
    @given(cfg=fig11_grids())
    def test_fig11_grid_parallel_equals_serial(self, cfg):
        serial = run_fig11(cfg)
        parallel = run_fig11(cfg, executor=ProcessExecutor(4))
        assert serial == parallel

    def test_sweep_over_fig11_conditions_parallel_equals_serial(self):
        cfg = Fig11Config(
            num_workers=4, num_steps=6, wait_values=(2, 3),
            num_delayed_options=(2, 4),
        )
        sweep = Sweep(
            name="fig11-shaped",
            axes={
                "expected_delay": [0.5, 1.5],
                "num_delayed": [2, 4],
            },
        )
        fn = functools.partial(run_condition, cfg)
        serial = sweep.run(fn)
        parallel = sweep.run(fn, executor=ProcessExecutor(4))
        assert [(p.params, p.value, p.error) for p in serial] == [
            (p.params, p.value, p.error) for p in parallel
        ]
        assert serial.executor == "serial"
        assert parallel.executor == "process"


# ----------------------------------------------------------------------
# The unified Sweep.run surface


class TestSweepAPI:
    def test_run_returns_sequence_result(self):
        sweep = Sweep(name="s", axes={"x": [1, 2, 3]})
        result = sweep.run(square)
        assert isinstance(result, SweepResult)
        assert len(result) == 3
        assert result[1].value == 4
        assert list(result)[2].params == {"x": 3}
        assert result.ok and result.failures == []
        assert result.elapsed >= 0.0

    def test_seeded_run_is_executor_invariant(self):
        sweep = Sweep(name="s", axes={"a": [1, 2, 3, 4]})
        serial = sweep.run(draw, seed=7)
        parallel = sweep.run(draw, seed=7, executor=ProcessExecutor(2))
        assert [p.value for p in serial] == [p.value for p in parallel]

    def test_tables_accept_result(self):
        sweep = Sweep(name="s", axes={"x": [1, 2]})
        result = sweep.run(square)
        table = sweep.to_table(result=result)
        assert "4" in table.render()

    def test_run_specs_alias_removed(self):
        # The one-release deprecated alias is gone; over_spec sweeps go
        # through the unified Sweep.run.
        from repro.engine.spec import ExperimentSpec

        spec = ExperimentSpec(
            name="t", scheme="is-sgd", num_workers=4, wait_for=2,
            max_steps=5,
        )
        sweep = Sweep.over_spec("t", spec, {"wait_for": [2, 3]})
        assert not hasattr(sweep, "run_specs")
        result = sweep.run()
        assert len(result) == 2 and result.ok

    def test_run_without_fn_needs_over_spec(self):
        with pytest.raises(ConfigurationError, match="over_spec"):
            Sweep(name="s", axes={"x": [1]}).run()


# ----------------------------------------------------------------------
# DecodeCache


class TestDecodeCache:
    def test_hit_miss_accounting(self):
        cache = DecodeCache()
        assert cache.get_or_compute("fp", "k", 1, lambda: "a") == "a"
        assert cache.get_or_compute("fp", "k", 1, lambda: "b") == "a"
        assert cache.misses == 1 and cache.hits == 1
        assert cache.hit_rate == 0.5

    def test_lru_eviction(self):
        cache = DecodeCache(maxsize=2)
        cache.get_or_compute("fp", "k", 1, lambda: 1)
        cache.get_or_compute("fp", "k", 2, lambda: 2)
        cache.get_or_compute("fp", "k", 1, lambda: None)  # refresh key 1
        cache.get_or_compute("fp", "k", 3, lambda: 3)     # evicts key 2
        assert cache.evictions == 1
        assert cache.get_or_compute("fp", "k", 1, lambda: 99) == 1
        assert cache.get_or_compute("fp", "k", 2, lambda: 99) == 99  # gone

    def test_fingerprints_isolate_equal_masks(self):
        """Same (kind, mask) under different placements must not collide."""
        cr = CyclicRepetition(6, 2)
        fr = FractionalRepetition(6, 2)
        assert cr.fingerprint != fr.fingerprint
        # Equal-content placements share a fingerprint (cache reuse
        # across processes and instances).
        assert cr.fingerprint == CyclicRepetition(6, 2).fingerprint
        cache = DecodeCache()
        mask = frozenset({0, 1, 2})
        a = cache.get_or_compute(cr.fingerprint, "chain", mask, lambda: "cr")
        b = cache.get_or_compute(fr.fingerprint, "chain", mask, lambda: "fr")
        assert (a, b) == ("cr", "fr")
        assert cache.misses == 2 and cache.hits == 0

    def test_metrics_export(self):
        registry = MetricsRegistry()
        cache = DecodeCache(maxsize=1, metrics=registry)
        cache.get_or_compute("fp", "k", 1, lambda: 1)
        cache.get_or_compute("fp", "k", 1, lambda: 1)
        cache.get_or_compute("fp", "k", 2, lambda: 2)
        assert registry.counter("decode.cache.hits").value == 1
        assert registry.counter("decode.cache.misses").value == 2
        assert registry.counter("decode.cache.evictions").value == 1
        assert registry.gauge("decode.cache.size").value == 1

    def test_snapshot_and_describe(self):
        cache = DecodeCache(maxsize=8)
        cache.get_or_compute("fp", "k", 1, lambda: 1)
        snap = cache.snapshot()
        assert snap["misses"] == 1.0 and snap["maxsize"] == 8.0
        assert "1 lookups" in cache.describe()

    def test_rejects_bad_maxsize(self):
        with pytest.raises(ConfigurationError):
            DecodeCache(0)

    def test_clear_keeps_counters(self):
        cache = DecodeCache()
        cache.get_or_compute("fp", "k", 1, lambda: 1)
        cache.clear()
        assert cache.size == 0 and cache.misses == 1


# ----------------------------------------------------------------------
# Cached decoding is bit-for-bit identical to uncached decoding.


PLACEMENTS = [
    CyclicRepetition(12, 3),
    FractionalRepetition(12, 3),
    HybridRepetition(12, 1, 2, 3),
    HybridRepetition(8, 3, 0, 2),   # grouped-CR special case
    HybridRepetition(8, 0, 4, 2),   # pure-CR special case
]


def _decode_stream(placement, cache, rounds=120, seed=11):
    """Decode many random masks; return (results, final rng draw)."""
    rng = np.random.default_rng(seed)
    decoder = decoder_for(placement, rng=rng, cache=cache)
    mask_rng = np.random.default_rng(0)
    n = placement.num_workers
    results = []
    for _ in range(rounds):
        k = int(mask_rng.integers(1, n + 1))
        mask = frozenset(
            int(w) for w in mask_rng.choice(n, size=k, replace=False)
        )
        results.append(decoder.decode(mask))
    # The generator must be in the same state too: caching may never
    # absorb or reorder fairness draws.
    return results, int(rng.integers(1 << 30))


class TestCachedDecodingTransparency:
    @pytest.mark.parametrize(
        "placement", PLACEMENTS, ids=lambda p: f"{p.scheme}-{p!r}"
    )
    def test_cache_is_bit_for_bit_transparent(self, placement):
        uncached, tail_a = _decode_stream(placement, None)
        cache = DecodeCache()
        cached, tail_b = _decode_stream(placement, cache)
        assert uncached == cached
        assert tail_a == tail_b
        if placement.scheme != "fr":  # FR has no cacheable kernel
            assert cache.hits + cache.misses > 0

    def test_exact_decoder_fair_draw_stays_live(self):
        placement = CyclicRepetition(8, 2)
        from repro.core.exact_decoder import ExactDecoder

        cache = DecodeCache()
        a = ExactDecoder(placement, rng=np.random.default_rng(3))
        b = ExactDecoder(placement, rng=np.random.default_rng(3), cache=cache)
        mask = frozenset(range(8))
        for _ in range(25):
            assert a.decode(mask) == b.decode(mask)
        assert cache.hits == 24 and cache.misses == 1


# ----------------------------------------------------------------------
# Decoder API: the PR-4 deprecation shims are gone


class TestDecoderKeywordOnly:
    def test_positional_rng_rejected(self):
        # The one-release positional shim is removed: rng/metrics/cache
        # are strictly keyword-only now.
        with pytest.raises(TypeError):
            decoder_for(CyclicRepetition(6, 2), np.random.default_rng(0))

    def test_constructor_positional_rng_rejected(self):
        from repro.core.cr_decoder import CRDecoder

        with pytest.raises(TypeError):
            CRDecoder(CyclicRepetition(6, 2), np.random.default_rng(0))

    def test_legacy_select_hook_no_longer_dispatched(self):
        # Overriding the removed _select hook does nothing; the subclass
        # must implement _decode.
        class LegacyDecoder(Decoder):
            def _select(self, available):  # pragma: no cover - never called
                return frozenset([min(available)]), 1

        decoder = LegacyDecoder(
            CyclicRepetition(4, 1), rng=np.random.default_rng(0)
        )
        with pytest.raises(NotImplementedError, match="_decode"):
            decoder.decode({1, 3})

    def test_new_subclass_without_hooks_raises(self):
        class EmptyDecoder(Decoder):
            pass

        decoder = EmptyDecoder(
            CyclicRepetition(4, 1), rng=np.random.default_rng(0)
        )
        with pytest.raises(NotImplementedError):
            decoder.decode({0, 1})

    def test_selection_is_named_tuple(self):
        selection = Selection(frozenset({1}), 2)
        workers, searches = selection
        assert workers == frozenset({1}) and searches == 2

    def test_rng_metrics_cache_are_keyword_only(self):
        with pytest.raises(TypeError):
            decoder_for(
                CyclicRepetition(6, 2),
                np.random.default_rng(0), None, DecodeCache(),
            )


def test_executor_abstract_interface():
    assert issubclass(SerialExecutor, SweepExecutor)
    assert issubclass(ProcessExecutor, SweepExecutor)
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        # Instantiating concrete executors must not warn.
        SerialExecutor()
        ProcessExecutor(2)
