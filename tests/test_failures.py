"""Failure-injection tests: crashes, dropouts, and training through them."""

import numpy as np
import pytest

from repro.core import CyclicRepetition
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation import (
    BestEffortWaitForK,
    ClusterSimulator,
    ComputeModel,
    ContendedUploadModel,
    NetworkModel,
    WaitForK,
)
from repro.straggler import (
    CompositeFailures,
    NoDelay,
    NoFailures,
    PermanentCrashes,
    TransientDropouts,
)
from repro.training import (
    DistributedTrainer,
    ISGCStrategy,
    LogisticRegressionModel,
    SGD,
    SyncSGDStrategy,
    build_batch_streams,
    make_classification,
    partition_dataset,
)


class TestFailureModels:
    def test_no_failures(self, rng):
        model = NoFailures()
        assert all(model.is_alive(w, s, rng) for w in range(4) for s in range(4))

    def test_permanent_crash_from_step(self, rng):
        model = PermanentCrashes([1], at_step=3)
        assert model.is_alive(1, 2, rng)
        assert not model.is_alive(1, 3, rng)
        assert not model.is_alive(1, 99, rng)
        assert model.is_alive(0, 99, rng)

    def test_permanent_crash_validation(self):
        with pytest.raises(ConfigurationError):
            PermanentCrashes([0], at_step=-1)

    def test_transient_dropout_rate(self, rng):
        model = TransientDropouts(0.25)
        alive = sum(model.is_alive(0, s, rng) for s in range(10_000))
        assert alive / 10_000 == pytest.approx(0.75, abs=0.02)

    def test_transient_validation(self):
        with pytest.raises(ConfigurationError):
            TransientDropouts(1.0)

    def test_composite(self, rng):
        model = CompositeFailures([
            PermanentCrashes([0]), PermanentCrashes([1]),
        ])
        assert not model.is_alive(0, 0, rng)
        assert not model.is_alive(1, 0, rng)
        assert model.is_alive(2, 0, rng)

    def test_composite_validation(self):
        with pytest.raises(ConfigurationError):
            CompositeFailures([])


class TestSimulatorWithFailures:
    def _sim(self, failures, policy_k=2, **kw):
        return ClusterSimulator(
            num_workers=4,
            partitions_per_worker=2,
            compute=ComputeModel(0.1, 0.1),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=NoDelay(),
            failure_model=failures,
            rng=np.random.default_rng(0),
            **kw,
        )

    def test_crashed_workers_never_arrive(self):
        sim = self._sim(PermanentCrashes([0, 1]))
        result = sim.run_round(0, BestEffortWaitForK(4))
        assert set(result.arrivals) == {2, 3}

    def test_strict_wait_deadlocks_on_crash(self):
        """Sync-SGD semantics cannot survive a crash — the failure mode
        arbitrary ignorance exists to avoid."""
        sim = self._sim(PermanentCrashes([0]))
        with pytest.raises(SimulationError):
            sim.run_round(0, WaitForK(4))

    def test_best_effort_clamps(self):
        sim = self._sim(PermanentCrashes([0, 1, 2]))
        result = sim.run_round(0, BestEffortWaitForK(4))
        assert result.outcome.accepted_workers == frozenset({3})

    def test_all_failed_raises(self):
        sim = self._sim(PermanentCrashes([0, 1, 2, 3]))
        with pytest.raises(SimulationError, match="every worker failed"):
            sim.run_round(0, BestEffortWaitForK(1))

    def test_contended_link_round(self):
        sim = self._sim(
            NoFailures(),
            contended_link=ContendedUploadModel(capacity_bytes_per_s=80_000),
        )
        # 4 × 40 kB flows share 80 kB/s: all finish 2 s after compute.
        result = sim.run_round(0, BestEffortWaitForK(4))
        assert result.step_time == pytest.approx(0.3 + 2.0)

    def test_contention_vs_ideal_ordering(self):
        contended = self._sim(
            NoFailures(),
            contended_link=ContendedUploadModel(capacity_bytes_per_s=80_000),
        )
        ideal = self._sim(NoFailures())
        t_contended = contended.run_round(0, BestEffortWaitForK(4)).step_time
        t_ideal = ideal.run_round(0, BestEffortWaitForK(4)).step_time
        assert t_contended > t_ideal


class TestTrainingThroughFailures:
    def _trainer(self, failures, wait_for=2):
        n = 4
        ds = make_classification(256, 6, num_classes=2, separation=3.0, seed=0)
        streams = build_batch_streams(partition_dataset(ds, n, seed=1), 16, seed=2)
        strategy = ISGCStrategy(
            CyclicRepetition(n, 2), wait_for=wait_for,
            rng=np.random.default_rng(0),
            policy=BestEffortWaitForK(wait_for),
        )
        cluster = ClusterSimulator(
            n, 2, compute=ComputeModel(0.05, 0.05),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=NoDelay(), failure_model=failures,
            rng=np.random.default_rng(1),
        )
        return DistributedTrainer(
            LogisticRegressionModel(6, seed=0), streams, strategy, cluster,
            SGD(0.3), eval_data=ds,
        )

    def test_isgc_survives_permanent_crash(self):
        trainer = self._trainer(PermanentCrashes([0], at_step=5), wait_for=3)
        summary = trainer.run(max_steps=30)
        assert summary.num_steps == 30
        assert summary.loss_curve[-1] < summary.loss_curve[0]
        # After the crash only 3 workers can ever arrive.
        late = [r for r in trainer.records if r.step >= 5]
        assert all(r.num_available == 3 for r in late)

    def test_isgc_survives_dropouts(self):
        trainer = self._trainer(TransientDropouts(0.3), wait_for=3)
        summary = trainer.run(max_steps=30)
        assert summary.num_steps == 30
        assert all(r.num_recovered >= 2 for r in trainer.records)

    def test_sync_sgd_dies_on_crash(self):
        n = 4
        ds = make_classification(256, 6, num_classes=2, seed=0)
        streams = build_batch_streams(partition_dataset(ds, n, seed=1), 16, seed=2)
        cluster = ClusterSimulator(
            n, 1, delay_model=NoDelay(),
            failure_model=PermanentCrashes([2], at_step=0),
            rng=np.random.default_rng(0),
        )
        trainer = DistributedTrainer(
            LogisticRegressionModel(6, seed=0), streams, SyncSGDStrategy(n),
            cluster, SGD(0.3), eval_data=ds,
        )
        with pytest.raises(SimulationError):
            trainer.run(max_steps=5)
