"""Tests for the asynchronous-SGD baseline."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.simulation import ComputeModel, NetworkModel
from repro.straggler import NoDelay, PersistentStragglers, ShiftedExponentialDelay
from repro.training import (
    AsyncSGDTrainer,
    LogisticRegressionModel,
    SGD,
    build_batch_streams,
    make_classification,
    partition_dataset,
)


def _trainer(n=4, delay=None, lr=0.3, seed=0):
    ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
    parts = partition_dataset(ds, n, seed=2)
    streams = build_batch_streams(parts, batch_size=32, seed=3)
    return AsyncSGDTrainer(
        model=LogisticRegressionModel(8, seed=0),
        streams=streams,
        optimizer=SGD(lr),
        compute=ComputeModel(0.05, 0.05),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=delay or NoDelay(),
        eval_data=ds,
        rng=np.random.default_rng(seed),
    ), ds


class TestBasics:
    def test_runs_requested_updates(self):
        trainer, _ = _trainer()
        summary = trainer.run(max_updates=40)
        assert summary.num_updates == 40
        assert len(trainer.records) == 40

    def test_loss_decreases(self):
        trainer, _ = _trainer()
        summary = trainer.run(max_updates=120)
        assert summary.loss_curve[-1] < summary.loss_curve[0]

    def test_invalid_updates(self):
        trainer, _ = _trainer()
        with pytest.raises(TrainingError):
            trainer.run(max_updates=0)

    def test_empty_streams(self):
        with pytest.raises(TrainingError):
            AsyncSGDTrainer(
                LogisticRegressionModel(4), [], SGD(0.1),
            )

    def test_time_monotone(self):
        trainer, _ = _trainer()
        trainer.run(max_updates=30)
        times = [r.sim_time for r in trainer.records]
        assert all(b >= a for a, b in zip(times, times[1:]))

    def test_describe(self):
        trainer, _ = _trainer()
        assert "async-sgd" in trainer.run(max_updates=10).describe()


class TestStaleness:
    def test_staleness_nonnegative(self):
        trainer, _ = _trainer()
        trainer.run(max_updates=60)
        assert all(r.staleness >= 0 for r in trainer.records)

    def test_homogeneous_workers_staleness_near_n_minus_1(self):
        """With identical speeds, by the time a worker returns, the other
        n−1 have each contributed one update — classic async staleness."""
        trainer, _ = _trainer(n=4)
        summary = trainer.run(max_updates=200)
        assert summary.mean_staleness == pytest.approx(3.0, abs=0.5)

    def test_slow_worker_accumulates_staleness(self):
        # Mildly slow (0.5 s vs 0.1 s rounds) so it still contributes
        # within the budget — its gradients arrive many versions stale.
        slow = PersistentStragglers([0], ShiftedExponentialDelay(0.5, 0.0))
        trainer, _ = _trainer(delay=slow)
        trainer.run(max_updates=150)
        slow_staleness = [r.staleness for r in trainer.records if r.worker == 0]
        fast_staleness = [r.staleness for r in trainer.records if r.worker != 0]
        assert slow_staleness, "slow worker never contributed"
        assert max(slow_staleness) > max(fast_staleness)

    def test_never_waits_for_stragglers(self):
        """Async keeps updating at the fast workers' cadence: total time
        for K updates is barely affected by one very slow worker."""
        fast_trainer, _ = _trainer(n=4)
        slow = PersistentStragglers([0], ShiftedExponentialDelay(100.0, 0.0))
        slow_trainer, _ = _trainer(n=4, delay=slow)
        t_fast = fast_trainer.run(max_updates=90).total_sim_time
        t_slow = slow_trainer.run(max_updates=90).total_sim_time
        # 3 fast workers instead of 4 → at most ~4/3 slower, never 100 s.
        assert t_slow < 2.0 * t_fast


class TestComparisonWithSync:
    def test_async_time_per_update_beats_sync_under_stragglers(self):
        """The motivation for async: one chronic straggler stalls every
        synchronous step but only its own async contributions."""
        from repro.simulation import ClusterSimulator
        from repro.training import DistributedTrainer, SyncSGDStrategy

        slow = PersistentStragglers([0], ShiftedExponentialDelay(3.0, 0.0))
        async_trainer, ds = _trainer(delay=slow)
        async_summary = async_trainer.run(max_updates=80)

        parts = partition_dataset(ds, 4, seed=2)
        streams = build_batch_streams(parts, batch_size=32, seed=3)
        cluster = ClusterSimulator(
            4, 1, compute=ComputeModel(0.05, 0.05),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=slow, rng=np.random.default_rng(0),
        )
        sync_trainer = DistributedTrainer(
            LogisticRegressionModel(8, seed=0), streams,
            SyncSGDStrategy(4), cluster, SGD(0.3), eval_data=ds,
        )
        sync_summary = sync_trainer.run(max_steps=20)
        async_rate = async_summary.total_sim_time / async_summary.num_updates
        sync_rate = sync_summary.total_sim_time / sync_summary.num_steps
        assert async_rate < sync_rate
