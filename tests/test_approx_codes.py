"""Tests for the approximate gradient-coding baselines."""

import numpy as np
import pytest

from repro.codes import (
    LeastSquaresDecoder,
    StochasticSumDecoder,
    l2_gradient_error,
    placement_matrix,
)
from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    SummationCode,
    decoder_for,
)
from repro.exceptions import CodingError


def _payloads(placement, seed=0, dim=6):
    rng = np.random.default_rng(seed)
    grads = {p: rng.normal(size=dim) for p in range(placement.num_workers)}
    return grads, SummationCode(placement).encode(grads)


class TestPlacementMatrix:
    def test_row_support_matches_partitions(self):
        placement = CyclicRepetition(5, 2)
        b = placement_matrix(placement)
        for worker in range(5):
            support = set(np.flatnonzero(b[worker]))
            assert support == set(placement.partitions_of(worker))

    def test_row_sums_equal_c(self):
        b = placement_matrix(FractionalRepetition(6, 3))
        np.testing.assert_allclose(b.sum(axis=1), 3.0)

    def test_column_sums_equal_c(self):
        b = placement_matrix(CyclicRepetition(6, 3))
        np.testing.assert_allclose(b.sum(axis=0), 3.0)


class TestLeastSquaresDecoder:
    def test_exact_when_full_recovery_possible(self):
        """With enough non-conflicting coverage the LS solution is exact."""
        placement = CyclicRepetition(6, 2)
        grads, payloads = _payloads(placement)
        result = LeastSquaresDecoder(placement).decode(range(6), payloads)
        assert result.is_exact
        np.testing.assert_allclose(
            result.estimate, sum(grads.values()), atol=1e-8
        )
        assert result.deviation == pytest.approx(0.0, abs=1e-8)

    def test_single_worker_estimate(self):
        placement = CyclicRepetition(4, 2)
        grads, payloads = _payloads(placement)
        result = LeastSquaresDecoder(placement).decode([0], payloads)
        assert not result.is_exact
        assert result.deviation > 0

    def test_l2_error_decreases_with_more_workers(self):
        placement = CyclicRepetition(8, 2)
        grads, payloads = _payloads(placement, seed=3)
        dec = LeastSquaresDecoder(placement)
        err_small = l2_gradient_error(dec.decode([0], payloads), grads)
        err_big = l2_gradient_error(
            dec.decode([0, 2, 4, 6], payloads), grads
        )
        assert err_big < err_small

    def test_deviation_at_least_isgc_implied(self):
        """IS-GC's decode is a feasible LS solution (0/1 weights), so the
        LS optimum's coefficient deviation can't exceed IS-GC's."""
        placement = CyclicRepetition(5, 2)
        grads, payloads = _payloads(placement, seed=4)
        available = [0, 1, 2]
        ls = LeastSquaresDecoder(placement).decode(available, payloads)
        isgc = decoder_for(placement, rng=np.random.default_rng(0)).decode(available)
        # IS-GC coefficient vector: 1 on recovered, 0 elsewhere.
        v = np.zeros(5)
        for p in isgc.recovered_partitions:
            v[p] = 1.0
        isgc_dev = float(np.linalg.norm(v - 1.0))
        assert ls.deviation <= isgc_dev + 1e-9

    def test_empty_available_raises(self):
        placement = CyclicRepetition(4, 2)
        _, payloads = _payloads(placement)
        with pytest.raises(CodingError):
            LeastSquaresDecoder(placement).decode([], payloads)

    def test_missing_payload_raises(self):
        placement = CyclicRepetition(4, 2)
        with pytest.raises(CodingError):
            LeastSquaresDecoder(placement).decode([0], {})


class TestStochasticSumDecoder:
    def test_full_availability_exact(self):
        """With every worker present each partition is covered exactly c
        times, so the rescaled sum is the exact full gradient."""
        placement = CyclicRepetition(6, 3)
        grads, payloads = _payloads(placement)
        result = StochasticSumDecoder(placement).decode(range(6), payloads)
        np.testing.assert_allclose(
            result.estimate, sum(grads.values()), atol=1e-9
        )
        assert result.is_exact

    def test_unbiased_over_uniform_availability(self):
        """E[ĝ] over uniform size-w subsets equals the full gradient."""
        placement = CyclicRepetition(6, 2)
        grads, payloads = _payloads(placement, seed=5)
        dec = StochasticSumDecoder(placement)
        rng = np.random.default_rng(0)
        w = 3
        acc = np.zeros(6)
        trials = 4000
        for _ in range(trials):
            avail = rng.choice(6, size=w, replace=False).tolist()
            acc += dec.decode(avail, payloads).estimate
        full = sum(grads.values())
        np.testing.assert_allclose(acc / trials, full, atol=0.15)

    def test_partial_availability_inexact(self):
        placement = CyclicRepetition(6, 2)
        _, payloads = _payloads(placement)
        result = StochasticSumDecoder(placement).decode([0, 1], payloads)
        assert not result.is_exact

    def test_empty_raises(self):
        placement = CyclicRepetition(4, 2)
        _, payloads = _payloads(placement)
        with pytest.raises(CodingError):
            StochasticSumDecoder(placement).decode([], payloads)


class TestComparisonWithISGC:
    def test_ls_beats_stochastic_sum_in_deviation(self):
        """The LS combiner is optimal among linear decoders, so its
        coefficient deviation is a lower bound for the rescaled sum."""
        placement = CyclicRepetition(8, 2)
        grads, payloads = _payloads(placement, seed=6)
        rng = np.random.default_rng(1)
        for _ in range(30):
            w = int(rng.integers(1, 9))
            avail = rng.choice(8, size=w, replace=False).tolist()
            ls = LeastSquaresDecoder(placement).decode(avail, payloads)
            ss = StochasticSumDecoder(placement).decode(avail, payloads)
            assert ls.deviation <= ss.deviation + 1e-9
