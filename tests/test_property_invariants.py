"""Cross-module property-based tests (hypothesis).

These check the library-wide invariants that individual unit tests
can't cover exhaustively: linearity of the coding layer, placement
symmetries, recovery monotonicity, and policy laws.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    HybridRepetition,
    SummationCode,
    alpha_lower_bound,
    alpha_upper_bound,
    conflict_graph,
    decoder_for,
    hr_alpha_bounds,
)
from repro.graphs import independence_number
from repro.simulation import DeadlinePolicy, WaitForK


# ----------------------------------------------------------------------
# Hypothesis strategies for placements
# ----------------------------------------------------------------------
@st.composite
def cr_placements(draw, max_n=14):
    n = draw(st.integers(min_value=2, max_value=max_n))
    c = draw(st.integers(min_value=1, max_value=n))
    return CyclicRepetition(n, c)


@st.composite
def fr_placements(draw, max_n=12):
    n = draw(st.integers(min_value=2, max_value=max_n))
    divisors = [c for c in range(1, n + 1) if n % c == 0]
    c = draw(st.sampled_from(divisors))
    return FractionalRepetition(n, c)


@st.composite
def hr_placements(draw):
    params = draw(st.sampled_from([
        (8, 3, 1, 2), (8, 2, 2, 2), (8, 1, 3, 2), (12, 3, 1, 3),
        (12, 2, 2, 3), (16, 2, 2, 4), (10, 4, 1, 2), (12, 4, 0, 2),
    ]))
    return HybridRepetition(*params)


any_placement = st.one_of(cr_placements(), fr_placements(), hr_placements())


# ----------------------------------------------------------------------
# Coding linearity
# ----------------------------------------------------------------------
class TestCodingLinearity:
    @given(cr_placements(max_n=10), st.integers(min_value=0, max_value=999))
    @settings(max_examples=50, deadline=None)
    def test_encode_is_linear(self, placement, seed):
        """encode(a·g + b·h) == a·encode(g) + b·encode(h) per worker."""
        rng = np.random.default_rng(seed)
        n = placement.num_workers
        code = SummationCode(placement)
        g = {p: rng.normal(size=4) for p in range(n)}
        h = {p: rng.normal(size=4) for p in range(n)}
        a, b = 2.5, -1.25
        combined = {p: a * g[p] + b * h[p] for p in range(n)}
        enc_combined = code.encode(combined)
        enc_g = code.encode(g)
        enc_h = code.encode(h)
        for w in range(n):
            np.testing.assert_allclose(
                enc_combined[w], a * enc_g[w] + b * enc_h[w], atol=1e-9
            )

    @given(cr_placements(max_n=10), st.integers(min_value=0, max_value=999))
    @settings(max_examples=50, deadline=None)
    def test_zero_gradients_encode_to_zero(self, placement, seed):
        n = placement.num_workers
        code = SummationCode(placement)
        payloads = code.encode({p: np.zeros(3) for p in range(n)})
        for w in range(n):
            np.testing.assert_array_equal(payloads[w], np.zeros(3))


# ----------------------------------------------------------------------
# Placement symmetries
# ----------------------------------------------------------------------
class TestPlacementSymmetry:
    @given(cr_placements())
    @settings(max_examples=60, deadline=None)
    def test_cr_is_rotation_invariant(self, placement):
        """Shifting every worker index by 1 permutes partitions by 1."""
        n = placement.num_workers
        for worker in range(n):
            shifted = {
                (p + 1) % n for p in placement.partitions_of(worker)
            }
            assert shifted == set(placement.partitions_of((worker + 1) % n))

    @given(any_placement)
    @settings(max_examples=60, deadline=None)
    def test_conflict_is_symmetric(self, placement):
        n = placement.num_workers
        for a in range(n):
            for b in range(n):
                assert placement.conflicts(a, b) == placement.conflicts(b, a)

    @given(any_placement)
    @settings(max_examples=60, deadline=None)
    def test_replication_is_exactly_c(self, placement):
        for p in range(placement.num_partitions):
            assert len(placement.workers_of(p)) == placement.partitions_per_worker


# ----------------------------------------------------------------------
# Decoding monotonicity and bounds
# ----------------------------------------------------------------------
class TestDecodingLaws:
    @given(
        any_placement,
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=80, deadline=None)
    def test_alpha_within_bounds_on_random_subsets(self, placement, seed):
        """FR/CR use the printed Theorem 10/11 bounds; HR uses the
        corrected group-aware bounds (the printed ones fail for HR with
        n0 > c — see TestTheorem10HREdgeCase)."""
        rng = np.random.default_rng(seed)
        n = placement.num_workers
        c = placement.partitions_per_worker
        w = int(rng.integers(1, n + 1))
        subset = rng.choice(n, size=w, replace=False).tolist()
        alpha = independence_number(conflict_graph(placement).subgraph(subset))
        if isinstance(placement, HybridRepetition):
            lo, hi = hr_alpha_bounds(
                n, placement.c1, placement.c2, placement.num_groups, w
            )
        else:
            lo, hi = alpha_lower_bound(n, c, w), alpha_upper_bound(n, c, w)
        assert lo <= alpha <= hi

    @given(
        cr_placements(max_n=12),
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=60, deadline=None)
    def test_recovery_monotone_under_set_growth(self, placement, seed):
        """Adding an available worker never shrinks optimal recovery."""
        rng = np.random.default_rng(seed)
        n = placement.num_workers
        w = int(rng.integers(1, n))
        subset = set(rng.choice(n, size=w, replace=False).tolist())
        extra = int(rng.choice(sorted(set(range(n)) - subset)))
        decoder = decoder_for(placement, rng=rng)
        small = decoder.decode(sorted(subset)).num_recovered
        big = decoder.decode(sorted(subset | {extra})).num_recovered
        assert big >= small

    @given(
        any_placement,
        st.integers(min_value=0, max_value=999),
    )
    @settings(max_examples=60, deadline=None)
    def test_decode_idempotent_given_same_rng_state(self, placement, seed):
        n = placement.num_workers
        rng = np.random.default_rng(seed)
        w = int(rng.integers(1, n + 1))
        subset = sorted(rng.choice(n, size=w, replace=False).tolist())
        a = decoder_for(placement, rng=np.random.default_rng(seed)).decode(subset)
        b = decoder_for(placement, rng=np.random.default_rng(seed)).decode(subset)
        assert a.selected_workers == b.selected_workers


# ----------------------------------------------------------------------
# Policy laws
# ----------------------------------------------------------------------
class TestPolicyLaws:
    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=15),
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=16,
        ),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=100, deadline=None)
    def test_wait_k_accepts_exactly_k_fastest(self, arrivals, k):
        if k > len(arrivals):
            return
        outcome = WaitForK(k).wait(arrivals, step=0)
        assert len(outcome.accepted_workers) == k
        accepted_times = [arrivals[w] for w in outcome.accepted_workers]
        rejected_times = [
            arrivals[w] for w in arrivals if w not in outcome.accepted_workers
        ]
        if rejected_times:
            assert max(accepted_times) <= min(rejected_times)
        assert outcome.proceed_time == pytest.approx(max(accepted_times))

    @given(
        st.dictionaries(
            st.integers(min_value=0, max_value=15),
            st.floats(min_value=0.0, max_value=100.0,
                      allow_nan=False, allow_infinity=False),
            min_size=1, max_size=16,
        ),
        st.floats(min_value=0.0, max_value=120.0,
                  allow_nan=False, allow_infinity=False),
    )
    @settings(max_examples=100, deadline=None)
    def test_deadline_never_accepts_late_arrivals_beyond_first(
        self, arrivals, deadline
    ):
        outcome = DeadlinePolicy(deadline).wait(arrivals, step=0)
        assert outcome.accepted_workers
        late = [w for w in outcome.accepted_workers if arrivals[w] > deadline]
        # Only the nobody-made-it fallback may accept one late worker.
        assert len(late) <= 1
        if late:
            assert len(outcome.accepted_workers) == 1
