"""Tests for hybrid repetition (HR) — Sec. VI of the paper."""

import pytest

from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    HybridRepetition,
    conflict_graph,
)
from repro.exceptions import PlacementError

from conftest import all_hr_params


class TestConstruction:
    def test_paper_fig13_settings(self):
        """HR(8, c1, 4-c1) with g=2 — the Fig. 13 sweep."""
        for c1 in range(0, 5):
            HybridRepetition(8, c1, 4 - c1, 2)

    def test_c_partitions_per_worker(self):
        pl = HybridRepetition(8, 2, 2, 2)
        assert pl.partitions_per_worker == 4
        for w in range(8):
            assert len(set(pl.partitions_of(w))) == 4

    def test_group_accessors(self):
        pl = HybridRepetition(8, 2, 2, 2)
        assert pl.num_groups == 2
        assert pl.group_size == 4
        assert pl.group_of(0) == 0
        assert pl.group_of(7) == 1
        assert pl.workers_in_group(1) == (4, 5, 6, 7)

    def test_group_bounds(self):
        pl = HybridRepetition(8, 2, 2, 2)
        with pytest.raises(PlacementError):
            pl.group_of(8)
        with pytest.raises(PlacementError):
            pl.workers_in_group(2)

    def test_properties(self):
        pl = HybridRepetition(8, 3, 1, 2)
        assert pl.c1 == 3
        assert pl.c2 == 1
        assert "HybridRepetition" in repr(pl)


class TestValidation:
    def test_negative_c1(self):
        with pytest.raises(PlacementError):
            HybridRepetition(8, -1, 2, 2)

    def test_g_must_divide_n(self):
        with pytest.raises(PlacementError, match="g \\| n"):
            HybridRepetition(8, 1, 1, 3)

    def test_c_above_group_size(self):
        # n0 = 4, c = 5 with c1 > 0 is invalid.
        with pytest.raises(PlacementError):
            HybridRepetition(8, 3, 2, 2)

    def test_theorem6_completeness_bound(self):
        # n=12, g=2 → n0=6; c=3, c1=1: n0 > c + c1 = 4 violates Thm 6.
        with pytest.raises(PlacementError, match="Theorem 6"):
            HybridRepetition(12, 1, 2, 2)

    def test_theorem6_boundary_allowed(self):
        # n0 = c + c1 exactly: 6 = 4 + 2.
        HybridRepetition(12, 2, 2, 2)


class TestEndpoints:
    """HR generalizes FR and CR (Sec. VI-B)."""

    @pytest.mark.parametrize("n,c,g", [(8, 4, 2), (12, 3, 4), (6, 2, 3)])
    def test_c1_zero_is_cr_placement(self, n, c, g):
        hr = HybridRepetition(n, 0, c, g)
        cr = CyclicRepetition(n, c)
        for w in range(n):
            assert set(hr.partitions_of(w)) == set(cr.partitions_of(w))

    @pytest.mark.parametrize("n,c", [(8, 4), (12, 3), (6, 2), (12, 4)])
    def test_c2_zero_with_n0_eq_c_is_fr(self, n, c):
        hr = HybridRepetition(n, c, 0, n // c)
        fr = FractionalRepetition(n, c)
        for w in range(n):
            assert set(hr.partitions_of(w)) == set(fr.partitions_of(w))

    @pytest.mark.parametrize("n,c", [(8, 4), (12, 3), (6, 2)])
    def test_hr_c_0_equals_hr_cminus1_1(self, n, c):
        """Paper: HR(n,c,0) ≡ HR(n,c-1,1) when n0 = c."""
        a = HybridRepetition(n, c, 0, n // c)
        b = HybridRepetition(n, c - 1, 1, n // c)
        for w in range(n):
            assert set(a.partitions_of(w)) == set(b.partitions_of(w))

    def test_g_one_is_cr_conflict(self):
        hr = HybridRepetition(6, 2, 1, 1)
        cr = CyclicRepetition(6, 3)
        assert conflict_graph(hr) == conflict_graph(cr)


class TestConflictPredicate:
    @pytest.mark.parametrize("n,c1,c2,g", list(all_hr_params()))
    def test_fast_matches_ground_truth(self, n, c1, c2, g):
        """Alg. 4 (corrected) is exact over the whole valid grid."""
        pl = HybridRepetition(n, c1, c2, g)
        for a in range(n):
            for b in range(n):
                assert pl.conflicts_fast(a, b) == pl.conflicts(a, b), (
                    f"HR({n},{c1},{c2},g={g}) workers {a},{b}"
                )

    def test_within_group_complete_in_general_case(self):
        """Theorem 6: all same-group pairs conflict when c1, c2 > 0."""
        pl = HybridRepetition(8, 2, 2, 2)
        for g in range(2):
            members = pl.workers_in_group(g)
            for a in members:
                for b in members:
                    if a != b:
                        assert pl.conflicts(a, b)

    def test_non_adjacent_groups_never_conflict(self):
        pl = HybridRepetition(16, 3, 1, 4)
        for a in pl.workers_in_group(0):
            for b in pl.workers_in_group(2):
                assert not pl.conflicts(a, b)


class TestTheorem7:
    """Edge nesting: E_HR(n,c,0) ⊆ E_HR(n,c-1,1) ⊆ … ⊆ E_HR(n,n0-c,2c-n0)."""

    @pytest.mark.parametrize("n,c,g", [(8, 4, 2), (12, 3, 4), (12, 4, 3), (16, 4, 4)])
    def test_nesting(self, n, c, g):
        n0 = n // g
        prev_edges = None
        for c1 in range(c, max(n0 - c, 0) - 1, -1):
            try:
                graph = conflict_graph(HybridRepetition(n, c1, c - c1, g))
            except PlacementError:
                continue
            if prev_edges is not None:
                assert prev_edges <= graph.edges, f"c1={c1}"
            prev_edges = graph.edges

    def test_fr_edges_subset_of_cr_edges(self):
        """Corollary: E_FR(n,c) ⊆ E_CR(n,c) through the HR spectrum."""
        fr = conflict_graph(FractionalRepetition(8, 4))
        cr = conflict_graph(CyclicRepetition(8, 4))
        assert fr.edges <= cr.edges
