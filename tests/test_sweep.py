"""Tests for the generic parameter-sweep utility."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.sweep import Sweep, SweepPoint


class TestSweep:
    def test_size_and_combinations(self):
        sweep = Sweep("s", {"a": (1, 2), "b": ("x", "y", "z")})
        assert sweep.size == 6
        combos = list(sweep.combinations())
        assert len(combos) == 6
        assert combos[0] == {"a": 1, "b": "x"}
        assert combos[-1] == {"a": 2, "b": "z"}

    def test_run_evaluates_all_points(self):
        sweep = Sweep("s", {"a": (1, 2, 3)})
        points = sweep.run(lambda a: a * 10)
        assert [p.value for p in points] == [10, 20, 30]
        assert all(p.ok for p in points)

    def test_errors_captured_not_raised(self):
        sweep = Sweep("s", {"a": (1, 0, 2)})
        points = sweep.run(lambda a: 1 // a)
        assert points[0].ok and points[2].ok
        assert not points[1].ok
        assert "division" in points[1].error

    def test_strict_mode_raises(self):
        sweep = Sweep("s", {"a": (0,)})
        with pytest.raises(ZeroDivisionError):
            sweep.run(lambda a: 1 // a, strict=True)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            Sweep("s", {})
        with pytest.raises(ConfigurationError):
            Sweep("s", {"a": ()})

    def test_point_ok_property(self):
        assert SweepPoint(params={}, value=1).ok
        assert not SweepPoint(params={}, value=None, error="boom").ok

    def test_error_preserves_full_traceback(self):
        def boom(a):
            raise ValueError(f"bad corner a={a}")

        points = Sweep("s", {"a": (7,)}).run(boom)
        assert not points[0].ok
        assert "Traceback (most recent call last)" in points[0].error
        # The frame that failed survives, not just str(exc).
        assert "in boom" in points[0].error
        assert points[0].error_summary == "ValueError: bad corner a=7"

    def test_error_summary(self):
        assert SweepPoint(params={}, value=1).error_summary is None
        point = SweepPoint(
            params={}, value=None,
            error="Traceback ...\n  File x, line 1\nKeyError: 'k'\n",
        )
        assert point.error_summary == "KeyError: 'k'"

    def test_table_cell_uses_error_summary(self):
        sweep = Sweep("s", {"a": (0,)})
        sweep.run(lambda a: 1 // a)
        text = sweep.to_table().render()
        assert "ZeroDivisionError" in text
        assert "Traceback" not in text


class TestTables:
    def test_long_table(self):
        sweep = Sweep("title", {"a": (1, 2)})
        sweep.run(lambda a: a + 0.5)
        table = sweep.to_table("result")
        text = table.render()
        assert "title" in text and "result" in text and "2.5" in text

    def test_long_table_requires_run(self):
        sweep = Sweep("s", {"a": (1,)})
        with pytest.raises(ConfigurationError):
            sweep.to_table()

    def test_grid_table(self):
        sweep = Sweep("grid", {"r": (1, 2), "c": (10, 20)})
        sweep.run(lambda r, c: r * c)
        table = sweep.to_grid_table("r", "c")
        text = table.render()
        assert "r \\ c" in text
        assert "40" in text

    def test_grid_table_axis_mismatch(self):
        sweep = Sweep("grid", {"r": (1,), "c": (2,), "z": (3,)})
        sweep.run(lambda r, c, z: 0)
        with pytest.raises(ConfigurationError):
            sweep.to_grid_table("r", "c")

    def test_grid_table_shows_errors(self):
        sweep = Sweep("grid", {"r": (0, 1), "c": (1,)})
        sweep.run(lambda r, c: c // r)
        text = sweep.to_grid_table("r", "c").render()
        assert "err" in text

    def test_sweep_used_with_real_recovery(self):
        from repro.analysis import expected_recovered_exact
        from repro.core import CyclicRepetition

        sweep = Sweep("recovery", {"c": (1, 2), "w": (2, 4)})
        sweep.run(
            lambda c, w: expected_recovered_exact(CyclicRepetition(4, c), w)
        )
        values = {tuple(p.params.values()): p.value for p in sweep.points}
        assert values[(1, 4)] == pytest.approx(4.0)
        assert values[(2, 4)] == pytest.approx(4.0)
        assert values[(2, 2)] > values[(1, 2)]
