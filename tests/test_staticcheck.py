"""Tests for :mod:`repro.staticcheck` — the rule engine and every rule.

Each rule family gets at least one minimal offending snippet asserted
to be caught, and a clean twin asserted clean; the fixtures are inline
strings so the full-repo run (also asserted clean here) never trips
over them.
"""

import pathlib
import textwrap

import pytest

from repro.staticcheck import (
    RULE_REGISTRY,
    StaticCheckError,
    check_source,
    check_spec_mapping,
    noqa_map,
    run_check,
    spec_feasibility_problems,
)

REPO = pathlib.Path(__file__).resolve().parent.parent

ENGINE_PATH = "src/repro/engine/somemodule.py"
SIM_PATH = "src/repro/simulation/somemodule.py"


def rules_of(findings):
    return [f.rule for f in findings]


def check(source, scope_path="src/repro/engine/mod.py", **kw):
    return check_source(textwrap.dedent(source), scope_path=scope_path, **kw)


# ----------------------------------------------------------------------
# Registry / engine mechanics


class TestEngine:
    def test_all_rule_families_registered(self):
        families = {rule_id[:3] for rule_id in RULE_REGISTRY}
        assert {"DET", "TIME"[:3], "REG", "SPE"} <= families

    def test_syntax_error_is_a_finding(self):
        findings = check_source("def broken(:\n")
        assert rules_of(findings) == ["GEN001"]

    def test_clean_snippet_is_clean(self):
        findings = check(
            """
            import numpy as np

            def f(seed):
                rng = np.random.default_rng(seed)
                return rng.standard_normal(4)
            """
        )
        assert findings == []

    def test_select_restricts_rules(self):
        src = "import numpy as np\nx = np.random.randn(3)\n"
        assert rules_of(check(src, select={"DET001"})) == ["DET001"]
        assert check(src, select={"TIME001"}) == []

    def test_noqa_map_parses_variants(self):
        src = (
            "a = 1  # repro: noqa\n"
            "b = 2  # repro: noqa[DET001]\n"
            "c = 3  # repro: noqa[DET001, TIME002]\n"
            "d = 4\n"
        )
        m = noqa_map(src)
        assert m[1] is None
        assert m[2] == {"DET001"}
        assert m[3] == {"DET001", "TIME002"}
        assert 4 not in m

    def test_noqa_suppresses_matching_rule_only(self):
        caught = check(
            "import numpy as np\n"
            "x = np.random.randn(3)  # repro: noqa[TIME001]\n"
        )
        assert rules_of(caught) == ["DET001"]
        clean = check(
            "import numpy as np\n"
            "x = np.random.randn(3)  # repro: noqa[DET001]\n"
        )
        assert clean == []

    def test_unknown_select_rule_is_usage_error(self):
        with pytest.raises(StaticCheckError):
            run_check([str(REPO / "src" / "repro" / "cli.py")],
                      select=["NOPE999"])

    def test_missing_path_is_usage_error(self):
        with pytest.raises(StaticCheckError):
            run_check([str(REPO / "does-not-exist")])


# ----------------------------------------------------------------------
# Determinism rules


class TestDeterminismRules:
    def test_det001_np_random_module_call(self):
        findings = check("import numpy as np\nx = np.random.randn(3)\n")
        assert "DET001" in rules_of(findings)

    def test_det001_full_numpy_name(self):
        findings = check("import numpy\nx = numpy.random.shuffle([1])\n")
        assert "DET001" in rules_of(findings)

    def test_det001_stdlib_random(self):
        findings = check("import random\nx = random.choice([1, 2])\n")
        assert "DET001" in rules_of(findings)

    def test_det001_from_import(self):
        findings = check("from numpy.random import randn\n")
        assert "DET001" in rules_of(findings)

    def test_det001_ignores_methods_on_generators(self):
        findings = check(
            """
            import numpy as np
            rng = np.random.default_rng(0)
            x = rng.choice([1, 2])
            """
        )
        assert findings == []

    def test_det001_ignores_stdlib_names_without_import(self):
        # `random` here is somebody's object, not the stdlib module.
        findings = check("x = obj.random.choice([1])\n")
        assert findings == []

    def test_det002_wall_clock_in_core_scope(self):
        src = "import time\nt = time.time()\n"
        assert rules_of(check(src)) == ["DET002"]
        # ...but not outside the deterministic core.
        assert check(src, scope_path="examples/demo.py") == []

    def test_det002_datetime_now(self):
        src = "import datetime\nt = datetime.datetime.now()\n"
        assert rules_of(check(src)) == ["DET002"]

    def test_det003_unseeded_default_rng(self):
        src = "import numpy as np\nrng = np.random.default_rng()\n"
        assert rules_of(check(src)) == ["DET003"]
        # DET003 covers the whole library plus runnable docs/examples
        # (the --fix target); unrelated scripts stay out of scope.
        assert rules_of(
            check(src, scope_path="examples/demo.py")
        ) == ["DET003"]
        assert check(src, scope_path="scripts/demo.py") == []

    def test_det003_seeded_is_fine(self):
        assert check(
            "import numpy as np\nrng = np.random.default_rng(0)\n"
        ) == []

    def test_det004_list_of_set(self):
        findings = check("order = list(set(workers))\n")
        assert rules_of(findings) == ["DET004"]

    def test_det004_for_over_set(self):
        findings = check("for w in set(workers):\n    pass\n")
        assert rules_of(findings) == ["DET004"]

    def test_det004_listdir_unsorted_vs_sorted(self):
        assert rules_of(
            check("import os\nnames = os.listdir('.')\n")
        ) == ["DET004"]
        assert check("import os\nnames = sorted(os.listdir('.'))\n") == []

    def test_det004_sorted_set_is_fine(self):
        assert check("order = sorted(set(workers))\n") == []


# ----------------------------------------------------------------------
# Time-unit rules


class TestTimeUnitRules:
    def test_time001_comparison_mixing_origins(self):
        findings = check(
            "if proceed_time <= step_end:\n    pass\n", scope_path=SIM_PATH
        )
        assert rules_of(findings) == ["TIME001"]

    def test_time001_adding_two_absolutes(self):
        findings = check("t = step_start + step_end\n", scope_path=SIM_PATH)
        assert rules_of(findings) == ["TIME001"]

    def test_time001_relative_minus_absolute(self):
        findings = check(
            "t = result.proceed_time - self.step_start\n",
            scope_path=SIM_PATH,
        )
        assert rules_of(findings) == ["TIME001"]

    def test_time001_cross_origin_assignment(self):
        findings = check(
            "step_end = outcome.proceed_time\n", scope_path=SIM_PATH
        )
        assert rules_of(findings) == ["TIME001"]

    def test_time001_sanctioned_conversions_clean(self):
        # absolute + relative -> absolute; absolute - absolute -> duration.
        assert check(
            "end = step_start + outcome.proceed_time\n"
            "duration = step_end - step_start\n",
            scope_path=SIM_PATH,
        ) == []

    def test_time001_out_of_scope(self):
        assert check(
            "t = step_start + step_end\n", scope_path="src/repro/core/x.py"
        ) == []

    def test_time002_undocumented_time_param(self):
        findings = check(
            """
            def wait(deadline):
                return deadline * 2
            """,
            scope_path=SIM_PATH,
        )
        assert rules_of(findings) == ["TIME002"]

    def test_time002_documented_in_function_docstring(self):
        assert check(
            '''
            def wait(deadline):
                """Block until ``deadline`` (step-relative seconds)."""
                return deadline * 2
            ''',
            scope_path=SIM_PATH,
        ) == []

    def test_time002_documented_in_class_docstring(self):
        assert check(
            '''
            class Policy:
                """Deadline is absolute simulated seconds."""

                def __init__(self, deadline):
                    self.deadline = deadline
            ''',
            scope_path=SIM_PATH,
        ) == []

    def test_time002_non_time_params_ignored(self):
        assert check(
            "def f(num_workers, fraction):\n    return num_workers\n",
            scope_path=SIM_PATH,
        ) == []

    def test_time003_wallclock_read_in_serve(self):
        findings = check(
            "import time\nstamp = time.monotonic()\n",
            scope_path="src/repro/serve/coordinator.py",
        )
        assert rules_of(findings) == ["TIME003"]

    def test_time003_loop_time_in_serve(self):
        findings = check(
            "def quantum(loop):\n    return loop.time()\n",
            scope_path="src/repro/serve/coordinator.py",
        )
        assert rules_of(findings) == ["TIME003"]

    def test_time003_from_import(self):
        findings = check(
            "from time import perf_counter\n",
            scope_path="src/repro/straggler/delays.py",
        )
        assert rules_of(findings) == ["TIME003"]

    def test_time003_engine_is_det002_territory(self):
        # The deterministic core is DET002's beat; TIME003 covers the
        # complement, so exactly one rule fires per wall-clock read.
        findings = check(
            "import time\nt = time.time()\n",
            scope_path="src/repro/engine/core.py",
        )
        assert "TIME003" not in rules_of(findings)

    def test_time003_datetime_now(self):
        findings = check(
            "import datetime\nt = datetime.now()\n",
            scope_path="src/repro/obs/tracer.py",
        )
        assert rules_of(findings) == ["TIME003"]

    def test_time003_sleep_is_sanctioned(self):
        # Sleeping paces execution; it produces no value that could
        # contaminate a simulated-time result.
        assert check(
            "import time\nfrom time import sleep\n\n"
            "def pace():\n    time.sleep(0.01)\n",
            scope_path="src/repro/serve/coordinator.py",
        ) == []

    def test_time003_mailbox_is_sanctioned(self):
        assert check(
            "import time\ndeadline = time.monotonic() + 5\n",
            scope_path="src/repro/serve/mailbox.py",
        ) == []

    def test_time003_out_of_scope(self):
        assert check(
            "import time\nstamp = time.time()\n",
            scope_path="src/repro/cli/serve.py",
        ) == []


# ----------------------------------------------------------------------
# Registry-hygiene rules


class TestRegistryRules:
    def test_reg001_direct_strategy_construction(self):
        findings = check(
            "s = ISGCStrategy(placement, wait_for=2)\n",
            scope_path="src/repro/experiments/foo.py",
        )
        assert rules_of(findings) == ["REG001"]

    def test_reg001_factories_and_examples_exempt(self):
        src = "s = ISGCStrategy(placement, wait_for=2)\n"
        assert check(src, scope_path="src/repro/engine/spec.py") == []
        assert check(src, scope_path="examples/demo.py") == []

    def test_reg001_own_class_exempt(self):
        assert check(
            """
            class MyStrategy:
                pass

            s = MyStrategy()
            """,
            scope_path="src/repro/experiments/foo.py",
        ) == []

    def test_reg002_direct_backend_construction(self):
        findings = check(
            "b = FlatBackend(cluster)\n",
            scope_path="src/repro/experiments/foo.py",
        )
        assert rules_of(findings) == ["REG002"]

    def test_reg002_shim_layer_exempt(self):
        assert check(
            "b = FlatBackend(cluster)\n",
            scope_path="src/repro/training/trainer.py",
        ) == []

    def test_reg004_direct_placement_construction(self):
        findings = check(
            "p = CyclicRepetition(8, 2)\n",
            scope_path="src/repro/experiments/foo.py",
        )
        assert rules_of(findings) == ["REG004"]
        assert "make_placement" in findings[0].message

    def test_reg004_explicit_table_construction(self):
        findings = check(
            "p = ExplicitPlacement({0: (0,), 1: (1,)})\n",
            scope_path="src/repro/analysis/foo.py",
        )
        assert rules_of(findings) == ["REG004"]

    def test_reg004_registry_layer_and_substrate_exempt(self):
        src = "p = FractionalRepetition(8, 2)\n"
        assert check(src, scope_path="src/repro/core/scheme.py") == []
        assert check(src, scope_path="src/repro/core/conflict.py") == []
        assert check(src, scope_path="tests/test_foo.py") == []

    def test_reg004_own_class_exempt(self):
        assert check(
            """
            class MyPlacement:
                pass

            p = MyPlacement()
            """,
            scope_path="src/repro/experiments/foo.py",
        ) == []

    def test_reg005_direct_delay_construction(self):
        findings = check(
            "m = ExponentialDelay(1.5)\n",
            scope_path="src/repro/experiments/foo.py",
        )
        assert rules_of(findings) == ["REG005"]
        assert "make_delay_model" in findings[0].message

    def test_reg005_direct_failure_and_network_construction(self):
        findings = check(
            "f = TransientDropouts(0.1)\nn = NetworkModel()\n",
            scope_path="src/repro/engine/foo.py",
        )
        assert rules_of(findings) == ["REG005", "REG005"]

    def test_reg005_defining_packages_and_registry_exempt(self):
        src = "m = ExponentialDelay(1.5)\n"
        assert check(src, scope_path="src/repro/straggler/models.py") == []
        assert check(src, scope_path="src/repro/simulation/cluster.py") == []
        assert check(src, scope_path="src/repro/env/registry.py") == []
        assert check(src, scope_path="tests/test_foo.py") == []
        assert check(src, scope_path="examples/demo.py") == []

    def test_reg005_own_class_exempt(self):
        assert check(
            """
            class NoDelay:
                pass

            m = NoDelay()
            """,
            scope_path="src/repro/experiments/foo.py",
        ) == []

    def test_reg005_noqa_opt_out(self):
        assert check(
            "m = ExponentialDelay(1.5)  # repro: noqa[REG005] doc example\n",
            scope_path="src/repro/experiments/foo.py",
        ) == []

    def test_reg005_class_list_matches_env_registry(self):
        """Every registry-buildable class name is policed, and the rule's
        table names no class the env registry cannot build."""
        from repro.env import ENV_REGISTRY
        from repro.staticcheck.registries import ENV_MODEL_CLASSES

        buildable = set()
        for families in ENV_REGISTRY.values():
            for family in families.values():
                try:
                    model = family.build()
                except Exception:
                    continue  # requires parameters; class named below
                if model is not None:
                    buildable.add(type(model).__name__)
        assert buildable <= ENV_MODEL_CLASSES

    def test_reg003_scheme_factory_missing_kwargs(self):
        findings = check(
            """
            @register_scheme("toy")
            def make_toy(*, num_workers, wait_for=None, rng=None):
                return object()
            """
        )
        assert rules_of(findings) == ["REG003"]

    def test_reg003_scheme_factory_missing_num_workers(self):
        findings = check(
            """
            @register_scheme("toy")
            def make_toy(**params):
                return object()
            """
        )
        assert rules_of(findings) == ["REG003"]

    def test_reg003_conforming_factory_clean(self):
        assert check(
            """
            @register_scheme("toy")
            def make_toy(*, num_workers, partitions_per_worker=1,
                         wait_for=None, rng=None, **params):
                return object()
            """
        ) == []

    def test_reg003_backend_factory_arity(self):
        findings = check(
            """
            @register_backend("toy")
            def make_backend():
                return object()
            """
        )
        assert rules_of(findings) == ["REG003"]


# ----------------------------------------------------------------------
# Spec feasibility


def base_spec(**over):
    spec = {
        "name": "t", "scheme": "is-gc-cr", "num_workers": 8,
        "partitions_per_worker": 2, "wait_for": 4,
    }
    spec.update(over)
    return spec


class TestSpecFeasibility:
    def test_feasible_cr_spec_clean(self):
        assert spec_feasibility_problems(base_spec()) == []

    def test_cr_with_c_equal_n_rejected_citing_constraint(self):
        problems = spec_feasibility_problems(
            base_spec(partitions_per_worker=8)
        )
        assert len(problems) == 1
        # The message must cite the violated constraint.
        assert "1 <= c < n" in problems[0]
        assert "Theorem 1" in problems[0]

    def test_fr_divisibility(self):
        problems = spec_feasibility_problems(
            base_spec(scheme="is-gc-fr", partitions_per_worker=3)
        )
        assert any("c | n" in p for p in problems)

    def test_hr_missing_params(self):
        problems = spec_feasibility_problems(base_spec(scheme="is-gc-hr"))
        assert any("num_groups" in p for p in problems)

    def test_generic_isgc_defaults_to_cr(self):
        assert spec_feasibility_problems(base_spec(scheme="is-gc")) == []
        problems = spec_feasibility_problems(
            base_spec(scheme="is-gc", partitions_per_worker=8)
        )
        assert any("Theorem 1" in p for p in problems)

    def test_generic_isgc_routes_family_checks(self):
        problems = spec_feasibility_problems(base_spec(
            scheme="is-gc",
            scheme_params={"placement": "fr"},
            partitions_per_worker=3,
        ))
        assert any("c | n" in p for p in problems)

    def test_generic_isgc_hr_family_feasible(self):
        assert spec_feasibility_problems(base_spec(
            scheme="is-gc",
            scheme_params={
                "placement": "hr", "c1": 2, "c2": 1, "num_groups": 3,
            },
            num_workers=12,
            partitions_per_worker=3,
        )) == []

    def test_generic_isgc_unknown_family_did_you_mean(self):
        problems = spec_feasibility_problems(base_spec(
            scheme="is-gc", scheme_params={"placement": "cyclc"},
        ))
        assert len(problems) == 1
        assert "did you mean 'cyclic'" in problems[0]
        assert "registered families" in problems[0]

    def test_hr_group_divisibility(self):
        problems = spec_feasibility_problems(base_spec(
            scheme="is-gc-hr", num_workers=8, partitions_per_worker=3,
            scheme_params={"c1": 1, "c2": 2, "num_groups": 3},
        ))
        assert any("g | n" in p for p in problems)

    def test_hr_theorem6_completeness(self):
        # n0 = 6 > c + c1 = 3 + 1 violates within-group completeness.
        problems = spec_feasibility_problems(base_spec(
            scheme="is-gc-hr", num_workers=12, partitions_per_worker=3,
            scheme_params={"c1": 1, "c2": 2, "num_groups": 2},
        ))
        assert any("Theorem 6" in p for p in problems)

    def test_hr_partitions_mismatch(self):
        problems = spec_feasibility_problems(base_spec(
            scheme="is-gc-hr", num_workers=12, partitions_per_worker=1,
            scheme_params={"c1": 1, "c2": 2, "num_groups": 3},
        ))
        assert any("c1 + c2" in p for p in problems)

    def test_valid_hr_spec_clean(self):
        assert spec_feasibility_problems(base_spec(
            scheme="is-gc-hr", num_workers=12, partitions_per_worker=3,
            wait_for=6, scheme_params={"c1": 1, "c2": 2, "num_groups": 3},
        )) == []

    def test_wait_for_range(self):
        problems = spec_feasibility_problems(base_spec(wait_for=9))
        assert any("1 <= w <= n" in p for p in problems)

    def test_wait_for_required_for_waiting_schemes(self):
        problems = spec_feasibility_problems(base_spec(wait_for=None))
        assert any("wait_for" in p for p in problems)

    def test_sync_sgd_needs_no_wait_for(self):
        assert spec_feasibility_problems({
            "scheme": "sync-sgd", "num_workers": 4, "wait_for": None,
        }) == []

    def test_bad_num_workers(self):
        problems = spec_feasibility_problems(
            {"scheme": "sync-sgd", "num_workers": 0}
        )
        assert any("num_workers" in p for p in problems)

    def test_spec001_via_mapping(self):
        findings = check_spec_mapping(
            base_spec(partitions_per_worker=8), path="examples/specs/x.json"
        )
        assert rules_of(findings) == ["SPEC001"]

    def test_spec002_literal_in_example(self):
        findings = check(
            """
            spec = ExperimentSpec(
                name="x", scheme="is-gc-cr", num_workers=4,
                partitions_per_worker=4, wait_for=2,
            )
            """,
            scope_path="examples/demo.py",
        )
        assert rules_of(findings) == ["SPEC002"]

    def test_spec002_skips_unresolved_fields(self):
        # wait_for computed at runtime: no "missing wait_for" guess.
        assert check(
            """
            spec = ExperimentSpec(
                name="x", scheme="is-gc-cr", num_workers=8,
                partitions_per_worker=2, wait_for=pick_w(),
            )
            """,
            scope_path="examples/demo.py",
        ) == []

    def test_spec002_exempts_tests(self):
        assert check(
            """
            spec = ExperimentSpec(
                name="x", scheme="is-gc-cr", num_workers=4,
                partitions_per_worker=4, wait_for=2,
            )
            """,
            scope_path="tests/test_whatever.py",
        ) == []


# ----------------------------------------------------------------------
# PAR001: pool-boundary seed discipline


class TestParallelismRules:
    def test_submit_with_seed_arithmetic_flagged(self):
        findings = check(
            """
            from concurrent.futures import ProcessPoolExecutor

            def sweep(fn, seed, n):
                with ProcessPoolExecutor(4) as pool:
                    return [pool.submit(fn, seed + i) for i in range(n)]
            """,
            scope_path="src/repro/experiments/mod.py",
        )
        assert rules_of(findings) == ["PAR001"]

    def test_map_over_derived_seeds_flagged(self):
        findings = check(
            """
            from multiprocessing import Pool

            def sweep(fn, seed, n):
                with Pool(4) as pool:
                    return pool.map(fn, [seed * 1000 + i for i in range(n)])
            """,
            scope_path="examples/mod.py",
        )
        assert rules_of(findings) == ["PAR001"]

    def test_fork_context_counts_as_pool_usage(self):
        findings = check(
            """
            import multiprocessing as mp

            def sweep(fn, base_seed, n):
                ctx = mp.get_context("fork")
                pool = ctx.Pool(2)
                return pool.map_async(fn, [base_seed + i for i in range(n)])
            """
        )
        assert rules_of(findings) == ["PAR001"]

    def test_spawned_seed_sequences_are_clean(self):
        assert check(
            """
            import numpy as np
            from concurrent.futures import ProcessPoolExecutor

            def sweep(fn, seed, n):
                seeds = np.random.SeedSequence(seed).spawn(n)
                with ProcessPoolExecutor(4) as pool:
                    return [pool.submit(fn, s) for s in seeds]
            """
        ) == []

    def test_seed_sequence_wrapper_inside_dispatch_is_clean(self):
        # SeedSequence(seed + i) keeps derivation in SeedSequence space —
        # exactly the sanctioned fix, even written inline.
        assert check(
            """
            import numpy as np
            from concurrent.futures import ProcessPoolExecutor

            def sweep(fn, seed, n):
                with ProcessPoolExecutor(4) as pool:
                    return [
                        pool.submit(fn, np.random.SeedSequence(seed + i))
                        for i in range(n)
                    ]
            """
        ) == []

    def test_seed_arithmetic_without_pool_is_clean(self):
        # Serial seed offsets (the figure runners' trial_seed pattern)
        # are fine: no pool boundary, no stream-independence hazard.
        assert check(
            """
            def trials(fn, seed, n):
                return [fn(seed + 1000 * trial) for trial in range(n)]
            """
        ) == []

    def test_noqa_suppresses_par001(self):
        findings = check(
            """
            from concurrent.futures import ProcessPoolExecutor

            def sweep(fn, seed, n):
                with ProcessPoolExecutor(4) as pool:
                    return [pool.submit(fn, seed + i) for i in range(n)]  # repro: noqa[PAR001]
            """
        )
        assert findings == []


# ----------------------------------------------------------------------
# Checkpoint-coverage rule

ENGINE_PATH = "src/repro/engine/core.py"
RULES_PATH = "src/repro/engine/rules.py"
BACKENDS_PATH = "src/repro/engine/backends.py"


class TestCheckpointRule:
    def test_ckpt001_uncovered_engine_attribute(self):
        findings = check(
            """
            class RoundEngine:
                def step_rounds(self, n):
                    self._warmup_left = 3
            """,
            scope_path=ENGINE_PATH,
        )
        assert rules_of(findings) == ["CKPT001"]
        assert "_warmup_left" in findings[0].message
        assert "CHECKPOINT_COVERED['engine']" in findings[0].message

    def test_ckpt001_covered_attributes_clean(self):
        assert check(
            """
            class RoundEngine:
                def step_rounds(self, n):
                    self.records = []
                    self._mode = "rounds"
            """,
            scope_path=ENGINE_PATH,
        ) == []

    def test_ckpt001_setup_and_checkpoint_methods_exempt(self):
        assert check(
            """
            class RoundEngine:
                def __init__(self):
                    self.anything = 1
                def start_run(self, max_steps):
                    self.whatever = 2
                def restore(self, state):
                    self.other = 3
                def snapshot(self):
                    self.scratch = 4
                def reset(self):
                    self.gone = 5
            """,
            scope_path=ENGINE_PATH,
        ) == []

    def test_ckpt001_rule_kind_and_engine_param(self):
        findings = check(
            """
            class MyRule:
                def apply(self, engine, aggregate, recovered):
                    self._penalty += 1.0
                    engine.records = []
                    engine.scratch = 1
                    self._cache = {}
            """,
            scope_path=RULES_PATH,
        )
        assert rules_of(findings) == ["CKPT001", "CKPT001"]
        assert "engine.scratch" in findings[0].message
        assert "self._cache" in findings[1].message
        assert "CHECKPOINT_COVERED['rule']" in findings[1].message

    def test_ckpt001_transient_scratch_accepted(self):
        # LocalUpdate's round-start parameters are registered as
        # within-round scratch (CHECKPOINT_TRANSIENT), not snapshot
        # state — the rule accepts both registries.
        assert check(
            """
            class LocalUpdate:
                def compute_partitions(self, engine, step):
                    self._start = engine.model.parameters
            """,
            scope_path=RULES_PATH,
        ) == []

    def test_ckpt001_backend_clock_covered(self):
        findings = check(
            """
            class ActorBackend:
                def execute_round(self, engine, step, policy):
                    self._clock = 7.0
                    self._round_cache = {}
            """,
            scope_path=BACKENDS_PATH,
        )
        assert rules_of(findings) == ["CKPT001"]
        assert "_round_cache" in findings[0].message

    def test_ckpt001_augassign_audited(self):
        findings = check(
            """
            class RoundEngine:
                def step_rounds(self, n):
                    self._drift += 1
            """,
            scope_path=ENGINE_PATH,
        )
        assert rules_of(findings) == ["CKPT001"]

    def test_ckpt001_out_of_scope(self):
        assert check(
            "class X:\n"
            "    def step(self):\n"
            "        self.anything = 1\n",
            scope_path="src/repro/serve/runner.py",
        ) == []

    def test_ckpt001_noqa_suppression(self):
        assert check(
            """
            class RoundEngine:
                def step_rounds(self, n):
                    self._scratch = 1  # repro: noqa[CKPT001]
            """,
            scope_path=ENGINE_PATH,
        ) == []

    def test_ckpt001_registry_matches_snapshot_fields(self):
        # The registry itself must stay honest: every non-transient
        # engine attribute it lists is restored by RoundEngine.restore,
        # so a registry entry snapshot() stopped writing would fail
        # here rather than silently pass the static audit.
        import inspect

        from repro.engine import core
        from repro.engine.state import CHECKPOINT_COVERED

        source = inspect.getsource(core.RoundEngine)
        for attr in CHECKPOINT_COVERED["engine"]:
            assert f"self.{attr}" in source, attr


# ----------------------------------------------------------------------
# The acceptance gate: the repo itself is clean.


class TestFullRepo:
    def test_repo_tree_is_clean(self):
        result = run_check(
            [REPO / "src", REPO / "tests", REPO / "examples"]
        )
        assert result.findings == [], "\n".join(
            f.format() for f in result.findings
        )
        assert result.num_files > 100

    def test_markdown_docs_are_clean(self):
        result = run_check([REPO / "README.md", REPO / "docs"])
        assert result.findings == [], "\n".join(
            f.format() for f in result.findings
        )

    def test_shipped_spec_files_are_feasible(self):
        result = run_check([REPO / "examples" / "specs"])
        assert result.findings == []
        assert result.num_files == 4
