"""Resumable serving: worker-pool eviction, crash recovery, scheduling
classes and the sweep submission front end.

The properties under test extend ``tests/test_serve.py``'s
interleaved-equals-sequential invariant across *process* boundaries:

* a :class:`~repro.serve.WorkerPool` may park any non-running job as a
  checkpoint and rebuild it later — results stay bit-identical at any
  capacity, including the degenerate capacity-0 pool that rebuilds
  every quantum;
* a SIGKILLed coordinator leaves behind per-quantum checkpoint records
  and a stale serving marker; a restarted coordinator takes the marker
  over, re-admits every non-terminal job and completes them — reports
  *and* streamed traces bit-identical to runs that were never
  interrupted;
* :class:`~repro.serve.SchedulingClass` priorities drain strictly
  higher tiers first while SWRR fairness (±1 quantum) holds within
  each tier, with earliest-deadline-first tie-breaking;
* ``repro submit --sweep`` fans the exact ``repro run --sweep`` grid
  into mailbox jobs, bit-identical to the serial sweep.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import CoordinatorClient, ExperimentSpec, ServeError, run_jobs
from repro.cli import main as cli_main
from repro.engine.report import build_run_report
from repro.engine.spec import run_spec_variation
from repro.exceptions import AdmissionError, SubmissionRejectedError
from repro.experiments.sweep import Sweep
from repro.serve import (
    Coordinator,
    FairScheduler,
    SchedulingClass,
    ServeMailbox,
    WorkerPool,
)
from repro.serve.jobs import Job
from repro.serve.runner import JobRunner

REPO = pathlib.Path(__file__).resolve().parent.parent


def make_spec(i, max_steps=6, **over):
    base = dict(
        name=f"resume-test-{i}",
        scheme="is-gc-cr",
        num_workers=4,
        partitions_per_worker=2,
        wait_for=2,
        max_steps=max_steps,
        seed=50 + i,
    )
    base.update(over)
    return ExperimentSpec(**base)


def tiny_spec(**over):
    """A spec small enough to fan out by the hundred."""
    base = dict(
        name="sweep-cell",
        scheme="sync-sgd",
        num_workers=2,
        partitions_per_worker=1,
        wait_for=2,
        max_steps=2,
        seed=0,
        dataset={
            "kind": "classification",
            "samples": 64,
            "features": 4,
            "num_classes": 2,
            "separation": 3.0,
            "batch_size": 16,
        },
    )
    base.update(over)
    return ExperimentSpec(**base)


def strip_trace(payload):
    payload = dict(payload)
    payload.pop("trace_path", None)
    return payload


def drain(mailbox_root, **kwargs):
    """Serve the mailbox once, in-process, deterministically."""
    coord = Coordinator(mode="deterministic", **kwargs)
    mailbox = ServeMailbox(mailbox_root)
    with coord:
        asyncio.run(coord.serve(mailbox, once=True))
    return coord


def run_coordinator(specs, *, pool_capacity, trace_dir=None, mailbox=None):
    """Drain ``specs`` through one coordinator with a bounded pool."""
    coord = Coordinator(
        mode="deterministic",
        max_running=4,
        queue_limit=max(64, len(specs)),
        trace_dir=trace_dir,
        pool_capacity=pool_capacity,
    )

    async def _run():
        handles = [coord.submit(spec) for spec in specs]
        if mailbox is not None:
            await coord.serve(mailbox, once=True)
        else:
            await coord.drain()
        return [await h.result() for h in handles]

    with coord:
        return asyncio.run(_run()), coord


# ----------------------------------------------------------------------
# Worker-pool eviction determinism


class TestWorkerPoolDeterminism:
    def test_capacity_zero_rebuilds_every_quantum(self):
        specs = [make_spec(i) for i in range(4)]
        baseline = run_jobs(specs)
        reports, coord = run_coordinator(specs, pool_capacity=0)
        assert [r.to_dict() for r in reports] == [
            r.to_dict() for r in baseline
        ]
        stats = coord.pool.stats
        assert stats.evictions > 0
        assert stats.restores > 0

    @pytest.mark.parametrize("capacity", [1, 2])
    def test_bounded_pool_bit_identical_with_traces(self, capacity, tmp_path):
        specs = [make_spec(i) for i in range(4)]
        solo = []
        for i, spec in enumerate(specs):
            solo.extend(
                run_jobs([spec], trace_dir=tmp_path / f"solo-{i}")
            )
        reports, coord = run_coordinator(
            specs, pool_capacity=capacity,
            trace_dir=tmp_path / "pooled",
        )
        assert [strip_trace(r.to_dict()) for r in reports] == [
            strip_trace(r.to_dict()) for r in solo
        ]
        for pooled, straight in zip(reports, solo):
            assert (
                pathlib.Path(pooled.trace_path).read_bytes()
                == pathlib.Path(straight.trace_path).read_bytes()
            )
        assert coord.pool.stats.evictions > 0

    def test_async_jobs_survive_eviction(self):
        specs = [make_spec(i, rule="async", max_steps=40) for i in range(3)]
        baseline = run_jobs(specs)
        reports, _ = run_coordinator(specs, pool_capacity=0)
        assert [r.to_dict() for r in reports] == [
            r.to_dict() for r in baseline
        ]


class TestWorkerPoolMechanics:
    def test_pinned_slot_refuses_eviction(self):
        pool = WorkerPool(capacity=2)
        job = Job(job_id="j0", name="j0", spec=make_spec(0), seq=0)
        pool.acquire(job)
        with pytest.raises(ServeError):
            pool.evict(job)
        pool.release(job)
        pool.evict(job)
        assert job.runner is None
        assert job.checkpoint_state is not None

    def test_lru_eviction_and_hits(self):
        pool = WorkerPool(capacity=1)
        jobs = [
            Job(job_id=f"j{i}", name=f"j{i}", spec=make_spec(i), seq=i)
            for i in range(2)
        ]
        pool.acquire(jobs[0]); pool.release(jobs[0])
        runner = pool.acquire(jobs[0])
        assert runner is jobs[0].runner
        assert pool.stats.hits == 1
        pool.release(jobs[0])
        pool.acquire(jobs[1]); pool.release(jobs[1])
        # j0 was least recently used and unpinned: parked to snapshot.
        assert jobs[0].runner is None
        assert jobs[0].checkpoint_state is not None
        assert pool.stats.evictions == 1

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ServeError):
            WorkerPool(capacity=-1)

    def test_clear_parks_everything(self):
        pool = WorkerPool(capacity=4)
        job = Job(job_id="j0", name="j0", spec=make_spec(0), seq=0)
        pool.acquire(job)
        pool.release(job)
        pool.clear()
        assert job.runner is None
        assert job.checkpoint_state is not None

    def test_runner_resumes_from_parked_state(self):
        spec = make_spec(0)
        straight = JobRunner(spec)
        while not straight.step():
            pass
        baseline = straight.report().to_dict()

        first = JobRunner(spec)
        first.step(); first.step()
        state = first.checkpoint()
        first.release()
        second = JobRunner(spec, checkpoint=state)
        assert second.rounds_done == 2
        while not second.step():
            pass
        assert second.report().to_dict() == baseline


# ----------------------------------------------------------------------
# Crash recovery across real process boundaries


def _submit_jobs(mailbox_root, specs, tmp_path, trace=True):
    client = CoordinatorClient(mailbox_root)
    ids = []
    for i, spec in enumerate(specs):
        path = tmp_path / f"spec-{i}.json"
        path.write_text(json.dumps(spec.to_dict()))
        ids.append(client.submit(path, trace=True if trace else None))
    return client, ids


class TestCrashRecovery:
    def test_sigkill_then_restart_completes_bit_identical(self, tmp_path):
        specs = [make_spec(i, max_steps=8) for i in range(3)]
        solo = []
        for i, spec in enumerate(specs):
            solo.extend(run_jobs([spec], trace_dir=tmp_path / f"solo-{i}"))

        mb = tmp_path / "mb"
        trace_dir = tmp_path / "traces"
        client, ids = _submit_jobs(mb, specs, tmp_path)
        env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve", str(mb),
                "--mode", "deterministic", "--trace-dir", str(trace_dir),
                "--poll-interval", "0.02",
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            # Wait until at least one job has made round progress, so
            # the kill lands mid-run with live checkpoints on disk.
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                snaps = [client.state(job_id) or {} for job_id in ids]
                if any(
                    int(s.get("rounds_done", 0) or 0) >= 2 for s in snaps
                ):
                    break
                if all(s.get("state") == "done" for s in snaps):
                    break
                time.sleep(0.02)
            else:
                pytest.fail("coordinator made no progress before kill")
        finally:
            proc.send_signal(signal.SIGKILL)
            proc.wait(timeout=30)

        # The killed coordinator left its marker and checkpoints.
        assert (mb / "coordinator.json").exists()
        assert list((mb / "checkpoints").glob("*.json"))

        # A fresh coordinator takes over the stale marker, re-admits
        # every non-terminal job from its checkpoint, and completes.
        drain(mb, trace_dir=trace_dir, max_running=2)
        for job_id, straight in zip(ids, solo):
            snap = client.state(job_id)
            assert snap["state"] == "done", snap
            assert strip_trace(snap["report"]) == strip_trace(
                straight.to_dict()
            )
            assert (
                pathlib.Path(snap["report"]["trace_path"]).read_bytes()
                == pathlib.Path(straight.trace_path).read_bytes()
            )
        # Terminal jobs leave no checkpoint records behind.
        assert list((mb / "checkpoints").glob("*.json")) == []

    def test_stale_marker_taken_over(self, tmp_path):
        mb = tmp_path / "mb"
        client, ids = _submit_jobs(
            mb, [make_spec(0, max_steps=3)], tmp_path, trace=False
        )
        # A dead pid: a subprocess that has already exited.
        dead = subprocess.Popen([sys.executable, "-c", "pass"])
        dead.wait()
        (mb / "coordinator.json").write_text(json.dumps({
            "mode": "deterministic", "max_running": 4,
            "queue_limit": 64, "pid": dead.pid,
        }))
        drain(mb)
        assert client.state(ids[0])["state"] == "done"

    def test_live_foreign_coordinator_refused(self, tmp_path):
        mb = tmp_path / "mb"
        ServeMailbox(mb)  # create layout
        holder = subprocess.Popen(
            [sys.executable, "-c", "import time; time.sleep(30)"]
        )
        try:
            (mb / "coordinator.json").write_text(json.dumps({
                "mode": "live", "max_running": 4,
                "queue_limit": 64, "pid": holder.pid,
            }))
            with pytest.raises(ServeError, match="already served"):
                drain(mb)
        finally:
            holder.kill()
            holder.wait()

    def test_recovery_restores_scheduling_class(self, tmp_path):
        # A checkpointed high-priority job keeps its class on re-admission.
        mb = tmp_path / "mb"
        client = CoordinatorClient(mb)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(make_spec(0, max_steps=3).to_dict()))
        job_id = client.submit(
            spec_path, priority=2, deadline=9.0, weight=3
        )
        coord = Coordinator(mode="deterministic")
        mailbox = ServeMailbox(mb)
        with coord:
            asyncio.run(coord.serve(mailbox, once=True))
        record = json.loads((mb / "jobs" / f"{job_id}.json").read_text())
        assert record["state"] == "done"
        assert record["priority"] == 2
        assert record["deadline"] == 9.0
        assert record["weight"] == 3


# ----------------------------------------------------------------------
# Scheduling classes: priorities, deadlines, per-tier fairness


def _class_jobs(entries):
    return [
        Job(
            job_id=f"fake-{i}",
            name=f"fake-{i}",
            spec=None,
            weight=w,
            priority=p,
            deadline=d,
            seq=i,
        )
        for i, (w, p, d) in enumerate(entries)
    ]


class TestSchedulingClasses:
    def test_scheduling_class_validation(self):
        with pytest.raises(ServeError):
            SchedulingClass(weight=0)
        with pytest.raises(ServeError):
            SchedulingClass(deadline=0.0)
        assert SchedulingClass().priority == 0

    def test_top_tier_drains_first(self):
        jobs = _class_jobs([(1, 0, None), (1, 2, None), (1, 2, None)])
        scheduler = FairScheduler()
        picks = [scheduler.pick(jobs).job_id for _ in range(10)]
        assert set(picks) == {"fake-1", "fake-2"}

    def test_earliest_deadline_breaks_ties(self):
        jobs = _class_jobs([
            (1, 0, None), (1, 0, 5.0), (1, 0, 1.0),
        ])
        scheduler = FairScheduler()
        # Equal weights, equal credit: first pick goes to the tightest
        # deadline; jobs without deadlines sort last.
        assert scheduler.pick(jobs).job_id == "fake-2"

    def test_default_class_reduces_to_classic_swrr(self):
        # priority 0 / no deadline must reproduce the historical
        # scheduler's smooth-WRR decisions exactly (same credits, same
        # admission-order tie-break) — the byte-compat guarantee for
        # default-class jobs.
        weights = [3, 1, 2]
        jobs = _class_jobs([(w, 0, None) for w in weights])
        scheduler = FairScheduler()
        picks = [scheduler.pick(jobs).job_id for _ in range(50)]

        credits = [0] * len(weights)
        reference = []
        for _ in range(50):
            credits = [c + w for c, w in zip(credits, weights)]
            best = max(range(len(weights)), key=lambda i: (credits[i], -i))
            credits[best] -= sum(weights)
            reference.append(f"fake-{best}")
        assert picks == reference

    @settings(max_examples=60, deadline=None)
    @given(
        weights=st.lists(
            st.integers(min_value=1, max_value=5), min_size=2, max_size=5
        ),
        priorities=st.lists(
            st.integers(min_value=0, max_value=2), min_size=2, max_size=5
        ),
        data=st.data(),
    )
    def test_swrr_within_each_priority_tier(
        self, weights, priorities, data
    ):
        n = min(len(weights), len(priorities))
        weights, priorities = weights[:n], priorities[:n]
        deadlines = [
            data.draw(
                st.one_of(
                    st.none(),
                    st.floats(
                        min_value=0.1, max_value=100,
                        allow_nan=False, allow_infinity=False,
                    ),
                )
            )
            for _ in range(n)
        ]
        jobs = _class_jobs(list(zip(weights, priorities, deadlines)))
        scheduler = FairScheduler()
        quanta = 60 * sum(weights)
        counts = {job.job_id: 0 for job in jobs}
        for _ in range(quanta):
            counts[scheduler.pick(jobs).job_id] += 1
        top = max(priorities)
        tier = [j for j in jobs if j.priority == top]
        tier_weight = sum(j.weight for j in tier)
        # Only the top tier runs while it has runnable jobs...
        for job in jobs:
            if job.priority != top:
                assert counts[job.job_id] == 0
        # ...and within it, each job's share is proportional ±1.
        for job in tier:
            expected = quanta * job.weight / tier_weight
            assert abs(counts[job.job_id] - expected) <= 1

    def test_coordinator_accepts_scheduling_class(self):
        spec = make_spec(0, max_steps=2)
        coord = Coordinator(mode="deterministic")

        async def scenario():
            gold = coord.submit(
                spec, scheduling_class=SchedulingClass(
                    name="gold", priority=2, weight=3, deadline=40.0
                )
            )
            plain = coord.submit(make_spec(1, max_steps=2))
            await coord.drain()
            return gold, plain

        with coord:
            gold, plain = asyncio.run(scenario())
        assert gold._job.priority == 2
        assert gold._job.weight == 3
        assert gold._job.deadline == 40.0
        assert plain._job.priority == 0
        assert plain._job.deadline is None


# ----------------------------------------------------------------------
# Structured admission rejections


class TestStructuredRejection:
    def test_admission_error_carries_details(self):
        coord = Coordinator(mode="deterministic", queue_limit=1)

        async def scenario():
            coord.submit(make_spec(0, max_steps=2))
            with pytest.raises(AdmissionError) as excinfo:
                coord.submit(make_spec(1, max_steps=2))
            details = excinfo.value.details()
            assert details["reason"] == "queue_limit"
            assert details["queue_depth"] == 1
            assert details["queue_limit"] == 1
            assert "resubmit" in details["retry_hint"]
            await coord.drain()

        with coord:
            asyncio.run(scenario())

    def test_rejected_record_is_structured(self, tmp_path):
        mb = tmp_path / "mb"
        client = CoordinatorClient(mb)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(make_spec(0, max_steps=2).to_dict())
        )
        ids = [client.submit(spec_path) for _ in range(3)]
        drain(mb, queue_limit=1)
        rejected = [
            json.loads(p.read_text())
            for p in sorted((mb / "rejected").glob("*.json"))
        ]
        assert len(rejected) == 2
        for record in rejected:
            assert record["state"] == "rejected"
            assert record["reason"] == "queue_limit"
            assert record["queue_depth"] >= 1
            assert record["queue_limit"] == 1
            assert "resubmit" in record["retry_hint"]
            assert "admission rejected" in record["error"]
        done = client.state(ids[0])
        assert done["state"] == "done"

    def test_wait_raises_structured_rejection(self, tmp_path):
        mb = tmp_path / "mb"
        client = CoordinatorClient(mb)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(make_spec(0, max_steps=2).to_dict())
        )
        ids = [client.submit(spec_path) for _ in range(2)]
        drain(mb, queue_limit=1)
        with pytest.raises(SubmissionRejectedError) as excinfo:
            client.wait(ids[1], timeout=5)
        assert excinfo.value.reason == "queue_limit"
        assert "resubmit" in excinfo.value.retry_hint

    def test_resubmitting_rejected_id_raises(self, tmp_path):
        mb = tmp_path / "mb"
        client = CoordinatorClient(mb)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(make_spec(0, max_steps=2).to_dict())
        )
        ids = [client.submit(spec_path) for _ in range(2)]
        drain(mb, queue_limit=1)
        with pytest.raises(SubmissionRejectedError):
            client.submit(spec_path, job_id=ids[1])


# ----------------------------------------------------------------------
# The sweep submission front end


class TestSweepSubmission:
    def test_hundred_jobs_bit_identical_to_serial_sweep(self, tmp_path):
        base = tiny_spec()
        spec_path = tmp_path / "base.json"
        spec_path.write_text(json.dumps(base.to_dict()))
        mb = tmp_path / "mb"
        seeds = ",".join(str(s) for s in range(25))
        rc = cli_main([
            "submit", str(mb), str(spec_path),
            "--sweep", f"seed={seeds}",
            "--sweep", "learning_rate=0.1,0.3",
            "--sweep", "wait_for=1,2",
        ])
        assert rc == 0
        client = CoordinatorClient(mb)
        pending = [
            s for s in client.jobs() if s["state"] == "submitted"
        ]
        assert len(pending) == 100
        drain(mb, queue_limit=128)

        axes = {
            "seed": list(range(25)),
            "learning_rate": [0.1, 0.3],
            "wait_for": [1, 2],
        }
        sweep = Sweep.over_spec("ground truth", base, axes)
        snapshots = sorted(
            (json.loads(p.read_text())
             for p in (mb / "jobs").glob("*.json")),
            key=lambda s: s["id"],
        )
        assert len(snapshots) == 100
        for snap, params in zip(snapshots, sweep.combinations()):
            assert snap["state"] == "done"
            cell = dataclasses.replace(base, **params)
            expected = build_run_report(
                run_spec_variation(base, **params), spec=cell
            ).to_dict()
            assert strip_trace(snap["report"]) == strip_trace(expected)

    def test_replicates_spawn_parent_seeds(self, tmp_path):
        base = tiny_spec()
        spec_path = tmp_path / "base.json"
        spec_path.write_text(json.dumps(base.to_dict()))
        mb = tmp_path / "mb"
        rc = cli_main([
            "submit", str(mb), str(spec_path),
            "--sweep", "wait_for=1,2", "--jobs", "3",
        ])
        assert rc == 0
        client = CoordinatorClient(mb)
        assert len(client.jobs()) == 6
        # Deterministic: the same command produces the same specs.
        mb2 = tmp_path / "mb2"
        cli_main([
            "submit", str(mb2), str(spec_path),
            "--sweep", "wait_for=1,2", "--jobs", "3",
        ])
        first = sorted(
            json.loads(p.read_text())["spec"]["seed"]
            for p in (mb / "inbox").glob("*.json")
        )
        second = sorted(
            json.loads(p.read_text())["spec"]["seed"]
            for p in (mb2 / "inbox").glob("*.json")
        )
        assert first == second
        assert len(set(first)) == 6  # distinct per replicate

    def test_sweep_with_class_flags(self, tmp_path):
        base = tiny_spec()
        spec_path = tmp_path / "base.json"
        spec_path.write_text(json.dumps(base.to_dict()))
        mb = tmp_path / "mb"
        rc = cli_main([
            "submit", str(mb), str(spec_path),
            "--sweep", "wait_for=1,2",
            "--priority", "2", "--deadline", "60", "--weight", "2",
        ])
        assert rc == 0
        payloads = [
            json.loads(p.read_text())
            for p in sorted((mb / "inbox").glob("*.json"))
        ]
        assert len(payloads) == 2
        for payload in payloads:
            assert payload["priority"] == 2
            assert payload["deadline"] == 60.0
            assert payload["weight"] == 2

    def test_bad_sweep_clause_fails_cleanly(self, tmp_path, capsys):
        base = tiny_spec()
        spec_path = tmp_path / "base.json"
        spec_path.write_text(json.dumps(base.to_dict()))
        rc = cli_main([
            "submit", str(tmp_path / "mb"), str(spec_path),
            "--sweep", "wait_for",
        ])
        assert rc != 0


# ----------------------------------------------------------------------
# The jobs --watch dashboard


class TestWatch:
    def test_watch_exits_when_all_terminal(self, tmp_path, capsys):
        mb = tmp_path / "mb"
        client = CoordinatorClient(mb)
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(make_spec(0, max_steps=3).to_dict())
        )
        client.submit(spec_path, trace=True)
        drain(mb, trace_dir=tmp_path / "traces")
        rc = cli_main([
            "jobs", str(mb), "--watch", "--interval", "0.01",
        ])
        out = capsys.readouterr().out
        assert rc == 0
        assert "all 1 jobs terminal (0 failed)" in out
        # The dashboard aggregates the streamed round traces.
        assert "Round traces" in out
        assert "resume-test-0" in out

    def test_watch_reports_failures_in_exit_code(self, tmp_path, capsys):
        mb = tmp_path / "mb"
        client = CoordinatorClient(mb)
        spec_path = tmp_path / "spec.json"
        # wait_for larger than num_workers fails at build time.
        bad = dict(make_spec(0, max_steps=2).to_dict(), wait_for=99)
        spec_path.write_text(json.dumps(bad))
        client.submit(spec_path)
        drain(mb)
        rc = cli_main([
            "jobs", str(mb), "--watch", "--interval", "0.01",
        ])
        assert rc == 1
        assert "1 failed" in capsys.readouterr().out

    def test_watch_empty_mailbox_exits(self, tmp_path, capsys):
        mb = tmp_path / "mb"
        CoordinatorClient(mb)
        rc = cli_main([
            "jobs", str(mb), "--watch", "--interval", "0.01",
        ])
        assert rc == 0
        assert "no jobs and no coordinator" in capsys.readouterr().out
