"""Unit tests for the scheme decoders (Algs. 1-4) and the exact decoder."""

import numpy as np
import pytest

from repro.core import (
    CRDecoder,
    CyclicRepetition,
    ExactDecoder,
    FRDecoder,
    FractionalRepetition,
    HRDecoder,
    HybridRepetition,
    decoder_for,
)
from repro.exceptions import ConfigurationError, DecodeError


@pytest.fixture
def fr4():
    return FractionalRepetition(4, 2)


@pytest.fixture
def cr4():
    return CyclicRepetition(4, 2)


class TestDecoderDispatch:
    def test_registry_picks_matching_decoder(self):
        assert isinstance(decoder_for(FractionalRepetition(4, 2)), FRDecoder)
        assert isinstance(decoder_for(CyclicRepetition(4, 2)), CRDecoder)
        assert isinstance(decoder_for(HybridRepetition(8, 2, 2, 2)), HRDecoder)

    def test_type_mismatch_rejected(self):
        with pytest.raises(TypeError):
            FRDecoder(CyclicRepetition(4, 2))
        with pytest.raises(TypeError):
            CRDecoder(FractionalRepetition(4, 2))
        with pytest.raises(TypeError):
            HRDecoder(CyclicRepetition(4, 2))


class TestDecodeContract:
    def test_empty_available_raises(self, fr4):
        with pytest.raises(DecodeError):
            decoder_for(fr4).decode([])

    def test_out_of_range_worker_raises(self, cr4):
        with pytest.raises(DecodeError):
            decoder_for(cr4).decode([0, 7])

    def test_selected_subset_of_available(self, cr4, rng):
        dec = decoder_for(cr4, rng=rng)
        result = dec.decode([0, 1, 3])
        assert result.selected_workers <= {0, 1, 3}
        assert result.available_workers == frozenset({0, 1, 3})

    def test_recovered_is_union_of_selected_partitions(self, cr4, rng):
        dec = decoder_for(cr4, rng=rng)
        result = dec.decode([0, 2])
        expected = set()
        for w in result.selected_workers:
            expected |= set(cr4.partitions_of(w))
        assert result.recovered_partitions == frozenset(expected)

    def test_num_recovered_is_alpha_times_c(self, cr4, rng):
        result = decoder_for(cr4, rng=rng).decode([0, 2])
        assert result.num_recovered == len(result.selected_workers) * 2


class TestFRDecoder:
    def test_one_worker_per_group(self, fr4, rng):
        dec = FRDecoder(fr4, rng=rng)
        result = dec.decode([0, 1, 2, 3])
        assert len(result.selected_workers) == 2
        groups = {fr4.group_of(w) for w in result.selected_workers}
        assert groups == {0, 1}

    def test_full_availability_recovers_everything(self, fr4, rng):
        result = FRDecoder(fr4, rng=rng).decode(range(4))
        assert result.recovered_partitions == frozenset(range(4))

    def test_single_group_available(self, fr4, rng):
        result = FRDecoder(fr4, rng=rng).decode([0, 1])
        assert len(result.selected_workers) == 1
        assert result.recovered_partitions == frozenset({0, 1})

    def test_randomizes_within_group(self, fr4):
        chosen = set()
        for seed in range(40):
            dec = FRDecoder(fr4, rng=np.random.default_rng(seed))
            chosen |= dec.decode([0, 1]).selected_workers
        assert chosen == {0, 1}

    def test_large_fr(self):
        pl = FractionalRepetition(24, 4)
        result = FRDecoder(pl, rng=np.random.default_rng(0)).decode(range(24))
        assert result.num_recovered == 24


class TestCRDecoder:
    def test_fig3_example(self, cr4, rng):
        """Fig. 3: with W2, W3, W4 (0-indexed 1,2,3) available the master
        should pick the non-adjacent pair, recovering all of g."""
        result = CRDecoder(cr4, rng=rng).decode([1, 2, 3])
        assert len(result.selected_workers) == 2
        assert result.num_recovered == 4

    def test_greedy_not_by_arrival_order(self, cr4, rng):
        """Decoding greedily by sequence (W1 then W3/W4) is suboptimal;
        the conflict-graph decoder must still find 2 workers from
        {W1, W2, W4} (0-indexed {0, 1, 3})."""
        result = CRDecoder(cr4, rng=rng).decode([0, 1, 3])
        assert len(result.selected_workers) == 2

    def test_invalid_starts_mode(self, cr4):
        with pytest.raises(ConfigurationError):
            CRDecoder(cr4, starts="bogus")

    def test_all_starts_mode_matches_window(self):
        pl = CyclicRepetition(13, 4)
        rng = np.random.default_rng(3)
        window = CRDecoder(pl, rng=np.random.default_rng(0))
        allmode = CRDecoder(pl, rng=np.random.default_rng(0), starts="all")
        for _ in range(100):
            w = int(rng.integers(1, 14))
            avail = rng.choice(13, size=w, replace=False).tolist()
            a = window.decode(avail)
            b = allmode.decode(avail)
            assert len(a.selected_workers) == len(b.selected_workers)

    def test_c_equals_one_selects_everyone(self):
        pl = CyclicRepetition(6, 1)
        result = CRDecoder(pl, rng=np.random.default_rng(0)).decode([0, 2, 5])
        assert result.selected_workers == frozenset({0, 2, 5})

    def test_complete_conflict_selects_one(self):
        pl = CyclicRepetition(4, 4)
        result = CRDecoder(pl, rng=np.random.default_rng(0)).decode([1, 2])
        assert len(result.selected_workers) == 1
        assert result.num_recovered == 4

    def test_num_searches_at_most_c(self):
        pl = CyclicRepetition(12, 3)
        dec = CRDecoder(pl, rng=np.random.default_rng(0))
        for avail in ([0, 3, 6, 9], [1, 2, 3], list(range(12))):
            assert dec.decode(avail).num_searches <= 3


class TestHRDecoder:
    def test_pure_cr_case(self):
        pl = HybridRepetition(8, 0, 2, 2)
        result = HRDecoder(pl, rng=np.random.default_rng(0)).decode([0, 4])
        assert len(result.selected_workers) == 2

    def test_grouped_cr_case(self):
        # c2 = 0 with n0 = c → FR-equivalent, one pick per group.
        pl = HybridRepetition(8, 4, 0, 2)
        result = HRDecoder(pl, rng=np.random.default_rng(0)).decode(range(8))
        assert len(result.selected_workers) == 2
        assert result.num_recovered == 8

    def test_general_case_full_availability(self):
        pl = HybridRepetition(8, 2, 2, 2)
        result = HRDecoder(pl, rng=np.random.default_rng(0)).decode(range(8))
        # n/c = 2 disjoint workers exist (one per group).
        assert len(result.selected_workers) == 2
        assert result.num_recovered == 8

    def test_single_worker(self):
        pl = HybridRepetition(8, 1, 3, 2)
        result = HRDecoder(pl, rng=np.random.default_rng(0)).decode([5])
        assert result.selected_workers == frozenset({5})
        assert result.num_recovered == 4


class TestExactDecoder:
    def test_works_for_any_placement(self, cr4):
        result = ExactDecoder(cr4, rng=np.random.default_rng(0)).decode([1, 2, 3])
        assert len(result.selected_workers) == 2

    def test_fair_mode_hits_all_optima(self, cr4):
        seen = set()
        for seed in range(60):
            dec = ExactDecoder(cr4, rng=np.random.default_rng(seed), fair=True)
            seen.add(dec.decode(range(4)).selected_workers)
        # C_4^1 has two maximum independent sets: {0,2} and {1,3}.
        assert seen == {frozenset({0, 2}), frozenset({1, 3})}

    def test_unfair_mode_deterministic(self, cr4):
        results = {
            ExactDecoder(cr4, rng=np.random.default_rng(s), fair=False)
            .decode(range(4)).selected_workers
            for s in range(10)
        }
        assert len(results) == 1

    def test_registered_as_fallback(self):
        class OddPlacement(CyclicRepetition):
            scheme = "custom-unknown"

        # The exponential fallback is never silent for unknown schemes.
        with pytest.warns(RuntimeWarning, match="exact-MIS"):
            dec = decoder_for(OddPlacement(4, 2))
        assert isinstance(dec, ExactDecoder)
