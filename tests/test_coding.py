"""Tests for the IS-GC summation code (Sec. IV)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    CyclicRepetition,
    FractionalRepetition,
    SummationCode,
    average_gradient,
    decoder_for,
    verify_decode,
)
from repro.exceptions import CodingError


def _gradients(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    return {p: rng.normal(size=dim) for p in range(n)}


class TestEncode:
    def test_worker_payload_is_sum_of_its_partitions(self):
        pl = CyclicRepetition(4, 2)
        code = SummationCode(pl)
        grads = _gradients(4, 5)
        payloads = code.encode(grads)
        for w in range(4):
            expected = sum(grads[p] for p in pl.partitions_of(w))
            np.testing.assert_allclose(payloads[w], expected)

    def test_missing_partition_raises(self):
        code = SummationCode(CyclicRepetition(4, 2))
        with pytest.raises(CodingError, match="partitions"):
            code.encode({0: np.zeros(3)})

    def test_encode_does_not_mutate_inputs(self):
        pl = CyclicRepetition(3, 2)
        grads = _gradients(3, 4)
        originals = {p: g.copy() for p, g in grads.items()}
        SummationCode(pl).encode(grads)
        for p in grads:
            np.testing.assert_array_equal(grads[p], originals[p])

    def test_fr_group_members_send_identical_payloads(self):
        pl = FractionalRepetition(6, 3)
        payloads = SummationCode(pl).encode(_gradients(6, 4))
        np.testing.assert_allclose(payloads[0], payloads[1])
        np.testing.assert_allclose(payloads[1], payloads[2])
        assert not np.allclose(payloads[0], payloads[3])


class TestDecode:
    def test_decoded_sum_matches_recovered_partitions(self):
        pl = CyclicRepetition(5, 2)
        code = SummationCode(pl)
        grads = _gradients(5, 7)
        payloads = code.encode(grads)
        decoder = decoder_for(pl, rng=np.random.default_rng(0))
        decision = decoder.decode([0, 2, 4])
        decoded = code.decode_sum(decision, payloads)
        assert verify_decode(pl, decision, grads, decoded)

    def test_full_availability_recovers_full_sum(self):
        pl = CyclicRepetition(6, 2)
        code = SummationCode(pl)
        grads = _gradients(6, 3)
        payloads = code.encode(grads)
        decision = decoder_for(pl, rng=np.random.default_rng(1)).decode(range(6))
        decoded = code.decode_sum(decision, payloads)
        np.testing.assert_allclose(
            decoded, sum(grads[p] for p in range(6)), atol=1e-9
        )

    def test_missing_payload_raises(self):
        pl = CyclicRepetition(4, 2)
        code = SummationCode(pl)
        decision = decoder_for(pl, rng=np.random.default_rng(0)).decode([0, 2])
        with pytest.raises(CodingError, match="payloads"):
            code.decode_sum(decision, {0: np.zeros(3)})

    def test_unbiased_scaling(self):
        pl = CyclicRepetition(4, 2)
        code = SummationCode(pl)
        grads = {p: np.ones(2) for p in range(4)}
        payloads = code.encode(grads)
        decision = decoder_for(pl, rng=np.random.default_rng(0)).decode([0])
        est = code.decode_unbiased(decision, payloads)
        # 2 partitions recovered, scaled by 4/2 → equals the full sum.
        np.testing.assert_allclose(est, 4 * np.ones(2))

    @given(
        st.integers(min_value=2, max_value=10),
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_decode_equals_partition_sum(self, n, c, seed):
        c = min(c, n)
        pl = CyclicRepetition(n, c)
        code = SummationCode(pl)
        rng = np.random.default_rng(seed)
        grads = {p: rng.normal(size=3) for p in range(n)}
        payloads = code.encode(grads)
        w = int(rng.integers(1, n + 1))
        avail = rng.choice(n, size=w, replace=False).tolist()
        decision = decoder_for(pl, rng=rng).decode(avail)
        decoded = code.decode_sum(decision, payloads)
        expected = sum(grads[p] for p in decision.recovered_partitions)
        np.testing.assert_allclose(decoded, expected, atol=1e-9)


class TestHelpers:
    def test_average_gradient(self):
        np.testing.assert_allclose(
            average_gradient(np.array([4.0, 8.0]), 4), [1.0, 2.0]
        )

    def test_average_gradient_rejects_zero(self):
        with pytest.raises(CodingError):
            average_gradient(np.zeros(2), 0)

    def test_verify_decode_detects_corruption(self):
        pl = CyclicRepetition(4, 2)
        code = SummationCode(pl)
        grads = _gradients(4, 3)
        payloads = code.encode(grads)
        decision = decoder_for(pl, rng=np.random.default_rng(0)).decode([0, 2])
        decoded = code.decode_sum(decision, payloads) + 0.5
        assert not verify_decode(pl, decision, grads, decoded)
