"""Tests for estimator-variance analysis, evaluation, and checkpoints."""

import numpy as np
import pytest

from repro.analysis import estimator_moments, variance_reduction_vs_issgd
from repro.core import CyclicRepetition, FractionalRepetition
from repro.exceptions import ConfigurationError, TrainingError
from repro.io import load_checkpoint, save_checkpoint
from repro.training import (
    LinearRegressionModel,
    SoftmaxRegressionModel,
    accuracy_curve,
    evaluate,
    make_classification,
    make_regression,
)


def _grads(n, dim=5, seed=0):
    rng = np.random.default_rng(seed)
    return {p: rng.normal(size=dim) for p in range(n)}


class TestEstimatorMoments:
    def test_unbiased_at_every_w(self):
        """Assumption 2: the rescaled estimator is unbiased."""
        placement = CyclicRepetition(4, 2)
        grads = _grads(4)
        for w in (1, 2, 3, 4):
            moments = estimator_moments(placement, w, grads, seed=1)
            assert moments.is_unbiased, f"w={w}: bias {moments.bias_norm}"

    def test_zero_variance_at_full_availability(self):
        placement = CyclicRepetition(4, 2)
        moments = estimator_moments(placement, 4, _grads(4), seed=0)
        assert moments.total_variance == pytest.approx(0.0, abs=1e-12)

    def test_variance_decreases_with_w(self):
        placement = CyclicRepetition(6, 2)
        grads = _grads(6)
        variances = [
            estimator_moments(placement, w, grads, seed=2).total_variance
            for w in (1, 3, 6)
        ]
        assert variances[0] > variances[1] > variances[2]

    def test_isgc_lower_variance_than_issgd(self):
        """The convergence mechanism: more recovery → lower variance."""
        placement = FractionalRepetition(4, 2)
        grads = _grads(4, seed=3)
        ratio = variance_reduction_vs_issgd(placement, 2, grads, seed=4)
        assert ratio > 1.0

    def test_fr_at_least_cr_variance_reduction(self):
        grads = _grads(8, seed=5)
        fr = estimator_moments(FractionalRepetition(8, 2), 4, grads, seed=6)
        cr = estimator_moments(CyclicRepetition(8, 2), 4, grads, seed=6)
        assert fr.total_variance <= cr.total_variance * 1.05

    def test_validation(self):
        placement = CyclicRepetition(4, 2)
        with pytest.raises(ConfigurationError):
            estimator_moments(placement, 0, _grads(4))
        with pytest.raises(ConfigurationError):
            estimator_moments(placement, 2, {0: np.zeros(2)})


class TestEvaluate:
    def test_classifier_report(self):
        ds = make_classification(300, 6, num_classes=3, separation=6.0, seed=0)
        model = SoftmaxRegressionModel(6, 3, seed=0)
        for _ in range(300):
            _, grad = model.loss_and_gradient(ds.features, ds.labels)
            model.set_parameters(model.get_parameters() - 0.5 * grad)
        report = evaluate(model, ds)
        assert report.accuracy is not None and report.accuracy > 0.9
        assert set(report.per_class_accuracy) == {0, 1, 2}
        assert "accuracy" in report.describe()

    def test_regression_no_accuracy(self):
        ds = make_regression(100, 4, seed=0)
        report = evaluate(LinearRegressionModel(4, seed=0), ds)
        assert report.accuracy is None
        assert report.per_class_accuracy == {}
        assert "loss" in report.describe()

    def test_empty_dataset(self):
        ds = make_classification(10, 4, seed=0)
        empty = ds.subset(np.array([], dtype=int))
        with pytest.raises(TrainingError):
            evaluate(SoftmaxRegressionModel(4, 2), empty)

    def test_accuracy_curve_restores_model(self):
        ds = make_classification(100, 4, num_classes=2, separation=5.0, seed=0)
        model = SoftmaxRegressionModel(4, 2, seed=0)
        original = model.get_parameters()
        snapshots = [
            original,
            original + np.random.default_rng(1).normal(size=original.size),
        ]
        curve = accuracy_curve(model, snapshots, ds)
        assert len(curve) == 2
        np.testing.assert_array_equal(model.get_parameters(), original)

    def test_accuracy_curve_validation(self):
        ds = make_classification(10, 4, seed=0)
        with pytest.raises(TrainingError):
            accuracy_curve(SoftmaxRegressionModel(4, 2), [], ds)


class TestCheckpoints:
    def test_round_trip(self, tmp_path):
        params = np.array([1.0, -2.5, 3.25])
        path = tmp_path / "ckpt.json"
        save_checkpoint(path, params, step=42, metadata={"scheme": "is-gc-cr"})
        loaded, step, meta = load_checkpoint(path)
        np.testing.assert_allclose(loaded, params)
        assert step == 42
        assert meta == {"scheme": "is-gc-cr"}

    def test_resume_training_from_checkpoint(self, tmp_path):
        """Checkpoint mid-run, restore into a fresh model, keep going."""
        ds = make_classification(200, 5, num_classes=2, separation=4.0, seed=0)
        model = SoftmaxRegressionModel(5, 2, seed=0)
        for _ in range(20):
            _, grad = model.loss_and_gradient(ds.features, ds.labels)
            model.set_parameters(model.get_parameters() - 0.3 * grad)
        path = tmp_path / "mid.json"
        save_checkpoint(path, model.get_parameters(), step=20)

        resumed = SoftmaxRegressionModel(5, 2, seed=99)
        params, step, _ = load_checkpoint(path)
        resumed.set_parameters(params)
        assert resumed.loss(ds.features, ds.labels) == pytest.approx(
            model.loss(ds.features, ds.labels)
        )

    def test_validation(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_checkpoint(tmp_path / "x.json", np.zeros(2), step=-1)
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        with pytest.raises(ConfigurationError):
            load_checkpoint(bad)
