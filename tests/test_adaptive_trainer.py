"""Tests for online placement adaptation."""

import numpy as np
import pytest

from repro.core import CyclicRepetition, FractionalRepetition
from repro.exceptions import TrainingError
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
from repro.straggler import ExponentialDelay, NoDelay
from repro.training import (
    LogisticRegressionModel,
    SGD,
    build_batch_streams,
    make_classification,
    partition_dataset,
)
from repro.training.adaptive_trainer import AdaptivePlacementTrainer


def _setup(initial_placement, wait_for=4, delay=None, **kw):
    n = initial_placement.num_workers
    ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
    streams = build_batch_streams(partition_dataset(ds, n, seed=2), 32, seed=3)
    cluster = ClusterSimulator(
        n, initial_placement.partitions_per_worker,
        compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=delay or ExponentialDelay(0.5),
        rng=np.random.default_rng(0),
    )
    trainer = AdaptivePlacementTrainer(
        model=LogisticRegressionModel(8, seed=0),
        streams=streams,
        initial_placement=initial_placement,
        wait_for=wait_for,
        cluster=cluster,
        optimizer=SGD(0.3),
        eval_data=ds,
        network=NetworkModel(latency=0.001, bandwidth=1e9),
        rng=np.random.default_rng(7),
        **kw,
    )
    return trainer, ds


class TestAdaptiveTrainer:
    def test_migrates_from_cr_to_fr(self):
        """Starting on CR(8,2) at w=4, the advisor finds FR strictly
        better; a cheap migration should fire at the first review."""
        trainer, _ = _setup(
            CyclicRepetition(8, 2), review_every=10, partition_bytes=1e4,
        )
        trainer.run(max_steps=60)
        # At w = 4 FR recovers ~7.9/8 vs CR's ~6.9/8 — comfortably past
        # the 5% default gain threshold.
        assert trainer.migrations, "no migration happened"
        event = trainer.migrations[0]
        assert event.step == 10
        assert "Fractional" in event.to_label
        assert isinstance(trainer.placement, FractionalRepetition)

    def test_recovery_improves_after_migration(self):
        trainer, _ = _setup(
            CyclicRepetition(8, 2), review_every=15, partition_bytes=1e4,
        )
        trainer.run(max_steps=90)
        assert trainer.migrations
        switch = trainer.migrations[0].step
        before = np.mean(
            [r.recovery_fraction for r in trainer.records[:switch]]
        )
        after = np.mean(
            [r.recovery_fraction for r in trainer.records[switch:]]
        )
        assert after > before

    def test_no_migration_when_already_optimal(self):
        trainer, _ = _setup(
            FractionalRepetition(8, 2), review_every=10, partition_bytes=1e4,
        )
        trainer.run(max_steps=40)
        assert not trainer.migrations

    def test_no_migration_when_cost_prohibitive(self):
        """Huge partitions: the amortisation test must refuse."""
        trainer, _ = _setup(
            CyclicRepetition(8, 2), review_every=10,
            partition_bytes=1e15,
        )
        trainer.run(max_steps=40)
        assert not trainer.migrations

    def test_migration_cost_charged_to_clock(self):
        cheap, _ = _setup(
            CyclicRepetition(8, 2), review_every=10, partition_bytes=1e4,
        )
        cheap_summary = cheap.run(max_steps=40)
        assert cheap.migrations
        cost = sum(m.cost_seconds for m in cheap.migrations)
        assert cost > 0
        # The recorded sim_time includes the accumulated penalty.
        assert cheap_summary.total_sim_time >= cheap.records[-1].wait_time

    def test_training_converges_across_migration(self):
        trainer, _ = _setup(
            CyclicRepetition(8, 2), review_every=10, partition_bytes=1e4,
        )
        summary = trainer.run(max_steps=80)
        assert summary.loss_curve[-1] < summary.loss_curve[0]
        assert "adaptive-is-gc" in summary.scheme

    def test_threshold_stop(self):
        trainer, _ = _setup(
            CyclicRepetition(8, 2), review_every=10, partition_bytes=1e4,
        )
        summary = trainer.run(max_steps=400, loss_threshold=0.25)
        assert summary.reached_threshold
        assert summary.num_steps < 400

    def test_validation(self):
        with pytest.raises(TrainingError):
            _setup(CyclicRepetition(8, 2), review_every=0)
        with pytest.raises(TrainingError):
            _setup(CyclicRepetition(8, 2), min_recovery_gain=2.0)
        trainer, _ = _setup(CyclicRepetition(8, 2))
        with pytest.raises(TrainingError):
            trainer.run(max_steps=0)
