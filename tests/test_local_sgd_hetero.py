"""Tests for local-update SGD and heterogeneity-aware assignment."""

import numpy as np
import pytest

from repro.core import CyclicRepetition, FractionalRepetition
from repro.core.hetero_placement import (
    heterogeneous_recovery,
    optimize_assignment,
)
from repro.exceptions import ConfigurationError, TrainingError
from repro.simulation import ClusterSimulator, ComputeModel, NetworkModel
from repro.straggler import ExponentialDelay, NoDelay
from repro.training import (
    DistributedTrainer,
    ISGCStrategy,
    LogisticRegressionModel,
    SGD,
    build_batch_streams,
    make_classification,
    partition_dataset,
)
from repro.training.local_sgd import LocalUpdateTrainer


def _workload(n=4):
    ds = make_classification(512, 8, num_classes=2, separation=3.0, seed=1)
    streams = build_batch_streams(partition_dataset(ds, n, seed=2), 32, seed=3)
    return ds, streams


def _cluster(n=4, c=2, delay=None):
    return ClusterSimulator(
        n, c, compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=delay or NoDelay(),
        rng=np.random.default_rng(0),
    )


class TestLocalUpdateTrainer:
    def _trainer(self, tau, wait_for=4, lr=0.3, delay=None):
        ds, streams = _workload()
        strategy = ISGCStrategy(
            CyclicRepetition(4, 2), wait_for=wait_for,
            rng=np.random.default_rng(0),
        )
        return LocalUpdateTrainer(
            LogisticRegressionModel(8, seed=0), streams, strategy,
            _cluster(delay=delay), local_steps=tau, local_lr=lr,
            eval_data=ds,
        ), ds, streams

    def test_converges(self):
        trainer, _, _ = self._trainer(tau=4)
        summary = trainer.run(max_rounds=25)
        assert summary.loss_curve[-1] < summary.loss_curve[0]
        assert "τ=4" in summary.scheme

    def test_tau_one_matches_plain_trainer(self):
        """τ = 1 with matching step sizes reproduces DistributedTrainer
        exactly (delta = lr·grad; master applies mean delta)."""
        local, ds, streams = self._trainer(tau=1, lr=0.3)
        local_summary = local.run(max_rounds=15)

        strategy = ISGCStrategy(
            CyclicRepetition(4, 2), wait_for=4, rng=np.random.default_rng(0)
        )
        plain = DistributedTrainer(
            LogisticRegressionModel(8, seed=0), streams, strategy,
            _cluster(), SGD(0.3), eval_data=ds,
        )
        plain_summary = plain.run(max_steps=15)
        np.testing.assert_allclose(
            np.array(local_summary.loss_curve),
            np.array(plain_summary.loss_curve),
            atol=1e-10,
        )

    def test_fewer_rounds_for_same_batch_budget(self):
        """τ = 4 consumes 4 batches per round: at equal total batches it
        needs 4× fewer communication rounds (straggler waits)."""
        tau4, _, _ = self._trainer(tau=4, lr=0.15)
        s4 = tau4.run(max_rounds=10)  # 40 batches per partition
        assert s4.num_steps == 10
        assert s4.loss_curve[-1] < s4.loss_curve[0]

    def test_partial_recovery_rounds(self):
        trainer, _, _ = self._trainer(
            tau=2, wait_for=2, delay=ExponentialDelay(0.5)
        )
        summary = trainer.run(max_rounds=15)
        assert 0 < summary.avg_recovery_fraction <= 1.0

    def test_replica_determinism(self):
        """The property that makes local SGD codable: every replica of a
        partition computes the identical delta."""
        ds, streams = _workload()
        strategy = ISGCStrategy(
            FractionalRepetition(4, 2), wait_for=4,
            rng=np.random.default_rng(0),
        )
        trainer = LocalUpdateTrainer(
            LogisticRegressionModel(8, seed=0), streams, strategy,
            _cluster(), local_steps=3, local_lr=0.1, eval_data=ds,
        )
        start = trainer._model.get_parameters()
        d1 = trainer._partition_delta(1, 0, start)
        d2 = trainer._partition_delta(1, 0, start)
        np.testing.assert_array_equal(d1, d2)

    def test_validation(self):
        ds, streams = _workload()
        strategy = ISGCStrategy(
            CyclicRepetition(4, 2), wait_for=4, rng=np.random.default_rng(0)
        )
        with pytest.raises(TrainingError):
            LocalUpdateTrainer(
                LogisticRegressionModel(8), streams, strategy,
                _cluster(), local_steps=0, local_lr=0.1,
            )
        with pytest.raises(TrainingError):
            LocalUpdateTrainer(
                LogisticRegressionModel(8), streams, strategy,
                _cluster(), local_steps=2, local_lr=-0.1,
            )
        trainer, _, _ = self._trainer(tau=2)
        with pytest.raises(TrainingError):
            trainer.run(max_rounds=0)


class TestHeterogeneousRecovery:
    def test_uniform_matches_monte_carlo(self):
        """Equal delay means reduce to the uniform-subset model."""
        from repro.analysis import monte_carlo_recovery

        placement = CyclicRepetition(6, 2)
        hetero = heterogeneous_recovery(
            placement, 3, [1.0] * 6, trials=6000, seed=0
        )
        uniform = monte_carlo_recovery(placement, 3, trials=6000, seed=0)
        assert hetero == pytest.approx(uniform.mean_recovered, rel=0.05)

    def test_slow_machines_rarely_contribute(self):
        placement = FractionalRepetition(4, 2)
        # Machines 0,1 extremely slow → available set ≈ {workers 2,3}
        # = one FR group → 2 partitions recovered.
        value = heterogeneous_recovery(
            placement, 2, [100.0, 100.0, 0.001, 0.001], trials=500, seed=1
        )
        assert value == pytest.approx(2.0, abs=0.1)

    def test_validation(self):
        placement = CyclicRepetition(4, 2)
        with pytest.raises(ConfigurationError):
            heterogeneous_recovery(placement, 2, [1.0] * 3)
        with pytest.raises(ConfigurationError):
            heterogeneous_recovery(placement, 9, [1.0] * 4)
        with pytest.raises(ConfigurationError):
            heterogeneous_recovery(placement, 2, [1.0] * 4, assignment=[0, 0, 1, 2])


class TestOptimizeAssignment:
    def test_spreads_slow_machines_across_fr_groups(self):
        """Two chronically slow machines in the SAME FR group waste a
        group every step; the optimiser should separate them."""
        placement = FractionalRepetition(4, 2)
        # Machines 0 and 1 are slow; identity puts both into group 0.
        delay_means = [50.0, 50.0, 0.01, 0.01]
        result = optimize_assignment(
            placement, 2, delay_means, trials=800, seed=2
        )
        groups_of_slow = {result.assignment[0] // 2, result.assignment[1] // 2}
        assert len(groups_of_slow) == 2, "slow machines not separated"
        assert result.improvement > 0.5

    def test_no_change_when_homogeneous(self):
        placement = FractionalRepetition(4, 2)
        result = optimize_assignment(
            placement, 2, [1.0] * 4, trials=400, max_passes=1, seed=3
        )
        # Nothing to gain — improvement stays within noise.
        assert abs(result.improvement) < 0.3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            optimize_assignment(
                CyclicRepetition(4, 2), 2, [1.0] * 4, max_passes=0
            )
