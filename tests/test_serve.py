"""Tests for :mod:`repro.serve` — the asyncio multi-job coordinator.

The load-bearing property: in deterministic mode, *any* interleaving
of N concurrent jobs is bit-for-bit identical to N sequential
``repro run`` invocations — trajectories AND streamed JSONL traces.
Hypothesis drives adversarial schedulers and weight assignments at it.
"""

import asyncio
import json
import pathlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Coordinator,
    CoordinatorClient,
    ExperimentSpec,
    JobCancelledError,
    JobFailedError,
    JobState,
    RunReport,
    ServeError,
    ServeMailbox,
    run_jobs,
    run_spec,
)
from repro.serve import (
    FairScheduler,
    RandomOrderScheduler,
    RoundRobinScheduler,
)
from repro.serve.jobs import Job

SCHEMES = ("is-gc-cr", "is-gc-fr", "gc", "sync-sgd")


def make_spec(i, max_steps=6):
    return ExperimentSpec(
        name=f"serve-test-{i}",
        scheme=SCHEMES[i % len(SCHEMES)],
        num_workers=4,
        partitions_per_worker=2,
        wait_for=3,
        max_steps=max_steps,
        seed=100 + i,
    )


def sequential_reports(specs, trace_dir=None):
    """The ground truth: each spec run alone, one at a time."""
    reports = []
    for i, spec in enumerate(specs):
        sub_dir = None
        if trace_dir is not None:
            sub_dir = pathlib.Path(trace_dir) / f"solo-{i}"
        reports.extend(run_jobs([spec], trace_dir=sub_dir))
    return reports


def strip_trace(report):
    """Report payload minus the (path-dependent) trace location."""
    payload = report.to_dict()
    payload.pop("trace_path", None)
    return payload


# ----------------------------------------------------------------------
# Determinism: interleaved == sequential


class TestDeterminism:
    def test_concurrent_equals_sequential(self):
        specs = [make_spec(i) for i in range(4)]
        concurrent = run_jobs(specs, max_running=4)
        solo = sequential_reports(specs)
        assert [r.to_dict() for r in concurrent] == [
            r.to_dict() for r in solo
        ]

    def test_concurrent_equals_run_spec(self):
        spec = make_spec(0)
        (report,) = run_jobs([spec])
        summary = run_spec(spec)
        assert report.num_steps == summary.num_steps
        assert report.final_loss == summary.final_loss
        assert report.total_sim_time == summary.total_sim_time
        assert report.loss_curve == tuple(summary.loss_curve)

    def test_eight_jobs_bit_for_bit_with_traces(self, tmp_path):
        specs = [make_spec(i) for i in range(8)]
        concurrent_dir = tmp_path / "concurrent"
        concurrent = run_jobs(
            specs, max_running=4, trace_dir=concurrent_dir
        )
        solo = sequential_reports(specs, trace_dir=tmp_path / "solo")
        assert [strip_trace(r) for r in concurrent] == [
            strip_trace(r) for r in solo
        ]
        for conc, seq in zip(concurrent, solo):
            conc_trace = pathlib.Path(conc.trace_path).read_bytes()
            seq_trace = pathlib.Path(seq.trace_path).read_bytes()
            assert conc_trace == seq_trace

    def test_adversarial_interleaving(self):
        specs = [make_spec(i) for i in range(4)]
        baseline = [r.to_dict() for r in sequential_reports(specs)]
        for seed in range(3):
            shuffled = run_jobs(
                specs,
                max_running=4,
                scheduler=RandomOrderScheduler(seed),
            )
            assert [r.to_dict() for r in shuffled] == baseline

    def test_live_mode_matches_deterministic(self):
        specs = [make_spec(i) for i in range(3)]
        live = run_jobs(specs, mode="live", max_running=3)
        det = run_jobs(specs, mode="deterministic")
        assert [r.to_dict() for r in live] == [r.to_dict() for r in det]

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(0, 2**16),
        weights=st.lists(st.integers(1, 5), min_size=3, max_size=3),
        max_running=st.integers(1, 3),
    )
    def test_any_interleaving_equals_sequential(
        self, seed, weights, max_running
    ):
        specs = [make_spec(i, max_steps=4) for i in range(3)]
        interleaved = run_jobs(
            specs,
            max_running=max_running,
            weights=weights,
            scheduler=RandomOrderScheduler(seed),
        )
        solo = sequential_reports(specs)
        assert [r.to_dict() for r in interleaved] == [
            r.to_dict() for r in solo
        ]


# ----------------------------------------------------------------------
# Scheduling: fairness and starvation-freedom


def _fake_jobs(weights):
    return [
        Job(
            job_id=f"fake-{i}",
            name=f"fake-{i}",
            spec=None,
            weight=w,
            seq=i,
        )
        for i, w in enumerate(weights)
    ]


class TestScheduling:
    def test_swrr_fairness_bound(self):
        # Over any window of Q quanta a job with weight w_i receives
        # Q * w_i / sum(w) quanta to within one.
        weights = [1, 2, 5]
        jobs = _fake_jobs(weights)
        scheduler = FairScheduler()
        quanta = 400
        counts = {job.job_id: 0 for job in jobs}
        for _ in range(quanta):
            counts[scheduler.pick(jobs).job_id] += 1
        total = sum(weights)
        for job, w in zip(jobs, weights):
            expected = quanta * w / total
            assert abs(counts[job.job_id] - expected) <= 1

    def test_swrr_no_starvation(self):
        # Even a weight-1 job among heavyweights runs regularly: the
        # gap between its quanta is bounded (no starvation).
        jobs = _fake_jobs([1, 10, 10])
        scheduler = FairScheduler()
        last_seen = 0
        max_gap = 0
        for tick in range(1, 301):
            if scheduler.pick(jobs).job_id == "fake-0" :
                max_gap = max(max_gap, tick - last_seen)
                last_seen = tick
        assert last_seen > 0, "weight-1 job never ran"
        assert max_gap <= 21  # one full cycle of sum(weights)

    def test_round_robin_cycles_in_seq_order(self):
        jobs = _fake_jobs([1, 1, 1])
        scheduler = RoundRobinScheduler()
        picked = [scheduler.pick(jobs).job_id for _ in range(6)]
        assert picked == ["fake-0", "fake-1", "fake-2"] * 2

    def test_schedule_is_deterministic(self):
        picks = []
        for _ in range(2):
            jobs = _fake_jobs([3, 1, 2])
            scheduler = FairScheduler()
            picks.append(
                [scheduler.pick(jobs).job_id for _ in range(50)]
            )
        assert picks[0] == picks[1]


# ----------------------------------------------------------------------
# Lifecycle: admission, cancellation, failure isolation


class TestLifecycle:
    def test_admission_rejects_beyond_queue_limit(self):
        with Coordinator(mode="deterministic", queue_limit=2) as coord:
            coord.submit(make_spec(0))
            coord.submit(make_spec(1))
            with pytest.raises(ServeError, match="queue limit"):
                coord.submit(make_spec(2))

    def test_duplicate_job_id_rejected(self):
        with Coordinator(mode="deterministic") as coord:
            coord.submit(make_spec(0), job_id="twin")
            with pytest.raises(ServeError, match="duplicate"):
                coord.submit(make_spec(1), job_id="twin")

    def test_invalid_weight_rejected(self):
        with Coordinator(mode="deterministic") as coord:
            with pytest.raises(ServeError, match="weight"):
                coord.submit(make_spec(0), weight=0)

    def test_closed_coordinator_rejects(self):
        coord = Coordinator(mode="deterministic")
        coord.close()
        with pytest.raises(ServeError, match="closed"):
            coord.submit(make_spec(0))

    def test_cancel_queued_job(self):
        async def scenario():
            coord = Coordinator(mode="deterministic")
            handle = coord.submit(make_spec(0))
            assert handle.cancel() is True
            assert handle.state is JobState.CANCELLED
            assert handle.cancel() is False  # already terminal
            with pytest.raises(JobCancelledError):
                await handle.result()

        asyncio.run(scenario())

    def test_cancel_running_job_at_round_boundary(self):
        async def scenario():
            coord = Coordinator(mode="deterministic", max_running=2)
            victim = coord.submit(make_spec(0, max_steps=50))
            peer = coord.submit(make_spec(1))
            drain = asyncio.ensure_future(coord.drain())
            rounds = 0
            async for event in victim.watch():
                if event.kind == "round":
                    rounds += 1
                    if rounds == 2:
                        victim.cancel()
            await drain
            assert victim.state is JobState.CANCELLED
            # cancellation lands on a round boundary, not mid-round
            assert 2 <= victim._job.rounds_done < 50
            assert peer.state is JobState.DONE
            return peer

        peer = asyncio.run(scenario())
        # the surviving peer's result is unaffected by the cancellation
        (solo,) = run_jobs([make_spec(1)])
        assert peer.report.to_dict() == solo.to_dict()

    def test_failed_job_is_isolated(self):
        async def scenario():
            coord = Coordinator(mode="deterministic", max_running=2)
            bad_spec = ExperimentSpec(
                name="bad",
                scheme="nope",
                num_workers=4,
                partitions_per_worker=2,
                wait_for=3,
                max_steps=4,
            )
            bad = coord.submit(bad_spec)
            good = coord.submit(make_spec(1))
            await coord.drain()
            assert bad.state is JobState.FAILED
            assert "nope" in bad.error
            with pytest.raises(JobFailedError, match="nope"):
                await bad.result()
            assert good.state is JobState.DONE
            return good

        good = asyncio.run(scenario())
        (solo,) = run_jobs([make_spec(1)])
        assert good.report.to_dict() == solo.to_dict()

    def test_run_jobs_raises_on_failed_job(self):
        bad = ExperimentSpec(
            name="bad", scheme="nope", num_workers=4,
            partitions_per_worker=2, wait_for=3,
        )
        with pytest.raises(JobFailedError):
            run_jobs([bad])

    def test_watch_streams_state_and_round_events(self):
        async def scenario():
            coord = Coordinator(mode="deterministic")
            handle = coord.submit(make_spec(0))
            events = []

            async def watcher():
                async for event in handle.watch():
                    events.append(event)

            task = asyncio.ensure_future(watcher())
            await asyncio.sleep(0)  # let the watcher attach first
            await coord.drain()
            await task
            return handle, events

        handle, events = asyncio.run(scenario())
        kinds = {event.kind for event in events}
        assert kinds == {"state", "round"}
        assert events[-1].state == "done"
        rounds = [e for e in events if e.kind == "round"]
        assert len(rounds) == handle.report.num_steps
        # round events carry the job's simulated clock, never wall time
        assert rounds[-1].sim_time == handle.report.total_sim_time

    def test_jobs_snapshot_listing(self):
        specs = [make_spec(i) for i in range(2)]
        coord = Coordinator(mode="deterministic")
        with coord:
            for spec in specs:
                coord.submit(spec)
            asyncio.run(coord.drain())
            snapshots = coord.jobs()
        assert [s["state"] for s in snapshots] == ["done", "done"]
        assert [s["id"] for s in snapshots] == ["job-0000", "job-0001"]
        for snapshot, spec in zip(snapshots, specs):
            assert snapshot["spec_fingerprint"] == spec.fingerprint()

    def test_bad_mode_rejected(self):
        with pytest.raises(ServeError, match="mode"):
            Coordinator(mode="turbo")


# ----------------------------------------------------------------------
# Mailbox protocol: CLI-side client against a serving coordinator


def serve_once(mailbox_root, **kwargs):
    coord = Coordinator(mode="deterministic", **kwargs)
    mailbox = ServeMailbox(mailbox_root)
    with coord:
        asyncio.run(coord.serve(mailbox, once=True))
    return coord


class TestMailbox:
    def test_submit_serve_roundtrip(self, tmp_path):
        root = tmp_path / "mbox"
        client = CoordinatorClient(root)
        job_id = client.submit(make_spec(0), job_id="rt-1")
        assert client.state(job_id)["state"] == "submitted"
        serve_once(root)
        snapshot = client.state(job_id)
        assert snapshot["state"] == "done"
        report = RunReport.from_dict(snapshot["report"])
        (solo,) = run_jobs([make_spec(0)])
        assert report.to_dict() == solo.to_dict()

    def test_malformed_submission_rejected_with_hint(self, tmp_path):
        root = tmp_path / "mbox"
        client = CoordinatorClient(root)
        payload = make_spec(0).to_dict()
        payload["wiat_for"] = payload.pop("wait_for")
        (root / "inbox" / "typo.json").write_text(
            json.dumps({"spec": payload})
        )
        serve_once(root)
        snapshot = client.state("typo")
        assert snapshot["state"] == "rejected"
        assert "wait_for" in snapshot["error"]  # did-you-mean hint

    def test_mailbox_cancel(self, tmp_path):
        root = tmp_path / "mbox"
        client = CoordinatorClient(root)
        job_id = client.submit(make_spec(0))
        client.cancel(job_id)
        serve_once(root)
        assert client.state(job_id)["state"] == "cancelled"

    def test_overflow_submission_rejected(self, tmp_path):
        root = tmp_path / "mbox"
        client = CoordinatorClient(root)
        ids = [client.submit(make_spec(i)) for i in range(3)]
        serve_once(root, queue_limit=2)
        states = [client.state(job_id)["state"] for job_id in ids]
        assert sorted(states) == ["done", "done", "rejected"]

    def test_client_jobs_listing(self, tmp_path):
        root = tmp_path / "mbox"
        client = CoordinatorClient(root)
        client.submit(make_spec(0), job_id="a")
        client.submit(make_spec(1), job_id="b")
        serve_once(root)
        listing = client.jobs()
        assert [j["id"] for j in listing] == ["a", "b"]
        assert all(j["state"] == "done" for j in listing)

    def test_wait_times_out_without_coordinator(self, tmp_path):
        client = CoordinatorClient(tmp_path / "mbox")
        job_id = client.submit(make_spec(0))
        with pytest.raises(ServeError, match="timed out"):
            client.wait(job_id, timeout=0.05, poll_interval=0.01)

    def test_serving_marker_lifecycle(self, tmp_path):
        root = tmp_path / "mbox"
        client = CoordinatorClient(root)
        assert client.serving() is None
        client.submit(make_spec(0))
        serve_once(root, max_running=2)
        # retired after serve() returns
        assert client.serving() is None

    def test_duplicate_client_job_id_rejected(self, tmp_path):
        client = CoordinatorClient(tmp_path / "mbox")
        client.submit(make_spec(0), job_id="same")
        with pytest.raises(ServeError, match="duplicate"):
            client.submit(make_spec(1), job_id="same")


# ----------------------------------------------------------------------
# Spec files as the submission API


class TestSpecFiles:
    def test_json_roundtrip_preserves_fingerprint(self, tmp_path):
        spec = make_spec(0)
        path = spec.to_file(tmp_path / "spec.json")
        loaded = ExperimentSpec.from_file(path)
        assert loaded == spec
        assert loaded.fingerprint() == spec.fingerprint()

    def test_toml_roundtrip(self, tmp_path):
        spec = make_spec(1)
        path = spec.to_file(tmp_path / "spec.toml")
        loaded = ExperimentSpec.from_file(path)
        assert loaded == spec

    def test_unknown_field_gets_did_you_mean(self, tmp_path):
        payload = make_spec(0).to_dict()
        payload["wiat_for"] = payload.pop("wait_for")
        path = tmp_path / "typo.json"
        path.write_text(json.dumps(payload))
        with pytest.raises(Exception, match="wait_for"):
            ExperimentSpec.from_file(path)

    def test_submit_spec_by_path(self, tmp_path):
        spec = make_spec(0)
        path = spec.to_file(tmp_path / "spec.json")
        (from_path,) = run_jobs([path])
        (from_spec,) = run_jobs([spec])
        assert from_path.to_dict() == from_spec.to_dict()


# ----------------------------------------------------------------------
# RunReport as the shared result payload


class TestRunReport:
    def test_json_roundtrip_is_lossless(self):
        (report,) = run_jobs([make_spec(0)])
        assert RunReport.from_json(report.to_json()) == report

    def test_report_carries_spec_identity(self):
        spec = make_spec(0)
        (report,) = run_jobs([spec])
        assert report.name == spec.name
        assert report.scheme == spec.scheme
        assert report.spec_fingerprint == spec.fingerprint()

    def test_trace_report_points_at_stream(self, tmp_path):
        (report,) = run_jobs([make_spec(0)], trace_dir=tmp_path)
        trace = pathlib.Path(report.trace_path)
        assert trace.exists()
        lines = trace.read_text().splitlines()
        assert len(lines) == report.num_steps
        first = json.loads(lines[0])
        assert first["step"] == 0
