"""Tests for communication-efficient GC and its IS extension."""

from itertools import combinations

import numpy as np
import pytest

from repro.codes.comm_efficient import CommEfficientGC
from repro.core import CyclicRepetition, FractionalRepetition
from repro.exceptions import CodingError


def _grads(n, dim=11, seed=0):
    rng = np.random.default_rng(seed)
    return {p: rng.normal(size=dim) for p in range(n)}


@pytest.fixture
def code():
    # n=8 workers, c=4 per group, k=2 blocks → tolerate 2 stragglers
    # per group at half the upload size.
    return CommEfficientGC(FractionalRepetition(8, 4), blocks=2)


class TestConstruction:
    def test_requires_fr(self):
        with pytest.raises(CodingError, match="FR"):
            CommEfficientGC(CyclicRepetition(8, 4), blocks=2)

    def test_blocks_bounds(self):
        placement = FractionalRepetition(8, 4)
        with pytest.raises(CodingError):
            CommEfficientGC(placement, blocks=0)
        with pytest.raises(CodingError):
            CommEfficientGC(placement, blocks=5)

    def test_straggler_tolerance(self, code):
        assert code.max_stragglers_per_group == 2

    def test_payload_size(self, code):
        assert code.payload_elements(10) == 5
        assert code.payload_elements(11) == 6  # ceil


class TestEncoding:
    def test_payload_shorter_than_gradient(self, code):
        dim = 11
        payloads = code.encode(_grads(8, dim))
        for payload in payloads.values():
            assert payload.size == code.payload_elements(dim) < dim

    def test_same_group_different_payloads(self, code):
        payloads = code.encode(_grads(8))
        assert not np.allclose(payloads[0], payloads[1])

    def test_missing_gradient_raises(self, code):
        with pytest.raises(CodingError, match="missing"):
            code.encode_worker(0, {0: np.zeros(4)})


class TestSynchronousDecode:
    def test_exact_recovery_any_k_per_group(self, code):
        dim = 11
        grads = _grads(8, dim)
        payloads = code.encode(grads)
        full = sum(grads.values())
        # Any 2 survivors in each group suffice.
        for g1 in combinations(range(4), 2):
            for g2 in combinations(range(4, 8), 2):
                survivors = list(g1) + list(g2)
                decoded = code.decode(survivors, payloads, dim)
                np.testing.assert_allclose(decoded, full, atol=1e-8)

    def test_full_availability(self, code):
        dim = 7
        grads = _grads(8, dim)
        payloads = code.encode(grads)
        np.testing.assert_allclose(
            code.decode(range(8), payloads, dim), sum(grads.values()),
            atol=1e-8,
        )

    def test_group_below_k_fails(self, code):
        dim = 5
        payloads = code.encode(_grads(8, dim))
        # Group 1 has only one survivor.
        with pytest.raises(CodingError, match="full recovery"):
            code.decode([0, 1, 4], payloads, dim)

    def test_k_equals_c_needs_everyone_in_group(self):
        code = CommEfficientGC(FractionalRepetition(4, 2), blocks=2)
        dim = 6
        grads = _grads(4, dim)
        payloads = code.encode(grads)
        np.testing.assert_allclose(
            code.decode(range(4), payloads, dim), sum(grads.values()),
            atol=1e-8,
        )
        with pytest.raises(CodingError):
            code.decode([0, 2, 3], payloads, dim)

    def test_k_one_is_plain_fr(self):
        """k = 1: each worker sends (a scalar multiple of) the group sum;
        one survivor per group suffices — classic FR behaviour."""
        code = CommEfficientGC(FractionalRepetition(4, 2), blocks=1)
        dim = 6
        grads = _grads(4, dim)
        payloads = code.encode(grads)
        decoded = code.decode([0, 2], payloads, dim)
        np.testing.assert_allclose(decoded, sum(grads.values()), atol=1e-8)


class TestIgnoreStragglerExtension:
    def test_partial_recovery_per_group(self, code):
        dim = 9
        grads = _grads(8, dim)
        payloads = code.encode(grads)
        # Group 0 has 2 survivors (decodable); group 1 has 1 (lost).
        total, recovered = code.decode_partial([0, 3, 5], payloads, dim)
        assert recovered == frozenset(range(4))
        expected = sum(grads[p] for p in range(4))
        np.testing.assert_allclose(total, expected, atol=1e-8)

    def test_nothing_recoverable_raises(self, code):
        dim = 5
        payloads = code.encode(_grads(8, dim))
        with pytest.raises(CodingError, match="no group"):
            code.decode_partial([0, 4], payloads, dim)

    def test_empty_available_raises(self, code):
        with pytest.raises(CodingError):
            code.decode_partial([], {}, 4)

    def test_missing_payload_raises(self, code):
        with pytest.raises(CodingError, match="payloads"):
            code.decode_partial([0, 1], {0: np.zeros(3)}, 5)

    def test_recovery_monotone_in_survivors(self, code):
        dim = 9
        grads = _grads(8, dim)
        payloads = code.encode(grads)
        _, rec_small = code.decode_partial([0, 1], payloads, dim)
        _, rec_big = code.decode_partial([0, 1, 4, 5], payloads, dim)
        assert rec_small < rec_big

    def test_communication_vs_tolerance_tradeoff(self):
        """Higher k → smaller uploads but fewer tolerable stragglers."""
        placement = FractionalRepetition(8, 4)
        dim = 100
        sizes = []
        tolerances = []
        for k in (1, 2, 4):
            code = CommEfficientGC(placement, blocks=k)
            sizes.append(code.payload_elements(dim))
            tolerances.append(code.max_stragglers_per_group)
        assert sizes == sorted(sizes, reverse=True)
        assert tolerances == sorted(tolerances, reverse=True)
