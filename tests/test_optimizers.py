"""Tests for SGD and learning-rate schedules."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.training import SGD, constant_lr, inverse_time_decay, step_decay


class TestSchedules:
    def test_constant(self):
        sched = constant_lr(0.1)
        assert sched(0) == sched(1000) == 0.1

    def test_constant_validation(self):
        with pytest.raises(ConfigurationError):
            constant_lr(0.0)

    def test_step_decay(self):
        sched = step_decay(1.0, factor=0.5, every=10)
        assert sched(0) == 1.0
        assert sched(9) == 1.0
        assert sched(10) == 0.5
        assert sched(20) == 0.25

    def test_step_decay_validation(self):
        with pytest.raises(ConfigurationError):
            step_decay(1.0, factor=1.5, every=10)
        with pytest.raises(ConfigurationError):
            step_decay(1.0, factor=0.5, every=0)

    def test_inverse_time(self):
        sched = inverse_time_decay(1.0, rate=1.0)
        assert sched(0) == 1.0
        assert sched(1) == pytest.approx(0.5)
        assert sched(9) == pytest.approx(0.1)

    def test_inverse_time_validation(self):
        with pytest.raises(ConfigurationError):
            inverse_time_decay(-1.0, 0.1)


class TestSGD:
    def test_vanilla_update(self):
        opt = SGD(0.1)
        new = opt.update(np.array([1.0, 2.0]), np.array([1.0, -1.0]))
        np.testing.assert_allclose(new, [0.9, 2.1])

    def test_does_not_mutate_inputs(self):
        opt = SGD(0.1)
        params = np.array([1.0])
        grad = np.array([1.0])
        opt.update(params, grad)
        assert params[0] == 1.0
        assert grad[0] == 1.0

    def test_step_count_advances(self):
        opt = SGD(0.1)
        assert opt.step_count == 0
        opt.update(np.zeros(2), np.zeros(2))
        assert opt.step_count == 1

    def test_schedule_used(self):
        opt = SGD(step_decay(1.0, 0.5, every=1))
        p = np.array([0.0])
        g = np.array([1.0])
        p = opt.update(p, g)  # lr 1.0
        assert p[0] == pytest.approx(-1.0)
        p = opt.update(p, g)  # lr 0.5
        assert p[0] == pytest.approx(-1.5)

    def test_current_lr(self):
        opt = SGD(step_decay(1.0, 0.1, every=1))
        assert opt.current_lr() == 1.0
        opt.update(np.zeros(1), np.zeros(1))
        assert opt.current_lr() == pytest.approx(0.1)

    def test_momentum_accumulates(self):
        opt = SGD(1.0, momentum=0.9)
        p = np.array([0.0])
        g = np.array([1.0])
        p = opt.update(p, g)
        assert p[0] == pytest.approx(-1.0)  # v = 1
        p = opt.update(p, g)
        assert p[0] == pytest.approx(-1.0 - 1.9)  # v = 0.9 + 1

    def test_weight_decay(self):
        opt = SGD(0.1, weight_decay=0.5)
        new = opt.update(np.array([2.0]), np.array([0.0]))
        np.testing.assert_allclose(new, [2.0 - 0.1 * 0.5 * 2.0])

    def test_reset(self):
        opt = SGD(1.0, momentum=0.9)
        opt.update(np.zeros(1), np.ones(1))
        opt.reset()
        assert opt.step_count == 0
        p = opt.update(np.array([0.0]), np.array([1.0]))
        assert p[0] == pytest.approx(-1.0)  # fresh velocity

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            SGD(0.1).update(np.zeros(2), np.zeros(3))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SGD(0.1, momentum=1.0)
        with pytest.raises(ConfigurationError):
            SGD(0.1, weight_decay=-0.1)

    def test_converges_on_quadratic(self):
        """Minimise ½‖p − t‖² — SGD with momentum must reach t."""
        target = np.array([3.0, -2.0])
        opt = SGD(0.2, momentum=0.5)
        p = np.zeros(2)
        for _ in range(200):
            p = opt.update(p, p - target)
        np.testing.assert_allclose(p, target, atol=1e-6)
