"""Tests for loss functions and their analytic gradients."""

import numpy as np
import pytest

from repro.exceptions import TrainingError
from repro.training import BinaryCrossEntropy, MeanSquaredError, SoftmaxCrossEntropy


def numeric_grad(fn, pred, eps=1e-6):
    grad = np.zeros_like(pred, dtype=float)
    it = np.nditer(pred, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        bumped = pred.astype(float).copy()
        bumped[idx] += eps
        hi = fn(bumped)
        bumped[idx] -= 2 * eps
        lo = fn(bumped)
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


class TestMSE:
    def test_zero_at_perfect_prediction(self):
        pred = np.array([1.0, 2.0])
        assert MeanSquaredError.value(pred, pred) == 0.0

    def test_known_value(self):
        assert MeanSquaredError.value(
            np.array([1.0, 3.0]), np.array([0.0, 0.0])
        ) == pytest.approx(0.5 * (1 + 9) / 2)

    def test_gradient_matches_numeric(self, rng):
        pred = rng.normal(size=8)
        target = rng.normal(size=8)
        analytic = MeanSquaredError.grad(pred, target)
        numeric = numeric_grad(lambda p: MeanSquaredError.value(p, target), pred)
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_batch_mismatch(self):
        with pytest.raises(TrainingError):
            MeanSquaredError.value(np.zeros(3), np.zeros(4))

    def test_empty_batch(self):
        with pytest.raises(TrainingError):
            MeanSquaredError.value(np.zeros(0), np.zeros(0))


class TestBinaryCrossEntropy:
    def test_confident_correct_is_small(self):
        scores = np.array([10.0, -10.0])
        targets = np.array([1, 0])
        assert BinaryCrossEntropy.value(scores, targets) < 1e-3

    def test_confident_wrong_is_large(self):
        scores = np.array([10.0])
        targets = np.array([0])
        assert BinaryCrossEntropy.value(scores, targets) > 5.0

    def test_zero_scores_give_log2(self):
        scores = np.zeros(4)
        targets = np.array([0, 1, 0, 1])
        assert BinaryCrossEntropy.value(scores, targets) == pytest.approx(np.log(2))

    def test_numerically_stable_at_extremes(self):
        scores = np.array([1000.0, -1000.0])
        targets = np.array([0, 1])
        val = BinaryCrossEntropy.value(scores, targets)
        assert np.isfinite(val)
        grad = BinaryCrossEntropy.grad(scores, targets)
        assert np.isfinite(grad).all()

    def test_gradient_matches_numeric(self, rng):
        scores = rng.normal(size=8)
        targets = rng.integers(2, size=8)
        analytic = BinaryCrossEntropy.grad(scores, targets)
        numeric = numeric_grad(
            lambda s: BinaryCrossEntropy.value(s, targets), scores
        )
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)


class TestSoftmaxCrossEntropy:
    def test_uniform_logits_give_log_k(self):
        logits = np.zeros((4, 5))
        targets = np.array([0, 1, 2, 3])
        assert SoftmaxCrossEntropy.value(logits, targets) == pytest.approx(np.log(5))

    def test_confident_correct_small(self):
        logits = np.array([[20.0, 0.0, 0.0]])
        assert SoftmaxCrossEntropy.value(logits, np.array([0])) < 1e-6

    def test_shift_invariance(self, rng):
        logits = rng.normal(size=(6, 4))
        targets = rng.integers(4, size=6)
        shifted = logits + 100.0
        assert SoftmaxCrossEntropy.value(logits, targets) == pytest.approx(
            SoftmaxCrossEntropy.value(shifted, targets)
        )

    def test_stable_at_large_logits(self):
        logits = np.array([[1e4, -1e4, 0.0]])
        val = SoftmaxCrossEntropy.value(logits, np.array([1]))
        assert np.isfinite(val)

    def test_gradient_matches_numeric(self, rng):
        logits = rng.normal(size=(5, 3))
        targets = rng.integers(3, size=5)
        analytic = SoftmaxCrossEntropy.grad(logits, targets)
        numeric = numeric_grad(
            lambda z: SoftmaxCrossEntropy.value(z, targets), logits
        )
        np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_gradient_rows_sum_to_zero(self, rng):
        logits = rng.normal(size=(5, 3))
        targets = rng.integers(3, size=5)
        grad = SoftmaxCrossEntropy.grad(logits, targets)
        np.testing.assert_allclose(grad.sum(axis=1), 0.0, atol=1e-12)
