"""Tests for :mod:`repro.env` — the unified environment layer.

Three layers of pinning, mirroring ``tests/test_scheme.py``:

* **Golden equivalence** — ``tests/golden/environments.json`` was
  recorded at the commit introducing ``repro.env`` (see
  ``tests/golden/record_environment_goldens.py``); every family built
  by registry name must reproduce its fingerprint and its sampled
  stream bit for bit.
* **Registry/Environment unit tests** — lookup, aliases, did-you-mean
  errors, parameter validation, provenance specs, the composite
  :class:`~repro.env.Environment` (fingerprint / describe / reset /
  sections round-trip / simulator wiring), and trace save/load.
* **Hypothesis properties** — registry-built models consume the RNG
  exactly as direct construction does (identical streams *and*
  identical generator end-state), and ``sample_round`` is bit-for-bit
  the per-worker scalar loop for every family, nested composites
  included.
"""

import copy
import json
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.env import (
    ENV_REGISTRY,
    Environment,
    LAYERS,
    delay_model_from,
    make_compute_model,
    make_contention_model,
    make_delay_model,
    make_failure_model,
    make_model,
    make_network_model,
    model_fingerprint,
    model_spec_problems,
    registered_models,
    resolve_model,
    spec_of,
)
from repro.exceptions import ConfigurationError
from repro.simulation.cluster import ClusterSimulator, ComputeModel
from repro.simulation.network import NetworkModel
from repro.straggler.failures import (
    CompositeFailures,
    PermanentCrashes,
    TransientDropouts,
)
from repro.straggler.models import (
    BernoulliStraggler,
    BurstyDelay,
    DiurnalDelay,
    ExponentialDelay,
    MixtureDelay,
    NoDelay,
    ParetoDelay,
    PersistentStragglers,
    ShiftedExponentialDelay,
)
from repro.straggler.traces import DelayTrace, TraceReplayModel

GOLDEN = json.loads(
    (pathlib.Path(__file__).parent / "golden" / "environments.json")
    .read_text()
)

WORKERS = list(range(8))
STEPS = 4
ELEMENTS = 10_000


# ----------------------------------------------------------------------
# Golden equivalence
# ----------------------------------------------------------------------
def _case_id(case):
    return f"{case['layer']}:{case['kind']}"


class TestGoldenEnvironments:
    @pytest.mark.parametrize("case", GOLDEN["cases"], ids=_case_id)
    def test_fingerprint_pinned(self, case):
        model = make_model(case["layer"], case["kind"], **case["params"])
        assert model_fingerprint(model) == case["fingerprint"]

    @pytest.mark.parametrize("case", GOLDEN["cases"], ids=_case_id)
    def test_behaviour_pinned(self, case):
        model = make_model(case["layer"], case["kind"], **case["params"])
        layer, probe = case["layer"], case["probe"]
        if layer == "delay":
            rng = np.random.default_rng(7)
            for step, expected in enumerate(probe["delays"]):
                got = model.sample_round(WORKERS, step, rng)
                assert [float(x) for x in got] == expected
        elif layer == "failure":
            rng = np.random.default_rng(7)
            for step, expected in enumerate(probe["alive"]):
                got = [model.is_alive(w, step, rng) for w in WORKERS]
                assert got == expected
        elif layer == "compute":
            if "worker_times" in probe:
                got = [
                    [model.step_time_for(w, c) for w in WORKERS]
                    for c in range(1, 5)
                ]
                assert got == probe["worker_times"]
            else:
                assert [model.step_time(c) for c in range(1, 5)] == probe["times"]
        elif layer == "network":
            assert model.broadcast_time(ELEMENTS, len(WORKERS)) == probe["broadcast"]
            assert model.transfer_time(ELEMENTS) == probe["transfer"]
        elif layer == "contention":
            starts = {w: 0.1 * w for w in WORKERS}
            result = model.round_arrivals(starts, ELEMENTS)
            assert {str(w): t for w, t in result.arrivals.items()} == probe["arrivals"]

    def test_every_registered_family_has_a_golden(self):
        """No family sneaks in unpinned (parameterless kinds aside)."""
        covered = {(c["layer"], c["kind"]) for c in GOLDEN["cases"]}
        for layer in ("delay", "failure"):
            for kind in registered_models(layer):
                assert (layer, kind) in covered, f"no golden for {layer}:{kind}"


# ----------------------------------------------------------------------
# Registry == direct construction, stream + end-state identical
# ----------------------------------------------------------------------
#: kind → (registry params, equivalent direct construction).
DIRECT_EQUIVALENTS = [
    ("none", {}, lambda: NoDelay()),
    ("exponential", {"mean": 1.5}, lambda: ExponentialDelay(1.5)),
    ("exponential", {"mean": 2.0, "affected": [0, 2, 5]},
     lambda: ExponentialDelay(2.0, affected=[0, 2, 5])),
    ("shifted-exponential", {"shift": 3.0, "mean": 0.5},
     lambda: ShiftedExponentialDelay(3.0, 0.5)),
    ("pareto", {"alpha": 2.5, "scale": 0.3}, lambda: ParetoDelay(2.5, 0.3)),
    ("bernoulli",
     {"probability": 0.3, "delay": {"kind": "exponential", "mean": 2.0}},
     lambda: BernoulliStraggler(0.3, ExponentialDelay(2.0))),
    ("persistent",
     {"stragglers": [0, 1], "mean": 3.0, "background_mean": 0.2},
     lambda: PersistentStragglers(
         [0, 1], ExponentialDelay(3.0),
         background_delay=ExponentialDelay(0.2))),
    ("persistent",
     {"stragglers": [1, 3],
      "delay": {"kind": "shifted-exponential", "shift": 3.0, "mean": 0.5},
      "background": {"kind": "exponential", "mean": 0.2}},
     lambda: PersistentStragglers(
         [1, 3], ShiftedExponentialDelay(3.0, 0.5),
         background_delay=ExponentialDelay(0.2))),
    ("diurnal",
     {"base": {"kind": "exponential", "mean": 1.0},
      "period_steps": 3, "amplitude": 0.5},
     lambda: DiurnalDelay(ExponentialDelay(1.0), 3, 0.5)),
    ("bursty",
     {"burst": {"kind": "exponential", "mean": 4.0},
      "enter_burst": 0.3, "exit_burst": 0.4},
     lambda: BurstyDelay(ExponentialDelay(4.0), 0.3, 0.4)),
    ("mixture",
     {"models": [{"kind": "exponential", "mean": 0.2},
                 {"kind": "shifted-exponential", "shift": 2.0, "mean": 1.0}],
      "weights": [0.7, 0.3]},
     lambda: MixtureDelay(
         [ExponentialDelay(0.2), ShiftedExponentialDelay(2.0, 1.0)],
         [0.7, 0.3])),
]


def _ids(entry):
    kind, params, _ = entry
    return f"{kind}-{len(params)}p"


class TestRegistryDirectEquivalence:
    @pytest.mark.parametrize("entry", DIRECT_EQUIVALENTS, ids=_ids)
    def test_stream_and_state_identical(self, entry):
        kind, params, direct = entry
        via_registry = make_delay_model(kind, **copy.deepcopy(params))
        via_ctor = direct()
        rng_a = np.random.default_rng(123)
        rng_b = np.random.default_rng(123)
        for step in range(STEPS):
            a = [via_registry.sample(w, step, rng_a) for w in WORKERS]
            b = [via_ctor.sample(w, step, rng_b) for w in WORKERS]
            assert a == b
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @pytest.mark.parametrize("entry", DIRECT_EQUIVALENTS, ids=_ids)
    def test_sample_round_matches_scalar_loop(self, entry):
        kind, params, _ = entry
        batched = make_delay_model(kind, **copy.deepcopy(params))
        looped = make_delay_model(kind, **copy.deepcopy(params))
        rng_a = np.random.default_rng(99)
        rng_b = np.random.default_rng(99)
        for step in range(STEPS):
            a = batched.sample_round(WORKERS, step, rng_a)
            b = np.array(
                [looped.sample(w, step, rng_b) for w in WORKERS], dtype=float
            )
            np.testing.assert_array_equal(a, b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @settings(max_examples=50, deadline=None)
    @given(
        mean=st.floats(0.01, 10.0, allow_nan=False),
        seed=st.integers(0, 2**31 - 1),
        num_affected=st.integers(0, 8),
    )
    def test_exponential_property(self, mean, seed, num_affected):
        affected = list(range(num_affected)) if num_affected < 8 else None
        kwargs = {"mean": mean}
        if affected is not None:
            kwargs["affected"] = affected
        via_registry = make_delay_model("exponential", **kwargs)
        via_ctor = ExponentialDelay(mean, affected=affected)
        rng_a = np.random.default_rng(seed)
        rng_b = np.random.default_rng(seed)
        a = via_registry.sample_round(WORKERS, 0, rng_a)
        b = np.array([via_ctor.sample(w, 0, rng_b) for w in WORKERS])
        np.testing.assert_array_equal(a, b)
        assert rng_a.bit_generator.state == rng_b.bit_generator.state

    @settings(max_examples=25, deadline=None)
    @given(
        shift=st.floats(0.0, 5.0, allow_nan=False),
        mean=st.floats(0.0, 5.0, allow_nan=False),
        alpha=st.floats(1.1, 5.0, allow_nan=False),
        scale=st.floats(0.01, 2.0, allow_nan=False),
        seed=st.integers(0, 2**31 - 1),
    )
    def test_shifted_and_pareto_property(self, shift, mean, alpha, scale, seed):
        for kind, params, direct in (
            ("shifted-exponential", {"shift": shift, "mean": mean},
             ShiftedExponentialDelay(shift, mean)),
            ("pareto", {"alpha": alpha, "scale": scale},
             ParetoDelay(alpha, scale)),
        ):
            rng_a = np.random.default_rng(seed)
            rng_b = np.random.default_rng(seed)
            a = make_delay_model(kind, **params).sample_round(WORKERS, 0, rng_a)
            b = np.array([direct.sample(w, 0, rng_b) for w in WORKERS])
            np.testing.assert_array_equal(a, b)
            assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_failure_models_equivalent(self):
        pairs = [
            (make_failure_model("permanent-crashes",
                                crashed_workers=[2], at_step=1),
             PermanentCrashes([2], at_step=1)),
            (make_failure_model("transient-dropouts", probability=0.2),
             TransientDropouts(0.2)),
            (make_failure_model(
                "composite",
                models=[{"kind": "permanent-crashes", "crashed_workers": [5]},
                        {"kind": "transient-dropouts", "probability": 0.1}]),
             CompositeFailures(
                 [PermanentCrashes([5]), TransientDropouts(0.1)])),
        ]
        for via_registry, via_ctor in pairs:
            rng_a = np.random.default_rng(5)
            rng_b = np.random.default_rng(5)
            for step in range(STEPS):
                a = [via_registry.is_alive(w, step, rng_a) for w in WORKERS]
                b = [via_ctor.is_alive(w, step, rng_b) for w in WORKERS]
                assert a == b
            assert rng_a.bit_generator.state == rng_b.bit_generator.state

    def test_compute_and_network_equivalent(self):
        assert make_compute_model("uniform", base=0.05, per_partition=0.1) == \
            ComputeModel(0.05, 0.1)
        assert make_network_model(
            "uniform", latency=0.002, bandwidth=1e9
        ) == NetworkModel(latency=0.002, bandwidth=1e9)
        ideal = make_network_model("ideal")
        assert ideal.latency == 0.0 and ideal.bandwidth == float("inf")


# ----------------------------------------------------------------------
# sample_round / sample_all contracts
# ----------------------------------------------------------------------
class TestSampleRound:
    def test_sample_all_shim_matches_sample_round(self):
        model = make_delay_model("exponential", mean=1.5)
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        as_dict = model.sample_all(WORKERS, 0, rng_a)
        as_array = model.sample_round(WORKERS, 0, rng_b)
        assert list(as_dict) == WORKERS
        np.testing.assert_array_equal(
            np.array([as_dict[w] for w in WORKERS]), as_array
        )

    def test_empty_worker_list(self):
        for kind in ("none", "exponential", "pareto"):
            model = make_delay_model(
                kind, **({"alpha": 2.0, "scale": 1.0} if kind == "pareto" else {})
            )
            rng = np.random.default_rng(0)
            state = copy.deepcopy(rng.bit_generator.state)
            out = model.sample_round([], 0, rng)
            assert out.shape == (0,)
            assert rng.bit_generator.state == state  # nothing consumed

    def test_trace_replay_sample_round(self):
        table = np.array([[0.0, 1.0, 2.0], [3.0, 4.0, 5.0]])
        model = TraceReplayModel(DelayTrace(table))
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(
            model.sample_round([2, 0], 1, rng), [5.0, 3.0]
        )
        # Steps wrap module the trace length, as scalar sample does.
        np.testing.assert_array_equal(
            model.sample_round([1], 2, rng), [1.0]
        )


# ----------------------------------------------------------------------
# Registry machinery
# ----------------------------------------------------------------------
class TestRegistryMachinery:
    def test_layer_catalogue_complete(self):
        assert set(LAYERS) == set(ENV_REGISTRY)
        assert "exponential" in registered_models("delay")
        assert "transient-dropouts" in registered_models("failure")
        assert "uniform" in registered_models("compute")
        assert "ideal" in registered_models("network")
        assert "fair-share" in registered_models("contention")

    def test_aliases_resolve(self):
        assert resolve_model("delay", "exp").kind == "exponential"
        assert resolve_model("delay", "trace").kind == "trace-replay"
        assert resolve_model("failure", "dropouts").kind == "transient-dropouts"
        assert resolve_model("contention", "shared-link").kind == "fair-share"

    def test_unknown_kind_did_you_mean(self):
        with pytest.raises(ConfigurationError, match="exponential"):
            make_delay_model("exponentail")
        with pytest.raises(ConfigurationError, match="unknown delay model"):
            make_delay_model("nope")

    def test_unknown_parameter_rejected_with_accepted_list(self):
        with pytest.raises(ConfigurationError, match="mean"):
            make_delay_model("exponential", meen=2.0)

    def test_spec_of_registry_built(self):
        model = make_delay_model("pareto", alpha=2.5, scale=0.3)
        assert spec_of(model) == {"kind": "pareto", "alpha": 2.5, "scale": 0.3}

    def test_spec_of_nested_registry_built(self):
        model = make_delay_model(
            "diurnal", base={"kind": "exponential", "mean": 0.5},
            period_steps=10,
        )
        spec = spec_of(model)
        assert spec["kind"] == "diurnal"
        assert spec["base"] == {"kind": "exponential", "mean": 0.5}

    def test_spec_of_direct_built_falls_back_to_class(self):
        spec = spec_of(ParetoDelay(2.0, 1.0))
        assert spec["class"] == "ParetoDelay"

    def test_fingerprint_is_stable_and_parameter_sensitive(self):
        a = model_fingerprint(make_delay_model("exponential", mean=1.0))
        b = model_fingerprint(make_delay_model("exponential", mean=1.0))
        c = model_fingerprint(make_delay_model("exponential", mean=2.0))
        assert a == b
        assert a != c

    def test_delay_model_from_coerces(self):
        assert isinstance(delay_model_from("none"), NoDelay)
        assert isinstance(
            delay_model_from({"kind": "exponential", "mean": 1.0}),
            ExponentialDelay,
        )
        model = ExponentialDelay(2.0)
        assert delay_model_from(model) is model

    def test_delay_model_from_wraps_traces(self):
        trace = DelayTrace(np.array([[0.0, 1.0]]))
        model = delay_model_from(trace)
        assert isinstance(model, TraceReplayModel)
        assert spec_of(model)["kind"] == "trace-replay"

    def test_contention_none_returns_none(self):
        assert make_contention_model("none") is None

    def test_model_spec_problems(self):
        assert model_spec_problems("delay", "exponential") == []
        assert model_spec_problems(
            "delay", {"kind": "exponential", "mean": 1.0}
        ) == []
        problems = model_spec_problems("delay", {"kind": "exponentail"})
        assert problems and "exponential" in problems[0]
        problems = model_spec_problems(
            "delay", {"kind": "exponential", "meen": 1.0}
        )
        assert problems and "meen" in problems[0]
        problems = model_spec_problems(
            "delay",
            {"kind": "mixture",
             "models": [{"kind": "parato", "alpha": 2.0, "scale": 1.0}],
             "weights": [1.0]},
        )
        assert problems and "pareto" in problems[0]

    def test_persistent_requires_exactly_one_delay_spec(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            make_delay_model("persistent", stragglers=[0])
        with pytest.raises(ConfigurationError, match="exactly one"):
            make_delay_model(
                "persistent", stragglers=[0], mean=1.0,
                delay={"kind": "exponential", "mean": 1.0},
            )

    def test_trace_replay_requires_exactly_one_source(self):
        with pytest.raises(ConfigurationError, match="exactly one"):
            make_delay_model("trace-replay")


# ----------------------------------------------------------------------
# DelayTrace persistence
# ----------------------------------------------------------------------
class TestTracePersistence:
    def test_save_load_round_trip(self, tmp_path):
        trace = DelayTrace.record(
            ExponentialDelay(1.0), 4, 3, np.random.default_rng(0)
        )
        path = tmp_path / "trace.json"
        trace.save(path)
        loaded = DelayTrace.load(path)
        np.testing.assert_array_equal(trace.delays, loaded.delays)

    def test_registry_trace_replay_from_path(self, tmp_path):
        trace = DelayTrace.record(
            ExponentialDelay(1.0), 4, 3, np.random.default_rng(0)
        )
        path = tmp_path / "trace.json"
        trace.save(path)
        model = make_delay_model("trace-replay", path=str(path))
        rng = np.random.default_rng(0)
        np.testing.assert_array_equal(
            model.sample_round([0, 1, 2, 3], 0, rng), trace.delays[0]
        )

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(ConfigurationError, match="not found"):
            DelayTrace.load(tmp_path / "missing.json")


# ----------------------------------------------------------------------
# The composite Environment
# ----------------------------------------------------------------------
class TestEnvironment:
    def test_defaults(self):
        env = Environment()
        assert isinstance(env.delay, NoDelay)
        assert env.contention is None
        assert env.compute == ComputeModel()
        assert env.network == NetworkModel()

    def test_sections_round_trip(self):
        sections = {
            "delay": {"kind": "exponential", "mean": 1.5},
            "failure": {"kind": "transient-dropouts", "probability": 0.1},
            "compute": {"kind": "uniform", "base": 0.05, "per_partition": 0.1},
        }
        env = Environment.from_sections(sections)
        rebuilt = Environment.from_sections(env.spec())
        assert rebuilt.fingerprint() == env.fingerprint()

    def test_unknown_section_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            Environment.from_sections({"dealy": {"kind": "exponential"}})

    def test_fingerprint_parameter_sensitive(self):
        base = Environment(delay={"kind": "exponential", "mean": 1.0})
        same = Environment(delay={"kind": "exponential", "mean": 1.0})
        other = Environment(delay={"kind": "exponential", "mean": 2.0})
        assert base.fingerprint() == same.fingerprint()
        assert base.fingerprint() != other.fingerprint()

    def test_describe_names_every_layer(self):
        text = Environment(
            delay={"kind": "pareto", "alpha": 2.0, "scale": 0.5}
        ).describe()
        for label in ("delay", "failure", "compute", "network", "contention"):
            assert label in text
        assert "pareto" in text

    def test_reset_replays_stateful_models(self):
        env = Environment(delay={
            "kind": "bursty", "burst": {"kind": "exponential", "mean": 4.0},
            "enter_burst": 0.5, "exit_burst": 0.1,
        })
        first = [
            [float(x) for x in env.delay.sample_round(
                WORKERS, step, np.random.default_rng(1))]
            for step in range(STEPS)
        ]
        env.reset()
        replay = [
            [float(x) for x in env.delay.sample_round(
                WORKERS, step, np.random.default_rng(1))]
            for step in range(STEPS)
        ]
        assert first == replay

    def test_simulator_wiring(self):
        env = Environment(delay={"kind": "exponential", "mean": 0.5})
        sim = env.simulator(
            num_workers=4, partitions_per_worker=2,
            rng=np.random.default_rng(0),
        )
        from repro.simulation.policies import WaitForK

        result = sim.run_round(0, WaitForK(2))
        assert len(result.arrivals) == 4

    def test_simulator_equals_direct_cluster(self):
        env = Environment(delay={"kind": "exponential", "mean": 0.5})
        direct = ClusterSimulator(
            num_workers=4, partitions_per_worker=2,
            delay_model=ExponentialDelay(0.5),
            rng=np.random.default_rng(0),
        )
        via_env = env.simulator(
            num_workers=4, partitions_per_worker=2,
            rng=np.random.default_rng(0),
        )
        from repro.simulation.policies import WaitForK

        for step in range(3):
            a = direct.run_round(step, WaitForK(2))
            b = via_env.run_round(step, WaitForK(2))
            assert a.arrivals == b.arrivals

    def test_environment_excludes_individual_model_args(self):
        env = Environment()
        with pytest.raises(ConfigurationError, match="delay_model"):
            ClusterSimulator(
                num_workers=2, partitions_per_worker=1,
                environment=env, delay_model=NoDelay(),
            )

    def test_spec_problems(self):
        assert Environment.spec_problems({
            "delay": {"kind": "exponential", "mean": 1.0},
        }) == []
        problems = Environment.spec_problems({
            "delay": {"kind": "exponentail"},
        })
        assert problems and "exponential" in problems[0]
        problems = Environment.spec_problems({"dealy": {}})
        assert problems and "dealy" in problems[0]
