"""Tests for the experiment harnesses (small, fast configurations)."""

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments import (
    Fig11Config,
    Fig12Config,
    Fig13Config,
    fig11_tables,
    fig13_tables,
    recovery_table,
    run,
    run_condition,
    run_fig12,
    run_fig13,
)

SMALL11 = Fig11Config(num_steps=40, wait_values=(6, 12), expected_delays=(1.5,),
                      num_delayed_options=(12,))
SMALL12 = Fig12Config(num_trials=1, max_steps=40, loss_threshold=0.0,
                      recovery_trials=400, dataset_samples=512)
SMALL13 = Fig13Config(num_steps=30, recovery_trials=400, dataset_samples=512)


class TestConfigValidation:
    def test_fig11_bad_wait(self):
        with pytest.raises(ConfigurationError):
            Fig11Config(wait_values=(0,))

    def test_fig11_bad_delayed(self):
        with pytest.raises(ConfigurationError):
            Fig11Config(num_delayed_options=(99,))

    def test_fig12_bad_wait(self):
        with pytest.raises(ConfigurationError):
            Fig12Config(wait_values=(9,))

    def test_fig13_bad_c1(self):
        with pytest.raises(ConfigurationError):
            Fig13Config(c1_values=(7,))

    def test_fig13_bad_wait(self):
        with pytest.raises(ConfigurationError):
            Fig13Config(wait_for=0)


class TestFig11:
    def test_schemes_present(self):
        points = run_condition(SMALL11, 1.5, 12)
        names = {p.scheme for p in points}
        assert "sync-sgd" in names and "gc" in names
        assert any(n.startswith("is-gc") for n in names)

    def test_isgc_faster_than_sync_under_stragglers(self):
        points = run_condition(SMALL11, 1.5, 12)
        sync = next(p for p in points if p.scheme == "sync-sgd")
        isgc = next(p for p in points if p.scheme == "is-gc(w=6)")
        assert isgc.avg_step_time < sync.avg_step_time

    def test_isgc_overhead_over_issgd_is_constant_compute(self):
        points = run_condition(SMALL11, 1.5, 12)
        issgd = next(p for p in points if p.scheme == "is-sgd(w=6)")
        isgc = next(p for p in points if p.scheme == "is-gc(w=6)")
        expected_gap = SMALL11.per_partition_compute
        assert isgc.avg_step_time - issgd.avg_step_time == pytest.approx(
            expected_gap, rel=0.01
        )

    def test_gc_slower_than_sync_with_heavy_compute(self):
        """The Fig. 11(a) observation the paper highlights."""
        points = run_condition(SMALL11, 1.5, 12)
        sync = next(p for p in points if p.scheme == "sync-sgd")
        gc = next(p for p in points if p.scheme == "gc")
        assert gc.avg_step_time > sync.avg_step_time

    def test_tables_render(self):
        tables = fig11_tables(SMALL11)
        assert len(tables) == 1
        assert "Fig 11" in tables[0].render()


class TestFig12:
    def test_recovery_table_shape(self):
        table = recovery_table(SMALL12)
        assert len(table.rows) == 4

    def test_training_cells_cover_schemes(self):
        results = run_fig12(SMALL12)
        assert set(results) == {1, 2, 3, 4}
        names_w2 = {p.scheme for p in results[2]}
        assert {"is-sgd", "is-gc-fr", "is-gc-cr"} <= names_w2
        names_w3 = {p.scheme for p in results[3]}
        assert "gc" in names_w3  # w = n - c + 1
        names_w4 = {p.scheme for p in results[4]}
        assert "sync-sgd" in names_w4

    def test_isgc_recovers_more_than_issgd(self):
        results = run_fig12(SMALL12)
        for w in (1, 2, 3):
            issgd = next(p for p in results[w] if p.scheme == "is-sgd")
            isgc = next(p for p in results[w] if p.scheme == "is-gc-fr")
            assert isgc.recovery_pct > issgd.recovery_pct

    def test_fr_recovers_at_least_cr(self):
        results = run_fig12(SMALL12)
        for w in (1, 2, 3, 4):
            fr = next(p for p in results[w] if p.scheme == "is-gc-fr")
            cr = next(p for p in results[w] if p.scheme == "is-gc-cr")
            assert fr.recovery_pct >= cr.recovery_pct - 1e-9


class TestFig13:
    def test_recovery_monotone_in_c1(self):
        points = run_fig13(SMALL13)
        recoveries = [p.mean_recovered for p in points]
        assert all(b >= a - 1e-9 for a, b in zip(recoveries, recoveries[1:]))

    def test_endpoints(self):
        points = run_fig13(SMALL13)
        assert points[0].c1 == 0 and points[0].c2 == 4  # CR end
        assert points[-1].c1 == 3  # FR-equivalent end

    def test_loss_curves_recorded(self):
        points = run_fig13(SMALL13)
        for p in points:
            assert len(p.loss_curve) == SMALL13.num_steps

    def test_tables_render(self):
        tables = fig13_tables(SMALL13)
        assert len(tables) == 2
        assert "Fig 13(a)" in tables[0].render()


class TestRunner:
    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run("fig99")
