"""End-to-end observability tests: simulator → tracer → JSONL → aggregates.

The headline invariant: exporting a traced run to JSONL and
re-aggregating the loaded records reproduces the live per-scheme
statistics *exactly* (``==``, not approx) — JSON floats round-trip
binary64 losslessly and aggregation uses the same numpy arithmetic as
the live path.
"""

import numpy as np
import pytest

from repro.experiments.config import Fig11Config
from repro.experiments.fig11 import run_traced_fig11
from repro.experiments.runner import export_trace
from repro.obs import RoundTracer, aggregate_traces, read_traces
from repro.simulation import ClusterSimulator, ComputeModel, WaitForK
from repro.simulation.network import NetworkModel
from repro.straggler import ExponentialDelay


SMALL = Fig11Config(
    num_workers=8,
    num_steps=20,
    expected_delays=(1.5,),
    num_delayed_options=(4,),
    wait_values=(4,),
)


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    path = tmp_path_factory.mktemp("traces") / "fig11.jsonl"
    points, tracer = run_traced_fig11(SMALL, out_path=path)
    return points, tracer, path


class TestTracedFig11Exactness:
    def test_every_scheme_traced(self, traced_run):
        points, tracer, path = traced_run
        schemes = {t.scheme for t in tracer.traces}
        assert schemes == {p.scheme for p in points}
        # 4 schemes × 20 steps each.
        assert len(tracer) == len(points) * SMALL.num_steps

    def test_mean_step_times_match_live_exactly(self, traced_run):
        points, tracer, path = traced_run
        aggs = aggregate_traces(read_traces(path))
        for p in points:
            assert aggs[p.scheme].mean_step_time == p.avg_step_time

    def test_recovery_recorded_for_decoding_scheme(self, traced_run):
        points, tracer, path = traced_run
        aggs = aggregate_traces(read_traces(path))
        isgc = aggs["is-gc(w=4)"]
        assert isgc.decoded_rounds == SMALL.num_steps
        assert 0.0 < isgc.mean_recovery_fraction <= 1.0
        assert isgc.mean_num_searches >= 1.0
        # Non-decoding schemes stay decode-free.
        assert aggs["sync-sgd"].mean_recovery_fraction is None

    def test_loaded_aggregates_match_live_aggregates(self, traced_run):
        points, tracer, path = traced_run
        live = aggregate_traces(tracer.traces)
        loaded = aggregate_traces(read_traces(path))
        assert live == loaded

    def test_metrics_registry_consistent_with_traces(self, traced_run):
        points, tracer, path = traced_run
        reg = tracer.registry
        assert reg.counter("round.count").value == len(tracer)
        assert reg.counter("decode.count").value == SMALL.num_steps
        assert reg.histogram("round.step_time").mean == pytest.approx(
            float(np.mean([t.step_time for t in tracer.traces]))
        )


class TestRunnerExport:
    def test_export_trace_writes_jsonl(self, tmp_path):
        path = tmp_path / "run.jsonl"
        count = export_trace(path, cfg=SMALL)
        assert count == 4 * SMALL.num_steps
        assert len(read_traces(path)) == count


class TestCliTrace:
    def test_record_then_summarize(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "cli.jsonl"
        assert main([
            "trace", "record", "--out", str(out),
            "-n", "6", "-w", "3", "--steps", "10",
        ]) == 0
        recorded = capsys.readouterr().out
        assert "recorded 40 rounds" in recorded

        assert main(["trace", "summarize", str(out)]) == 0
        summary = capsys.readouterr().out
        assert "Round-trace summary" in summary
        assert "is-gc(w=3)" in summary
        assert "40 rounds, 4 schemes" in summary

    def test_summarize_missing_file_errors(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["trace", "summarize", str(tmp_path / "no.jsonl")]) == 2
        assert "error:" in capsys.readouterr().err


class TestSimulatorTracing:
    def _sim(self, tracer=None):
        return ClusterSimulator(
            num_workers=4,
            partitions_per_worker=2,
            compute=ComputeModel(base=0.1, per_partition=0.1),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=ExponentialDelay(0.5),
            rng=np.random.default_rng(7),
            tracer=tracer,
        )

    def test_traced_rounds_mirror_round_results(self):
        tracer = RoundTracer(scheme="unit")
        sim = self._sim(tracer=tracer)
        results = [sim.run_round(step, WaitForK(3)) for step in range(5)]
        assert len(tracer) == 5
        for res, tr in zip(results, tracer.traces):
            assert tr.step_start == res.step_start
            assert tr.step_end == res.step_end
            assert tr.arrivals == res.arrivals
            assert tr.proceed_time == res.outcome.proceed_time
            assert set(tr.accepted_workers) == set(res.outcome.accepted_workers)
            assert tr.wasted_compute == res.wasted_compute
            assert tr.policy == "wait-for-k(k=3)"

    def test_tracing_does_not_perturb_simulation(self):
        plain = self._sim()
        traced = self._sim(tracer=RoundTracer())
        for step in range(5):
            a = plain.run_round(step, WaitForK(3))
            b = traced.run_round(step, WaitForK(3))
            assert a == b

    def test_tracer_attachable_after_construction(self):
        sim = self._sim()
        assert sim.tracer is None
        sim.run_round(0, WaitForK(3))
        tracer = RoundTracer(scheme="late")
        sim.tracer = tracer
        sim.run_round(1, WaitForK(3))
        assert len(tracer) == 1
        assert tracer.traces[0].step == 1
