#!/usr/bin/env python3
"""Wait-policy playground: how the master's patience shapes training.

Sec. IV of the paper points out that IS-GC frees the master to choose
*any* waiting rule per step: a fixed count, a deadline, or a schedule
that waits for few workers early and more later.  This example runs the
same IS-GC job under four policies and under three different straggler
models, and prints the resulting time/recovery trade-offs.

Run:  python examples/wait_policies.py
"""

import numpy as np

from repro import (
    AdaptiveWaitK,
    ClusterSimulator,
    CyclicRepetition,
    DeadlinePolicy,
    DistributedTrainer,
    ExponentialDelay,
    ISGCStrategy,
    ParetoDelay,
    PersistentStragglers,
    SGD,
    ShiftedExponentialDelay,
    SoftmaxRegressionModel,
    WaitForK,
    build_batch_streams,
    make_classification,
    partition_dataset,
)
from repro.analysis import Table
from repro.simulation import linear_rampup

N, C = 8, 2
STEPS = 150


def policies():
    return [
        ("wait-2", WaitForK(2)),
        ("wait-6", WaitForK(6)),
        ("deadline 1.0s", DeadlinePolicy(1.0)),
        ("ramp 2→6", AdaptiveWaitK(linear_rampup(2, 6, STEPS // 2))),
    ]


def delay_models():
    return [
        ("exponential(1.0)", ExponentialDelay(1.0)),
        ("pareto(1.5)", ParetoDelay(1.5, 0.5)),
        (
            "2 persistent stragglers",
            PersistentStragglers([0, 1], ShiftedExponentialDelay(5.0, 1.0)),
        ),
    ]


def main() -> None:
    dataset = make_classification(2048, 16, num_classes=4, separation=1.5, seed=0)
    partitions = partition_dataset(dataset, N, seed=1)
    streams = build_batch_streams(partitions, batch_size=16, seed=2)

    for delay_name, delay in delay_models():
        table = Table(
            title=f"IS-GC (CR, n={N}, c={C}) under {delay_name}, {STEPS} steps",
            columns=[
                "policy", "recovery %", "avg step (s)", "total (s)",
                "final loss",
            ],
        )
        for policy_name, policy in policies():
            placement = CyclicRepetition(N, C)
            strategy = ISGCStrategy(
                placement, wait_for=2, rng=np.random.default_rng(3),
                policy=policy,
            )
            cluster = ClusterSimulator(
                num_workers=N,
                partitions_per_worker=C,
                delay_model=delay,
                rng=np.random.default_rng(11),
            )
            trainer = DistributedTrainer(
                SoftmaxRegressionModel(16, 4, seed=0),
                streams, strategy, cluster, SGD(0.3), eval_data=dataset,
            )
            s = trainer.run(max_steps=STEPS)
            table.add_row(
                policy_name,
                f"{100 * s.avg_recovery_fraction:.1f}",
                round(s.avg_step_time, 3),
                round(s.total_sim_time, 1),
                round(s.final_loss, 4),
            )
        table.show()

    print(
        "Deadline policies bound step time regardless of delay shape;\n"
        "the ramp buys cheap early progress then full recovery near\n"
        "convergence — the schedule suggested in Sec. IV of the paper."
    )


if __name__ == "__main__":
    main()
