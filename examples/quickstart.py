#!/usr/bin/env python3
"""Quickstart: IS-GC in five minutes.

Walks the whole public API on the paper's n=4, c=2 example:

1. build a placement and inspect who stores what;
2. encode per-partition gradients into worker payloads;
3. decode from an *arbitrary* subset of workers — the paper's headline
   (classic GC would fail with 2 stragglers; IS-GC recovers everything);
4. run a short simulated training job under exponential stragglers,
   described declaratively as an :class:`~repro.ExperimentSpec` — the
   same object ``repro run <spec.json>`` consumes from the CLI.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CyclicRepetition,
    ExperimentSpec,
    SummationCode,
    decoder_for,
    run_spec,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. Placement: cyclic repetition with n = 4 workers, c = 2.
    # ------------------------------------------------------------------
    placement = CyclicRepetition(4, 2)
    print(placement.describe())
    print()

    # ------------------------------------------------------------------
    # 2. Encode: each worker uploads the *sum* of its partitions'
    #    gradients — that single design choice is what lets the master
    #    decode from any subset of workers.
    # ------------------------------------------------------------------
    gradients = {p: rng.normal(size=6) for p in range(4)}
    code = SummationCode(placement)
    payloads = code.encode(gradients)
    print("worker payloads (g_i + g_{i+1}):")
    for worker, payload in payloads.items():
        print(f"  W{worker}: {np.round(payload, 2)}")
    print()

    # ------------------------------------------------------------------
    # 3. Decode with 2 of 4 workers — Fig. 1(d) of the paper.
    #    W0 holds {D0, D1}, W2 holds {D2, D3}: disjoint, so their
    #    payloads add up to the FULL gradient even with 2 stragglers.
    # ------------------------------------------------------------------
    decoder = decoder_for(placement, rng=rng)
    decision = decoder.decode([0, 2])
    decoded = code.decode_sum(decision, payloads)
    full = sum(gradients.values())
    print(f"available workers : {sorted(decision.available_workers)}")
    print(f"selected workers  : {sorted(decision.selected_workers)}")
    print(f"recovered         : {sorted(decision.recovered_partitions)} "
          f"({decision.num_recovered}/4 partitions)")
    print(f"decoded == full g : {np.allclose(decoded, full)}")
    print()

    # ------------------------------------------------------------------
    # 4. End-to-end simulated training with stragglers — one spec, one
    #    call.  Save the spec as JSON and `python -m repro run spec.json`
    #    reproduces exactly this run.
    # ------------------------------------------------------------------
    spec = ExperimentSpec(
        name="quickstart",
        scheme="is-gc-cr",
        num_workers=4,
        partitions_per_worker=2,
        wait_for=2,
        max_steps=200,
        loss_threshold=0.25,
        learning_rate=0.5,
        seed=1,
        dataset={
            "kind": "classification",
            "samples": 1024,
            "features": 10,
            "num_classes": 2,
            "separation": 1.0,
            "batch_size": 64,
        },
        delay={"kind": "exponential", "mean": 1.5},
    )
    summary = run_spec(spec)
    print(summary.describe())


if __name__ == "__main__":
    main()
