#!/usr/bin/env python3
"""Quickstart: IS-GC in five minutes.

Walks the whole public API on the paper's n=4, c=2 example:

1. build a placement and inspect who stores what;
2. encode per-partition gradients into worker payloads;
3. decode from an *arbitrary* subset of workers — the paper's headline
   (classic GC would fail with 2 stragglers; IS-GC recovers everything);
4. run a short simulated training job under exponential stragglers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    ClusterSimulator,
    CyclicRepetition,
    DistributedTrainer,
    ExponentialDelay,
    ISGCStrategy,
    LogisticRegressionModel,
    SGD,
    SummationCode,
    build_batch_streams,
    decoder_for,
    make_classification,
    partition_dataset,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # ------------------------------------------------------------------
    # 1. Placement: cyclic repetition with n = 4 workers, c = 2.
    # ------------------------------------------------------------------
    placement = CyclicRepetition(4, 2)
    print(placement.describe())
    print()

    # ------------------------------------------------------------------
    # 2. Encode: each worker uploads the *sum* of its partitions'
    #    gradients — that single design choice is what lets the master
    #    decode from any subset of workers.
    # ------------------------------------------------------------------
    gradients = {p: rng.normal(size=6) for p in range(4)}
    code = SummationCode(placement)
    payloads = code.encode(gradients)
    print("worker payloads (g_i + g_{i+1}):")
    for worker, payload in payloads.items():
        print(f"  W{worker}: {np.round(payload, 2)}")
    print()

    # ------------------------------------------------------------------
    # 3. Decode with 2 of 4 workers — Fig. 1(d) of the paper.
    #    W0 holds {D0, D1}, W2 holds {D2, D3}: disjoint, so their
    #    payloads add up to the FULL gradient even with 2 stragglers.
    # ------------------------------------------------------------------
    decoder = decoder_for(placement, rng=rng)
    decision = decoder.decode([0, 2])
    decoded = code.decode_sum(decision, payloads)
    full = sum(gradients.values())
    print(f"available workers : {sorted(decision.available_workers)}")
    print(f"selected workers  : {sorted(decision.selected_workers)}")
    print(f"recovered         : {sorted(decision.recovered_partitions)} "
          f"({decision.num_recovered}/4 partitions)")
    print(f"decoded == full g : {np.allclose(decoded, full)}")
    print()

    # ------------------------------------------------------------------
    # 4. End-to-end simulated training with stragglers.
    # ------------------------------------------------------------------
    dataset = make_classification(1024, 10, num_classes=2, seed=1)
    partitions = partition_dataset(dataset, 4, seed=2)
    streams = build_batch_streams(partitions, batch_size=64, seed=3)

    strategy = ISGCStrategy(placement, wait_for=2, rng=rng)
    cluster = ClusterSimulator(
        num_workers=4,
        partitions_per_worker=2,
        delay_model=ExponentialDelay(1.5),
        rng=np.random.default_rng(7),
    )
    trainer = DistributedTrainer(
        model=LogisticRegressionModel(10, seed=0),
        streams=streams,
        strategy=strategy,
        cluster=cluster,
        optimizer=SGD(0.5),
        eval_data=dataset,
    )
    summary = trainer.run(max_steps=200, loss_threshold=0.15)
    print(summary.describe())


if __name__ == "__main__":
    main()
