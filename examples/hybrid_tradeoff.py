#!/usr/bin/env python3
"""The HR spectrum: sliding between CR and FR (the Fig. 13 scenario).

For HR(8, c1, 4-c1) with g = 2 groups, sweeps c1 from 0 (pure CR) to 3
(FR-equivalent) and shows:

* the conflict graph shedding edges as c1 grows (Theorem 7);
* the recovered-gradient fraction rising with c1 at w = 2;
* the loss after a fixed step budget improving with c1.

Run:  python examples/hybrid_tradeoff.py
"""

import numpy as np

from repro import (
    ClusterSimulator,
    DistributedTrainer,
    ExponentialDelay,
    HybridRepetition,
    ISGCStrategy,
    MLPClassifier,
    SGD,
    build_batch_streams,
    conflict_graph,
    make_cifar_like,
    monte_carlo_recovery,
    partition_dataset,
)
from repro.analysis import Table

N, C, G, W = 8, 4, 2, 2
STEPS = 200


def main() -> None:
    dataset = make_cifar_like(2048, side=8, seed=0)
    partitions = partition_dataset(dataset, N, seed=1)
    streams = build_batch_streams(partitions, batch_size=8, seed=2)

    table = Table(
        title=f"HR(8, c1, 4-c1), g={G} — the CR→FR spectrum at w={W}",
        columns=[
            "c1", "c2", "conflict edges", "recovered (of 8)",
            f"loss @ step {STEPS}",
        ],
    )
    for c1 in range(0, C):
        placement = HybridRepetition(N, c1, C - c1, G)
        edges = conflict_graph(placement).number_of_edges()
        stats = monte_carlo_recovery(placement, W, trials=3000, seed=5)

        model = MLPClassifier(8 * 8 * 3, hidden_units=32, num_classes=10, seed=0)
        cluster = ClusterSimulator(
            num_workers=N,
            partitions_per_worker=C,
            delay_model=ExponentialDelay(1.0),
            rng=np.random.default_rng(9),
        )
        strategy = ISGCStrategy(
            placement, wait_for=W, rng=np.random.default_rng(c1)
        )
        trainer = DistributedTrainer(
            model, streams, strategy, cluster, SGD(0.2), eval_data=dataset
        )
        summary = trainer.run(max_steps=STEPS)
        table.add_row(
            c1, C - c1, edges,
            round(stats.mean_recovered, 2),
            round(summary.final_loss, 4),
        )
    table.show()
    print(
        "c1=0 is exactly CR (most conflict edges, least recovery);\n"
        "c1=3 places identically to FR.  Fewer conflict edges → more\n"
        "gradients per step → lower loss at the same step budget."
    )


if __name__ == "__main__":
    main()
