#!/usr/bin/env python3
"""Round-trace observability end to end: record, export, re-aggregate.

Runs a short IS-GC training job with a :class:`~repro.RoundTracer`
attached, prints the live metrics, exports the round stream to JSONL,
loads it back, and shows that the re-aggregated per-scheme statistics
reproduce the live numbers exactly — the invariant the observability
layer is built around.

Run:  python examples/traced_run.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ClusterSimulator,
    CyclicRepetition,
    DistributedTrainer,
    ExponentialDelay,
    ISGCStrategy,
    RoundTracer,
    SGD,
    SoftmaxRegressionModel,
    aggregate_traces,
    build_batch_streams,
    make_classification,
    partition_dataset,
    read_traces,
)
from repro.analysis.reporting import trace_summary_table
from repro.parallel import DecodeCache

N, C, W, STEPS = 8, 2, 4, 120


def main() -> None:
    # ------------------------------------------------------------------
    # 1. A traced training run: hand the tracer to the trainer, which
    #    stamps the strategy name as the scheme label and enriches every
    #    round with its decode outcome.
    # ------------------------------------------------------------------
    data = make_classification(1024, 12, num_classes=3, seed=0)
    streams = build_batch_streams(
        partition_dataset(data, N, seed=1), batch_size=32, seed=2
    )
    placement = CyclicRepetition(N, C)
    tracer = RoundTracer()
    cache = DecodeCache()  # memoised decodes, bit-identical to uncached
    trainer = DistributedTrainer(
        model=SoftmaxRegressionModel(12, 3, seed=0),
        streams=streams,
        strategy=ISGCStrategy(placement, wait_for=W,
                              rng=np.random.default_rng(3),
                              cache=cache),
        cluster=ClusterSimulator(
            N, C, delay_model=ExponentialDelay(1.0),
            rng=np.random.default_rng(4),
        ),
        optimizer=SGD(0.3),
        eval_data=data,
        tracer=tracer,
    )
    summary = trainer.run(max_steps=STEPS)
    print(summary.describe())

    # ------------------------------------------------------------------
    # 2. Live metrics: the tracer's registry accumulates distributions
    #    as the run goes (no post-processing needed).
    # ------------------------------------------------------------------
    reg = tracer.registry
    step_t = reg.histogram("round.step_time")
    print(f"\nlive metrics over {len(tracer)} rounds:")
    print(f"  step time   mean={step_t.mean:.3f}s "
          f"p50={step_t.p50:.3f}s p95={step_t.p95:.3f}s")
    print(f"  decodes     {reg.counter('decode.count').value:.0f}, "
          "mean searches "
          f"{reg.histogram('decode.num_searches').mean:.2f}")

    # ------------------------------------------------------------------
    # 3. Export to JSONL, load back, re-aggregate — exactly the live
    #    numbers, because JSON round-trips binary64 losslessly and the
    #    aggregation uses the same arithmetic as the run.
    # ------------------------------------------------------------------
    out = Path(tempfile.mkdtemp()) / "traced_run.jsonl"
    tracer.export_jsonl(out)
    loaded = read_traces(out)
    aggs = aggregate_traces(loaded)
    trace_summary_table(
        aggs, title=f"Re-aggregated from {out.name}", cache=cache
    ).show()

    live = aggregate_traces(tracer.traces)
    assert live == aggs, "exported trace must reproduce live aggregates"
    scheme = next(iter(aggs))
    print("round-trip exact: mean step time "
          f"{aggs[scheme].mean_step_time!r} (live == loaded)")


if __name__ == "__main__":
    main()
