#!/usr/bin/env python3
"""Running IS-GC on a heterogeneous cluster, three levers at once.

A cluster with two chronically slow machines (e.g. older GPUs):

1. **Assignment** — which machine plays which worker index matters.
   With FR, parking both slow machines in the same group sacrifices
   that group's partitions every step; the optimiser spreads them so
   fast group-mates cover for them.
2. **Local updates** — τ local steps per round cut the number of
   straggler waits per epoch by τ.
3. **Compression** — top-k sparsification shrinks the uploads that do
   happen.

Run:  python examples/heterogeneous_cluster.py
"""

import numpy as np

from repro import (
    ClusterSimulator,
    ComputeModel,
    FractionalRepetition,
    NetworkModel,
    PersistentStragglers,
    ShiftedExponentialDelay,
)
from repro.analysis import Table
from repro.core import heterogeneous_recovery, optimize_assignment
from repro.training import (
    CompressedISGCStrategy,
    ISGCStrategy,
    LocalUpdateTrainer,
    LogisticRegressionModel,
    build_batch_streams,
    make_classification,
    partition_dataset,
)

N, C, W = 8, 2, 6
SLOW = [0, 1]  # chronically slow machines
DELAY_MEANS = [8.0 if m in SLOW else 0.2 for m in range(N)]


def main() -> None:
    placement = FractionalRepetition(N, C)

    # ------------------------------------------------------------------
    # 1. Assignment: identity vs optimised.
    # ------------------------------------------------------------------
    identity = heterogeneous_recovery(
        placement, W, DELAY_MEANS, trials=3000, seed=0
    )
    result = optimize_assignment(placement, W, DELAY_MEANS, trials=1500, seed=1)
    table = Table(
        title=f"Machine→worker assignment on FR({N},{C}), w={W}, "
        f"machines {SLOW} slow",
        columns=["assignment", "E[recovered partitions]"],
    )
    table.add_row("identity (slow machines share a group)", round(identity, 3))
    table.add_row("optimised (slow machines spread)",
                  round(result.expected_recovered, 3))
    table.show()
    slow_groups = {result.assignment[m] // C for m in SLOW}
    print("optimised assignment puts the slow machines into groups "
          f"{sorted(slow_groups)}\n")

    # ------------------------------------------------------------------
    # 2+3. Local updates and compression on top.
    # ------------------------------------------------------------------
    dataset = make_classification(1024, 10, num_classes=2, separation=2.5, seed=0)
    streams = build_batch_streams(
        partition_dataset(dataset, N, seed=1), batch_size=32, seed=2
    )
    delay = PersistentStragglers(SLOW, ShiftedExponentialDelay(4.0, 1.0))

    runs = Table(
        title="Training under the same stragglers (48 batches/partition)",
        columns=["configuration", "rounds", "total time (s)", "final loss"],
    )
    configs = [
        ("τ=1, dense uploads",
         ISGCStrategy(placement, wait_for=W, rng=np.random.default_rng(3)), 1),
        ("τ=4, dense uploads",
         ISGCStrategy(placement, wait_for=W, rng=np.random.default_rng(3)), 4),
        ("τ=4, top-20% uploads",
         CompressedISGCStrategy(placement, wait_for=W, fraction=0.2,
                                rng=np.random.default_rng(3)), 4),
    ]
    for label, strategy, tau in configs:
        cluster = ClusterSimulator(
            N, C, compute=ComputeModel(0.02, 0.02),
            network=NetworkModel(latency=0.0, bandwidth=float("inf")),
            delay_model=delay, rng=np.random.default_rng(5),
        )
        trainer = LocalUpdateTrainer(
            LogisticRegressionModel(10, seed=0), streams, strategy,
            cluster, local_steps=tau, local_lr=0.3, eval_data=dataset,
        )
        summary = trainer.run(max_rounds=48 // tau)
        runs.add_row(
            label, summary.num_steps, round(summary.total_sim_time, 1),
            round(summary.final_loss, 4),
        )
    runs.show()
    print(
        "Same data budget: τ=4 pays for the stragglers 4× less often,\n"
        "and compression shrinks whatever uploads remain — all while\n"
        "IS-GC keeps decoding whatever subset of machines shows up."
    )


if __name__ == "__main__":
    main()
