#!/usr/bin/env python3
"""Shrinking uploads: Ye-Abbe block coding + ignore-straggler decoding.

The paper's related work (Sec. II) covers communication-efficient GC,
where each worker uploads a 1/k-size coded block of its group gradient.
This example sweeps the block count ``k`` on FR(8, 4) and shows the
three-way trade-off — upload size vs guaranteed tolerance vs partial
recovery under random stragglers — including this repo's
ignore-straggler extension (`decode_partial`), which recovers whatever
groups still have ``k`` survivors instead of failing outright.

Run:  python examples/comm_efficient_coding.py
"""

import numpy as np

from repro import FractionalRepetition
from repro.analysis import Table
from repro.codes import CommEfficientGC
from repro.exceptions import CodingError

N, C, DIM = 8, 4, 1000
ROUNDS = 1000


def main() -> None:
    placement = FractionalRepetition(N, C)
    rng = np.random.default_rng(0)
    gradients = {p: rng.normal(size=DIM) for p in range(N)}
    full = sum(gradients.values())

    # One concrete decode first: k=2, two stragglers per group.
    code = CommEfficientGC(placement, blocks=2)
    payloads = code.encode(gradients)
    survivors = [0, 3, 5, 6]  # two per group
    decoded = code.decode(survivors, payloads, DIM)
    print(
        f"k=2: upload {code.payload_elements(DIM)}/{DIM} elements per "
        f"worker; decoded exactly from {survivors}: "
        f"{np.allclose(decoded, full)}"
    )
    print()

    table = Table(
        title=(
            f"Block-count sweep on FR({N},{C}) — {ROUNDS} rounds of "
            f"4 random survivors, d={DIM}"
        ),
        columns=[
            "k", "upload elems", "guaranteed tolerance/group",
            "mean recovered %", "undecodable rounds %",
        ],
    )
    for k in (1, 2, 3, 4):
        code = CommEfficientGC(placement, blocks=k)
        payloads = code.encode(gradients)
        recovered = 0.0
        failed = 0
        for _ in range(ROUNDS):
            avail = rng.choice(N, size=4, replace=False).tolist()
            try:
                _, rec = code.decode_partial(avail, payloads, DIM)
                recovered += len(rec) / N
            except CodingError:
                failed += 1
        table.add_row(
            k,
            code.payload_elements(DIM),
            code.max_stragglers_per_group,
            f"{100 * recovered / ROUNDS:.1f}",
            f"{100 * failed / ROUNDS:.1f}",
        )
    table.show()
    print(
        "k buys bandwidth with straggler tolerance: k=1 is plain IS-GC\n"
        "over FR (full-size uploads, any single survivor per group\n"
        "suffices); k=c needs every group member.  The IS decode keeps\n"
        "partial recovery available at every point on the curve."
    )


if __name__ == "__main__":
    main()
