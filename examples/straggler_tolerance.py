#!/usr/bin/env python3
"""Scheme shoot-out under stragglers (the Fig. 12 scenario).

Trains the same model on the same data under five schemes —
synchronous SGD, classic gradient coding, IS-SGD, and IS-GC over both
FR and CR placements — against one shared straggler trace, and prints
a side-by-side comparison of recovery, steps, and simulated wall-clock.

This is the paper's motivating experiment in miniature: IS-GC keeps
IS-SGD's speed while recovering (almost) as many gradients as the
synchronous schemes.

Run:  python examples/straggler_tolerance.py
"""

import numpy as np

from repro import (
    ClassicGCStrategy,
    ClusterSimulator,
    CyclicRepetition,
    DelayTrace,
    DistributedTrainer,
    ExponentialDelay,
    FractionalRepetition,
    ISGCStrategy,
    ISSGDStrategy,
    MLPClassifier,
    SGD,
    SyncSGDStrategy,
    TraceReplayModel,
    build_batch_streams,
    make_cifar_like,
    partition_dataset,
)
from repro.analysis import Table

N_WORKERS = 4
C = 2
WAIT_FOR = 2
MAX_STEPS = 600
LOSS_THRESHOLD = 0.6


def build_strategies():
    return [
        SyncSGDStrategy(N_WORKERS),
        ClassicGCStrategy(
            CyclicRepetition(N_WORKERS, C), rng=np.random.default_rng(1)
        ),
        ISSGDStrategy(N_WORKERS, WAIT_FOR),
        ISGCStrategy(
            FractionalRepetition(N_WORKERS, C), wait_for=WAIT_FOR,
            rng=np.random.default_rng(2),
        ),
        ISGCStrategy(
            CyclicRepetition(N_WORKERS, C), wait_for=WAIT_FOR,
            rng=np.random.default_rng(3),
        ),
    ]


def main() -> None:
    dataset = make_cifar_like(2048, side=8, seed=0)
    partitions = partition_dataset(dataset, N_WORKERS, seed=1)
    streams = build_batch_streams(partitions, batch_size=16, seed=2)

    # One shared delay realisation so the comparison is exact.
    trace = DelayTrace.record(
        ExponentialDelay(1.5), N_WORKERS, MAX_STEPS,
        np.random.default_rng(42),
    )

    table = Table(
        title=(
            f"Scheme comparison — n={N_WORKERS}, c={C}, w={WAIT_FOR}, "
            f"exp(1.5s) stragglers, train to loss {LOSS_THRESHOLD}"
        ),
        columns=[
            "scheme", "recovery %", "steps", "avg step (s)",
            "total (s)", "converged",
        ],
    )
    for strategy in build_strategies():
        model = MLPClassifier(8 * 8 * 3, hidden_units=32, num_classes=10, seed=0)
        cluster = ClusterSimulator(
            num_workers=N_WORKERS,
            partitions_per_worker=strategy.placement.partitions_per_worker,
            delay_model=TraceReplayModel(trace),
            rng=np.random.default_rng(0),
        )
        trainer = DistributedTrainer(
            model, streams, strategy, cluster, SGD(0.15), eval_data=dataset
        )
        s = trainer.run(max_steps=MAX_STEPS, loss_threshold=LOSS_THRESHOLD)
        table.add_row(
            strategy.name,
            f"{100 * s.avg_recovery_fraction:.1f}",
            s.num_steps,
            round(s.avg_step_time, 3),
            round(s.total_sim_time, 1),
            "yes" if s.reached_threshold else "no",
        )
    table.show()
    print(
        "Note how is-gc matches sync-sgd/gc recovery while its total time\n"
        "stays near is-sgd — the trade-off Fig. 12(d) of the paper shows."
    )


if __name__ == "__main__":
    main()
