#!/usr/bin/env python3
"""The design space in one run: sync ↔ IS-GC ↔ async.

Sec. I of the paper motivates IS-GC as a middle ground between two
extremes.  This example pits all three against the same chronic
straggler and renders the loss curves as sparklines:

* **sync-SGD** waits for everyone — every step pays the straggler;
* **async-SGD** never waits — fast updates, but stale gradients
  (staleness statistics are printed);
* **IS-GC** waits for ``w`` workers and recovers the maximal partial
  gradient — near-async speed with near-sync gradient quality.

Run:  python examples/async_vs_isgc.py
"""

import numpy as np

from repro import (
    ClusterSimulator,
    ComputeModel,
    CyclicRepetition,
    DistributedTrainer,
    ISGCStrategy,
    NetworkModel,
    PersistentStragglers,
    SGD,
    ShiftedExponentialDelay,
    SoftmaxRegressionModel,
    SyncSGDStrategy,
    build_batch_streams,
    make_classification,
    partition_dataset,
)
from repro.analysis import loss_curve_panel
from repro.training import AsyncSGDTrainer

N = 8
UPDATE_BUDGET = 240  # async updates ≈ sync steps × n for fairness


def main() -> None:
    dataset = make_classification(2048, 16, num_classes=4, separation=1.5, seed=0)
    partitions = partition_dataset(dataset, N, seed=1)
    streams = build_batch_streams(partitions, batch_size=16, seed=2)
    straggler = PersistentStragglers([0, 1], ShiftedExponentialDelay(4.0, 0.5))
    compute = ComputeModel(0.05, 0.05)
    network = NetworkModel(latency=0.0, bandwidth=float("inf"))

    curves = {}
    times = {}

    # --- synchronous SGD -------------------------------------------------
    sync = DistributedTrainer(
        SoftmaxRegressionModel(16, 4, seed=0), streams, SyncSGDStrategy(N),
        ClusterSimulator(N, 1, compute=compute, network=network,
                         delay_model=straggler, rng=np.random.default_rng(3)),
        SGD(0.3), eval_data=dataset,
    )
    s = sync.run(max_steps=UPDATE_BUDGET // N)
    curves["sync-sgd "] = s.loss_curve
    times["sync-sgd "] = s.total_sim_time

    # --- IS-GC ------------------------------------------------------------
    isgc = DistributedTrainer(
        SoftmaxRegressionModel(16, 4, seed=0), streams,
        ISGCStrategy(CyclicRepetition(N, 2), wait_for=4,
                     rng=np.random.default_rng(4)),
        ClusterSimulator(N, 2, compute=compute, network=network,
                         delay_model=straggler, rng=np.random.default_rng(3)),
        SGD(0.3), eval_data=dataset,
    )
    s = isgc.run(max_steps=UPDATE_BUDGET // N)
    curves["is-gc w=4"] = s.loss_curve
    times["is-gc w=4"] = s.total_sim_time
    isgc_recovery = s.avg_recovery_fraction

    # --- asynchronous SGD ---------------------------------------------------
    async_trainer = AsyncSGDTrainer(
        SoftmaxRegressionModel(16, 4, seed=0), streams, SGD(0.3),
        compute=compute, network=network, delay_model=straggler,
        eval_data=dataset, rng=np.random.default_rng(5),
    )
    a = async_trainer.run(max_updates=UPDATE_BUDGET)
    curves["async-sgd"] = a.loss_curve
    times["async-sgd"] = a.total_sim_time

    print("loss curves (equal update budgets):\n")
    print(loss_curve_panel(curves))
    print()
    for name, t in times.items():
        print(f"{name}: {t:7.1f} simulated seconds")
    print(
        f"\nasync staleness: mean {a.mean_staleness:.2f}, "
        f"max {a.max_staleness} (sync/IS-GC gradients are never stale)"
    )
    print(f"is-gc recovered {100 * isgc_recovery:.1f}% of gradients per step")
    print(
        "\nIS-GC finishes near async's wall-clock while keeping the\n"
        "synchronous, never-stale update rule the paper's Theorem 12\n"
        "analysis covers."
    )


if __name__ == "__main__":
    main()
