#!/usr/bin/env python3
"""The design space in one run: sync ↔ IS-GC ↔ async.

Sec. I of the paper motivates IS-GC as a middle ground between two
extremes.  This example pits all three against the same chronic
straggler and renders the loss curves as sparklines:

* **sync-SGD** waits for everyone — every step pays the straggler;
* **async-SGD** never waits — fast updates, but stale gradients
  (staleness statistics are printed);
* **IS-GC** waits for ``w`` workers and recovers the maximal partial
  gradient — near-async speed with near-sync gradient quality.

All three runs are variations of ONE declarative
:class:`~repro.ExperimentSpec`: only ``scheme``/``rule`` (and the
per-variant knobs) change between them, via ``dataclasses.replace``.

Run:  python examples/async_vs_isgc.py
"""

import dataclasses

from repro import ExperimentSpec, run_spec
from repro.analysis import loss_curve_panel

N = 8
UPDATE_BUDGET = 240  # async updates ≈ sync steps × n for fairness

BASE = ExperimentSpec(
    name="async-vs-isgc",
    scheme="sync-sgd",
    num_workers=N,
    max_steps=UPDATE_BUDGET // N,
    learning_rate=0.3,
    seed=0,
    dataset={
        "kind": "classification",
        "samples": 2048,
        "features": 16,
        "num_classes": 4,
        "separation": 1.5,
        "batch_size": 16,
    },
    model={"kind": "softmax"},
    delay={
        "kind": "persistent",
        "stragglers": [0, 1],
        "mean": 4.0,
        "background_mean": 0.5,
    },
    compute={"base": 0.05, "per_partition": 0.05},
    network={"latency": 0.0, "bandwidth": float("inf")},
)


def main() -> None:
    curves = {}
    times = {}

    # --- synchronous SGD --------------------------------------------------
    s = run_spec(BASE)
    curves["sync-sgd "] = s.loss_curve
    times["sync-sgd "] = s.total_sim_time

    # --- IS-GC ------------------------------------------------------------
    s = run_spec(dataclasses.replace(
        BASE, scheme="is-gc-cr", partitions_per_worker=2, wait_for=4,
    ))
    curves["is-gc w=4"] = s.loss_curve
    times["is-gc w=4"] = s.total_sim_time
    isgc_recovery = s.avg_recovery_fraction

    # --- asynchronous SGD -------------------------------------------------
    a = run_spec(dataclasses.replace(
        BASE, rule="async", max_steps=UPDATE_BUDGET,
    ))
    curves["async-sgd"] = a.loss_curve
    times["async-sgd"] = a.total_sim_time

    print("loss curves (equal update budgets):\n")
    print(loss_curve_panel(curves))
    print()
    for name, t in times.items():
        print(f"{name}: {t:7.1f} simulated seconds")
    print(
        f"\nasync staleness: mean {a.mean_staleness:.2f}, "
        f"max {a.max_staleness} (sync/IS-GC gradients are never stale)"
    )
    print(f"is-gc recovered {100 * isgc_recovery:.1f}% of gradients per step")
    print(
        "\nIS-GC finishes near async's wall-clock while keeping the\n"
        "synchronous, never-stale update rule the paper's Theorem 12\n"
        "analysis covers."
    )


if __name__ == "__main__":
    main()
