#!/usr/bin/env python3
"""Online placement adaptation: start wrong, end right.

An extension beyond the paper: the cluster starts on CR(8, 2) (say,
because `c | n` wasn't checked at deploy time), and the adaptive
trainer notices at its first review that FR would recover ~1 more
partition per step at w = 4.  It plans the partition copies, charges
the simulated clock for them, switches placements mid-run — model and
optimizer state intact — and finishes with FR-level recovery.

Run:  python examples/adaptive_placement.py
"""

import numpy as np

from repro import (
    ClusterSimulator,
    ComputeModel,
    CyclicRepetition,
    ExponentialDelay,
    NetworkModel,
    SGD,
    SoftmaxRegressionModel,
    build_batch_streams,
    make_classification,
    partition_dataset,
)
from repro.training import AdaptivePlacementTrainer

N, C, W = 8, 2, 4
STEPS = 120


def main() -> None:
    dataset = make_classification(1024, 12, num_classes=3, separation=2.0, seed=0)
    streams = build_batch_streams(
        partition_dataset(dataset, N, seed=1), batch_size=32, seed=2
    )
    cluster = ClusterSimulator(
        N, C,
        compute=ComputeModel(0.02, 0.02),
        network=NetworkModel(latency=0.0, bandwidth=float("inf")),
        delay_model=ExponentialDelay(0.5),
        rng=np.random.default_rng(3),
    )
    trainer = AdaptivePlacementTrainer(
        model=SoftmaxRegressionModel(12, 3, seed=0),
        streams=streams,
        initial_placement=CyclicRepetition(N, C),
        wait_for=W,
        cluster=cluster,
        optimizer=SGD(0.3),
        eval_data=dataset,
        partition_bytes=1e6,
        network=NetworkModel(latency=0.001, bandwidth=1e9),
        review_every=20,
        rng=np.random.default_rng(4),
    )
    summary = trainer.run(max_steps=STEPS)

    print(summary.describe())
    print()
    if trainer.migrations:
        for event in trainer.migrations:
            print(
                f"step {event.step}: migrated {event.from_label} → "
                f"{event.to_label} ({event.partition_copies} partition "
                f"copies, {event.cost_seconds * 1000:.1f} ms)"
            )
        switch = trainer.migrations[0].step
        before = np.mean(
            [r.recovery_fraction for r in trainer.records[:switch]]
        )
        after = np.mean(
            [r.recovery_fraction for r in trainer.records[switch:]]
        )
        print(
            f"\nrecovery before migration: {100 * before:.1f}%   "
            f"after: {100 * after:.1f}%"
        )
    else:
        print("no migration was worth it under these parameters")
    print(
        "\nThe advisor + migration planner turn the paper's design-time\n"
        "FR-vs-CR-vs-HR choice into a runtime decision with an explicit\n"
        "amortisation test."
    )


if __name__ == "__main__":
    main()
