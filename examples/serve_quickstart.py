#!/usr/bin/env python3
"""Serve quickstart: many experiments through one coordinator.

Three ways to drive :mod:`repro.serve`:

1. ``run_jobs`` — the one-call batch API: submit a list of specs, get
   their :class:`~repro.RunReport` results in submission order;
2. a :class:`~repro.Coordinator` driven directly — per-job handles,
   weights, live ``watch()`` event streams and cancellation;
3. the file mailbox — the protocol behind ``repro serve`` /
   ``repro submit``, here exercised in-process.

Everything runs in deterministic mode, so the interleaved results are
bit-for-bit what sequential ``repro run`` invocations would produce.

Run:  python examples/serve_quickstart.py
"""

import asyncio
import tempfile

from repro import (
    Coordinator,
    CoordinatorClient,
    ExperimentSpec,
    RunReport,
    ServeMailbox,
    run_jobs,
)


def make_specs():
    """Four small jobs across three placement schemes."""
    return [
        ExperimentSpec(
            name=f"serve-demo-{scheme}",
            scheme=scheme,
            num_workers=4,
            partitions_per_worker=2,
            wait_for=3,
            max_steps=20,
            seed=7,
        )
        for scheme in ("is-gc-cr", "is-gc-fr", "gc", "sync-sgd")
    ]


def main() -> None:
    specs = make_specs()

    # ------------------------------------------------------------------
    # 1. The batch API: run all four concurrently, fairly interleaved.
    # ------------------------------------------------------------------
    print("run_jobs: four schemes, one coordinator")
    for report in run_jobs(specs, max_running=4):
        print(
            f"  {report.scheme:<9} {report.num_steps:>3} steps  "
            f"loss {report.final_loss:.4f}  "
            f"sim time {report.total_sim_time:.1f}s"
        )
    print()

    # ------------------------------------------------------------------
    # 2. A coordinator driven directly: weighted jobs, a live watch
    #    stream, and one cancellation mid-run.
    # ------------------------------------------------------------------
    async def drive() -> None:
        coord = Coordinator(mode="deterministic", max_running=2)
        with coord:
            fast = coord.submit(specs[0], weight=3)
            slow = coord.submit(specs[1], weight=1)
            doomed = coord.submit(specs[2])
            doomed.cancel()  # cancelled before ever running
            drain = asyncio.ensure_future(coord.drain())
            rounds = 0
            async for event in fast.watch():
                if event.kind == "round":
                    rounds += 1
            await drain
            print(f"watched {rounds} rounds of {fast.name}")
            for handle in (fast, slow, doomed):
                print(f"  {handle.job_id}: {handle.state.value}")

    print("coordinator: weights, watch, cancellation")
    asyncio.run(drive())
    print()

    # ------------------------------------------------------------------
    # 3. The file mailbox — what `repro submit` + `repro serve` speak.
    # ------------------------------------------------------------------
    print("mailbox: submit -> serve --once -> read the report back")
    with tempfile.TemporaryDirectory() as root:
        client = CoordinatorClient(root)
        job_id = client.submit(specs[0], job_id="demo-job")
        coord = Coordinator(mode="deterministic")
        with coord:
            asyncio.run(coord.serve(ServeMailbox(root), once=True))
        snapshot = client.state(job_id)
        report = RunReport.from_dict(snapshot["report"])
        print(f"  {job_id}: {snapshot['state']}, "
              f"final loss {report.final_loss:.4f}")


if __name__ == "__main__":
    main()
