# Developer entry points.  `make check` is the pre-commit gate: lint
# (when ruff is available), the project's own static-analysis pass
# (`repro check`), then the tier-1 test suite.

PYTHON ?= python

.PHONY: check lint static static-fast test bench bench-placement bench-environment bench-staticcheck bench-serve trace-demo

check: lint static test

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests examples; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

static:
	PYTHONPATH=src $(PYTHON) -m repro check src tests examples README.md docs

# Same gate with the incremental cache (.repro-check-cache.json):
# warm runs re-analyse only edited files and their importers.
static-fast:
	PYTHONPATH=src $(PYTHON) -m repro check src tests examples README.md docs --cache

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

# Smoke-sized parallel/cache benchmark; writes BENCH_parallel.json
# (the perf-trajectory data point CI archives per commit).
bench:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_parallel.py --smoke

# Placement-layer benchmark; writes BENCH_placement.json and asserts
# the registry's dispatch overhead stays under 5% of direct
# construction (and that fast-path conflict graphs match ground truth).
bench-placement:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_placement.py --smoke

# Environment-layer benchmark; writes BENCH_environment.json and
# asserts the registry's dispatch overhead stays under 5% of direct
# construction and that the vectorized sample_round beats the scalar
# per-worker loop (with bit-identical streams) on a 64-worker round.
bench-environment:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_environment.py --smoke

# Static-analysis benchmark; writes BENCH_staticcheck.json and asserts
# the warm incremental-cache run is >=5x faster than cold with
# bit-identical findings.
bench-staticcheck:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_staticcheck.py

# Serve benchmark: 8 jobs through the file mailbox, asserting reports
# and streamed traces are bit-for-bit sequential, traces re-aggregate
# losslessly, the shared worker pool beats per-job engines by >= 1.5x,
# a SIGKILLed coordinator's successor resumes bit-identically, and a
# live-mode injected failure never touches peers.
# Writes BENCH_serve.json.
bench-serve:
	PYTHONPATH=src $(PYTHON) benchmarks/bench_serve.py

trace-demo:
	PYTHONPATH=src $(PYTHON) examples/traced_run.py
