# Developer entry points.  `make check` is the pre-commit gate: lint
# (when ruff is available), the project's own static-analysis pass
# (`repro check`), then the tier-1 test suite.

PYTHON ?= python

.PHONY: check lint static test trace-demo

check: lint static test

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests examples; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

static:
	PYTHONPATH=src $(PYTHON) -m repro check src tests examples README.md docs

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

trace-demo:
	PYTHONPATH=src $(PYTHON) examples/traced_run.py
