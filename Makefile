# Developer entry points.  `make check` is the pre-commit gate: lint
# (when ruff is available) followed by the tier-1 test suite.

PYTHON ?= python

.PHONY: check lint test trace-demo

check: lint test

lint:
	@if command -v ruff >/dev/null 2>&1; then \
		ruff check src tests examples; \
	else \
		echo "ruff not installed; skipping lint"; \
	fi

test:
	PYTHONPATH=src $(PYTHON) -m pytest -x -q

trace-demo:
	PYTHONPATH=src $(PYTHON) examples/traced_run.py
